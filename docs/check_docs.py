"""Documentation drift check: smoke-execute the README's Python code blocks.

Extracts every fenced ```python block from the given markdown file (default:
the repository README) and executes them *in order in one shared namespace*,
exactly as a reader following the quickstart would.  Any API drift — renamed
symbols, changed signatures, broken imports — fails the run, which is wired
into CI via ``make docs-check``.

Blocks run inside a temporary working directory, so snippets may write
relative paths (checkpoints, results) without polluting the repository.
A block can opt out with a ```python skip-docs-check info string.
"""

from __future__ import annotations

import argparse
import re
import sys
import tempfile
import time
from pathlib import Path

FENCE = re.compile(r"^```python[ \t]*(?P<flags>[^\n`]*)$")


def extract_python_blocks(markdown: str) -> list:
    """Return the contents of each executable ```python fence, in order."""
    blocks = []
    lines = markdown.splitlines()
    index = 0
    while index < len(lines):
        match = FENCE.match(lines[index].strip())
        if match is None:
            index += 1
            continue
        skip = "skip-docs-check" in match.group("flags")
        body = []
        index += 1
        while index < len(lines) and lines[index].strip() != "```":
            body.append(lines[index])
            index += 1
        index += 1  # closing fence
        if not skip:
            blocks.append("\n".join(body))
    return blocks


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("markdown", nargs="?", type=Path,
                        default=Path(__file__).resolve().parent.parent / "README.md")
    args = parser.parse_args(argv)

    blocks = extract_python_blocks(args.markdown.read_text())
    if not blocks:
        print(f"ERROR: no ```python blocks found in {args.markdown}", file=sys.stderr)
        return 1

    namespace: dict = {"__name__": "__docs_check__"}
    import os

    origin = os.getcwd()
    with tempfile.TemporaryDirectory(prefix="docs-check-") as workdir:
        os.chdir(workdir)
        try:
            for number, block in enumerate(blocks, start=1):
                started = time.perf_counter()
                try:
                    exec(compile(block, f"{args.markdown.name}:block{number}", "exec"),
                         namespace)
                except Exception:
                    print(f"\nFAILED in {args.markdown.name} code block {number}:\n",
                          file=sys.stderr)
                    print(block, file=sys.stderr)
                    raise
                print(f"block {number}/{len(blocks)} ok "
                      f"({time.perf_counter() - started:.1f}s)")
        finally:
            os.chdir(origin)
    print(f"docs-check: {len(blocks)} block(s) from {args.markdown.name} executed cleanly")
    return 0


if __name__ == "__main__":
    sys.exit(main())
