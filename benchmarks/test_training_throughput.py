"""Benchmark — training throughput: looped vs. fused negative sampling.

The trainer's fast path (ISSUE 2) collates the positive and all ``k`` sampled
negatives of a step into one ``batch*(1+k)``-row forward/backward pass and
computes the history-only dynamic view once per candidate group, instead of
running one forward/backward per negative draw.  This benchmark quantifies the
win on a synthetic grid at the paper's ``k = 5`` (§IV-D) and asserts the two
paths optimise the *same* objective: with dropout disabled and identical
seeds, per-epoch losses must agree to 1e-8.

Acceptance (ISSUE 2): fused throughput ≥ 3× looped throughput at k = 5.
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks.conftest import export_text, run_once
from repro.core.config import SeqFMConfig
from repro.core.tasks import SeqFMRanker
from repro.core.trainer import Trainer, TrainerConfig
from repro.data import synthetic
from repro.data.features import FeatureEncoder
from repro.data.sampling import NegativeSampler
from repro.data.split import leave_one_out_split

NEGATIVES_PER_POSITIVE = 5  # the paper's setting (§IV-D)
#: Model/batch sizes of the "quick" experiment scale — the grid every
#: benchmark table in this suite trains on.
BATCH_SIZE = 64
EMBED_DIM = 16
MAX_SEQ_LEN = 10
#: Per-path timing attempts; the best run is reported so that a transient
#: scheduler stall on the shared CI box cannot flip the comparison.
ATTEMPTS = 3


def _build_grid():
    log = synthetic.generate_poi_checkins(
        synthetic.SyntheticConfig(num_users=120, num_objects=160,
                                  interactions_per_user=20, seed=3)
    )
    split = leave_one_out_split(log)
    encoder = FeatureEncoder(log, max_seq_len=MAX_SEQ_LEN)
    examples = encoder.encode_training_instances(split.train)
    config = SeqFMConfig(
        static_vocab_size=encoder.static_vocab_size,
        dynamic_vocab_size=encoder.dynamic_vocab_size,
        max_seq_len=encoder.max_seq_len,
        embed_dim=EMBED_DIM,
        dropout=0.0,  # deterministic: loss parity between the paths is exact
        seed=0,
    )
    return log, encoder, examples, config


def _train_once(log, encoder, examples, config, fused: bool):
    task = SeqFMRanker(config)
    sampler = NegativeSampler(log, seed=0)
    trainer = Trainer(task, encoder, sampler,
                      TrainerConfig(epochs=1, batch_size=BATCH_SIZE, learning_rate=0.01,
                                    negatives_per_positive=NEGATIVES_PER_POSITIVE,
                                    convergence_tolerance=0.0, seed=0,
                                    fused_negatives=fused))
    start = time.perf_counter()
    result = trainer.fit(examples)
    elapsed = time.perf_counter() - start
    return len(examples) / elapsed, result.epoch_losses


def test_fused_training_throughput(benchmark):
    log, encoder, examples, config = _build_grid()

    def measure():
        results = {"looped": (0.0, None), "fused": (0.0, None)}
        # Interleave the attempts so a load burst hits both paths alike.
        for _ in range(ATTEMPTS):
            for label, fused in (("looped", False), ("fused", True)):
                rate, losses = _train_once(log, encoder, examples, config, fused)
                results[label] = (max(results[label][0], rate), losses)
        return results

    results = run_once(benchmark, measure)
    looped_rate, looped_losses = results["looped"]
    fused_rate, fused_losses = results["fused"]
    speedup = fused_rate / looped_rate

    report = "\n".join([
        f"Training throughput, {len(examples)} examples "
        f"(d={EMBED_DIM}, n˙={MAX_SEQ_LEN}, batch={BATCH_SIZE}, "
        f"k={NEGATIVES_PER_POSITIVE}):",
        f"  looped  {looped_rate:10.0f} examples/s  (loss {looped_losses[0]:.6f})",
        f"  fused   {fused_rate:10.0f} examples/s  (loss {fused_losses[0]:.6f})",
        f"  speedup {speedup:9.2f}x",
    ])
    print("\n" + report)
    export_text("training_throughput", report)

    # Same objective, same draws, same arithmetic (up to summation order).
    np.testing.assert_allclose(fused_losses, looped_losses, atol=1e-8)

    # ISSUE acceptance: fused ≥ 3× looped examples/sec at k = 5.
    assert speedup >= 3.0, f"fused training only {speedup:.2f}x looped"
