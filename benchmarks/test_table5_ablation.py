"""Benchmark E6 — regenerate Table V (ablation study).

Trains the default SeqFM and its degraded variants (Remove SV / DV / CV /
RC / LN, plus the two extra design-choice ablations from DESIGN.md §6) on one
dataset per task and reports the per-task metric of the paper (HR@10, AUC,
MAE).
"""

from __future__ import annotations

from benchmarks.conftest import export_text, run_once
from repro.experiments import reference
from repro.experiments.table5_ablation import ABLATION_VARIANTS, run_table5


def test_table5_ablation(benchmark, scale):
    datasets = ("gowalla", "trivago", "beauty")
    table = run_once(benchmark, run_table5, datasets=datasets,
                     variants=tuple(ABLATION_VARIANTS), scale=scale)

    lines = [str(table), "", "Paper reference (HR@10 / AUC / MAE on the same datasets):"]
    for variant, values in reference.TABLE5_ABLATION.items():
        row = "  ".join(f"{dataset}={values[dataset]:.3f}" for dataset in datasets)
        lines.append(f"  {variant:12s} {row}")
    report = "\n".join(lines)
    print("\n" + report)
    export_text("table5_ablation", report)

    # Shape checks: all variants produce valid metrics, and removing the
    # dynamic view — the component the paper identifies as most important —
    # does not *improve* the ranking/classification metrics beyond noise.
    for row in table.rows.values():
        for value in row.values():
            assert value >= 0.0
    assert table.get("Remove DV", "gowalla") <= table.get("Default", "gowalla") + 0.05
    assert table.get("Remove DV", "trivago") <= table.get("Default", "trivago") + 0.05
