"""Benchmark — the concurrent serving runtime under mixed-head traffic.

The same JSONL stream (single-request scoring majority, rank-topk and
recommend minorities — three heads, one model) is pushed through

1. **serial** — the PR-5 :class:`~repro.serving.protocol.ServingRouter`
   loop: parse, execute, respond, one line at a time;
2. **concurrent** — :class:`~repro.serving.concurrent.ConcurrentServingRouter`
   at several worker counts, default per-envelope execution (the
   byte-parity mode);
3. **concurrent+coalesce** — the opt-in cross-envelope batching mode:
   consecutive same-(model, head) lines merge into shared micro-batches,
   amortising the per-call engine overhead across request lines.

Reported per mode: throughput (req/s) and per-request latency p50/p99.
The speedup claim lives in the coalescing mode — merging single-request
lines into ≤256-row batches is the PR-1 batching win applied across the
wire, and it holds on any core count (it removes per-call overhead rather
than relying on parallel BLAS).  Per-envelope concurrency adds dispatch
overhead per line and only pays off with multicore BLAS underneath; it is
measured and reported honestly, but the floor asserted for it is lenient
because this harness may run on a single core.

Acceptance (ISSUE 6): the results file carries p50/p99 latency and
throughput for ≥2 worker counts, with a measured speedup over the serial
router at batch-heavy load (the coalescing mode), and the concurrent
responses are byte-identical to the serial ones.
"""

from __future__ import annotations

import json
import threading
import time

import numpy as np

from benchmarks.conftest import export_text, run_once
from repro.core.config import SeqFMConfig
from repro.core.model import SeqFM
from repro.serving import ModelRegistry, ServingRouter
from repro.serving.concurrent import ConcurrentServingRouter
from repro.serving.protocol import parse_envelope

NUM_LINES = 1024
MAX_BATCH = 256
NUM_USERS = 64

CONFIG = SeqFMConfig(static_vocab_size=512, dynamic_vocab_size=256, max_seq_len=20,
                     embed_dim=32, ffn_layers=1, dropout=0.0, seed=0)
CATALOG = list(range(NUM_USERS, NUM_USERS + 200))


def _build_registry() -> ModelRegistry:
    model = SeqFM(CONFIG)
    rng = np.random.default_rng(1)
    for parameter in model.parameters():
        parameter.data += rng.normal(0.0, 0.1, parameter.data.shape)
    model.dynamic_embedding.reset_padding()
    registry = ModelRegistry()
    registry.register("m", model)
    registry.build_index("m", CATALOG, n_retrieve=32)
    return registry


def _build_lines() -> list:
    """Mixed-head stream: 14/16 score (batch-heavy), 1/16 rank-topk, 1/16 recommend."""
    rng = np.random.default_rng(0)
    histories = {
        user: [int(item) for item in rng.integers(1, CONFIG.dynamic_vocab_size,
                                                  int(rng.integers(5, CONFIG.max_seq_len + 5)))]
        for user in range(NUM_USERS)
    }
    lines = []
    for index in range(NUM_LINES):
        user = int(rng.integers(0, NUM_USERS))
        static = [user, int(rng.integers(NUM_USERS, CONFIG.static_vocab_size))]
        if index % 16 == 14:
            document = {"v": 1, "head": "rank-topk", "id": f"r{index}",
                        "payload": {"static_indices": static,
                                    "candidates": [int(c) for c in
                                                   rng.choice(CATALOG, size=8, replace=False)],
                                    "history": histories[user], "k": 4,
                                    "user_id": user}}
        elif index % 16 == 15:
            document = {"v": 1, "head": "recommend", "id": f"c{index}",
                        "payload": {"static_indices": static,
                                    "history": histories[user], "k": 4,
                                    "n_retrieve": 16, "user_id": user}}
        else:
            document = {"v": 1, "head": "score", "id": f"s{index}",
                        "payload": {"static_indices": static,
                                    "history": histories[user], "user_id": user}}
        lines.append(json.dumps(document))
    return lines


def _percentile(values, q) -> float:
    return float(np.percentile(np.asarray(values, dtype=np.float64), q))


def _run_serial(lines):
    """The PR-5 serial loop, instrumented per line."""
    router = ServingRouter(_build_registry(), default_model="m",
                           max_batch_size=MAX_BATCH)
    latencies, responses = [], {}
    started = time.perf_counter()
    for line in lines:
        t0 = time.perf_counter()
        envelope = parse_envelope(json.loads(line), default_head="score",
                                  default_model="m")
        body, _, _ = router.execute(envelope)
        latencies.append(time.perf_counter() - t0)
        responses[envelope.request_id] = json.dumps(body)
    elapsed = time.perf_counter() - started
    return elapsed, latencies, responses


def _run_concurrent(lines, workers, coalesce=False):
    """The concurrent router, latency measured admission → completion."""
    router = ConcurrentServingRouter(
        _build_registry(), default_model="m", max_batch_size=MAX_BATCH,
        workers=workers, max_inflight=NUM_LINES, coalesce=coalesce)
    latencies, responses = [], {}
    lock = threading.Lock()
    try:
        started = time.perf_counter()
        for number, line in enumerate(lines, start=1):
            envelope = parse_envelope(json.loads(line), default_head="score",
                                      default_model="m")
            t0 = time.perf_counter()

            def on_done(_number, done_envelope, body, _rows, code, t0=t0):
                assert code is None, f"unexpected error: {body}"
                with lock:
                    latencies.append(time.perf_counter() - t0)
                    responses[done_envelope.request_id] = json.dumps(body)

            router.submit(envelope, number, on_done)
        router.drain()
        elapsed = time.perf_counter() - started
    finally:
        router.close()
    return elapsed, latencies, responses


def test_concurrent_serving_latency_and_throughput(benchmark):
    lines = _build_lines()

    def measure():
        _run_serial(lines[:64])  # warm-up: imports, caches, allocator
        results = {"serial": _run_serial(lines)}
        for workers in (2, 4):
            results[f"workers={workers}"] = _run_concurrent(lines, workers)
        results["workers=2+coalesce"] = _run_concurrent(lines, 2, coalesce=True)
        return results

    results = run_once(benchmark, measure)

    serial_elapsed, _, serial_responses = results["serial"]
    serial_rps = NUM_LINES / serial_elapsed
    report_lines = [
        f"Concurrent serving, {NUM_LINES} mixed-head lines "
        f"(score/rank-topk/recommend, d={CONFIG.embed_dim}, "
        f"n˙={CONFIG.max_seq_len}, batch≤{MAX_BATCH}):",
        f"  {'mode':20s} {'req/s':>9s} {'p50 ms':>9s} {'p99 ms':>9s} {'vs serial':>10s}",
    ]
    for mode, (elapsed, latencies, _) in results.items():
        rps = NUM_LINES / elapsed
        report_lines.append(
            f"  {mode:20s} {rps:9.0f} {_percentile(latencies, 50) * 1e3:9.2f} "
            f"{_percentile(latencies, 99) * 1e3:9.2f} {rps / serial_rps:9.2f}x")
    report = "\n".join(report_lines)
    print("\n" + report)
    export_text("serving_concurrency", report)

    # Parity: per-envelope concurrent modes are byte-identical to serial.
    for mode in ("workers=2", "workers=4"):
        _, _, responses = results[mode]
        assert set(responses) == set(serial_responses)
        mismatched = [key for key in serial_responses
                      if responses[key] != serial_responses[key]]
        assert not mismatched, f"{mode}: {len(mismatched)} responses diverged"

    # Coalescing must agree numerically (merged BLAS batches reorder the
    # reductions) and answer every line.
    _, _, coalesced = results["workers=2+coalesce"]
    assert set(coalesced) == set(serial_responses)
    for key, serial_line in serial_responses.items():
        expected, actual = json.loads(serial_line), json.loads(coalesced[key])
        if "result" in expected and "score" in expected["result"]:
            assert abs(actual["result"]["score"] - expected["result"]["score"]) < 1e-9
        else:
            assert actual == expected  # list heads stay byte-identical

    # ISSUE acceptance: measured speedup over the serial router at
    # batch-heavy load — the coalescing mode's reason to exist.
    coalesced_rps = NUM_LINES / results["workers=2+coalesce"][0]
    assert coalesced_rps >= 1.1 * serial_rps, (
        f"coalesced serving only {coalesced_rps / serial_rps:.2f}x serial")
    # Per-envelope concurrency pays a dispatch tax per line and cannot beat
    # serial without multicore BLAS; it must stay within a sane envelope of
    # the serial loop rather than collapse (lenient: shared CI runners).
    for mode in ("workers=2", "workers=4"):
        rps = NUM_LINES / results[mode][0]
        assert rps >= 0.2 * serial_rps, f"{mode} collapsed to {rps:.0f} req/s"
