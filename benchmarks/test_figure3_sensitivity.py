"""Benchmark E5 — regenerate Figure 3 (hyper-parameter sensitivity).

Sweeps the latent dimension d, the FFN depth l, the sequence length n˙ and
the dropout ratio ρ one at a time (reduced grids at the quick scale) on one
dataset per task, printing the metric series that Figure 3 plots.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import export_text, run_once
from repro.experiments.figure3_sensitivity import QUICK_GRIDS, run_figure3


@pytest.mark.parametrize("dataset,hyperparameter", [
    ("gowalla", "embed_dim"),
    ("gowalla", "max_seq_len"),
    ("trivago", "embed_dim"),
    ("trivago", "dropout"),
    ("beauty", "ffn_layers"),
    ("beauty", "dropout"),
])
def test_figure3_sensitivity(benchmark, scale, dataset, hyperparameter):
    series_list = run_once(
        benchmark, run_figure3,
        datasets=(dataset,), hyperparameters=(hyperparameter,), scale=scale,
    )
    assert len(series_list) == 1
    series = series_list[0]

    lines = [f"Figure 3 — {series.metric} on {dataset} vs. {hyperparameter}"]
    for value, score in zip(series.values, series.scores):
        lines.append(f"  {hyperparameter}={value}: {score:.4f}")
    lines.append(f"  best {hyperparameter}: {series.best_value()}")
    report = "\n".join(lines)
    print("\n" + report)
    export_text(f"figure3_{dataset}_{hyperparameter}", report)

    # Shape checks: the sweep covered the requested grid and produced finite,
    # bounded metrics; the spread across the grid stays moderate, matching the
    # paper's observation that SeqFM is not hypersensitive to any single knob.
    assert series.values == list(QUICK_GRIDS[hyperparameter])
    assert all(score >= 0.0 for score in series.scores)
    if series.metric in ("HR@10", "AUC"):
        assert all(score <= 1.0 for score in series.scores)
        assert max(series.scores) - min(series.scores) < 0.5
