"""Benchmark — the durability tax and the crash-recovery bill.

The same candidate-ranking stream (every ``rank-topk`` line carries an
explicit 100-event user history, so every line is one write-ahead-logged
store mutation on top of its 16-candidate model forward) is served through
two registries:

1. **in-memory** — the plain :class:`~repro.serving.cache.UserSequenceStore`
   behind the serial router: no journal, state dies with the process;
2. **durable** — :meth:`~repro.serving.registry.ModelRegistry.enable_durability`
   swaps in a :class:`~repro.serving.durability.DurableSequenceStore`:
   every mutation is CRC-framed into the write-ahead log with batched
   fsync (``fsync_every=256``) before it lands in memory.

The WAL append is a fixed per-mutation cost while the model forward scales
with the candidate set, so at the paper's serving workload (ranking a
candidate list per request) durability must cost **under 10% throughput**
(asserted).  Measurement is built for a noisy host: the two modes serve
the stream in *interleaved 100-line chunks* (a load spike hits both sides
of the ratio), the pass is repeated, and each mode keeps its best pass —
the closest observable to its noise-free cost.

The second half measures the *recovery* bill: the durable registry is cut
off without a checkpoint (the crash signature) and a fresh
:class:`DurableSequenceStore` is timed replaying the full log.  Recovery
must land byte-identically on the pre-crash ``snapshot()`` (asserted) —
the number reported is the startup cost of crashing instead of closing.
"""

from __future__ import annotations

import io
import json
import time

import numpy as np

from benchmarks.conftest import export_text
from repro.core.config import SeqFMConfig
from repro.core.model import SeqFM
from repro.serving import DurableSequenceStore, ModelRegistry, serve_jsonl

NUM_LINES = 1_000
EVENTS_PER_LINE = 100          # NUM_LINES * EVENTS_PER_LINE = 100k events
NUM_CANDIDATES = 16
NUM_USERS = 512
CHUNK = 100
REPS = 3
FSYNC_EVERY = 256
MAX_OVERHEAD = 0.10

CONFIG = SeqFMConfig(static_vocab_size=NUM_USERS + 256, dynamic_vocab_size=256,
                     max_seq_len=50, embed_dim=64, ffn_layers=1, dropout=0.0,
                     seed=0)


def _build_registry() -> ModelRegistry:
    model = SeqFM(CONFIG)
    rng = np.random.default_rng(1)
    for parameter in model.parameters():
        parameter.data += rng.normal(0.0, 0.1, parameter.data.shape)
    model.dynamic_embedding.reset_padding()
    registry = ModelRegistry()
    registry.register("m", model)
    return registry


def _build_lines() -> list:
    rng = np.random.default_rng(0)
    catalog = np.arange(NUM_USERS, NUM_USERS + 200)
    lines = []
    for index in range(NUM_LINES):
        user = int(rng.integers(0, NUM_USERS))
        history = [int(item) for item in
                   rng.integers(1, CONFIG.dynamic_vocab_size, EVENTS_PER_LINE)]
        candidates = [int(item) for item in
                      rng.choice(catalog, NUM_CANDIDATES, replace=False)]
        lines.append(json.dumps(
            {"v": 1, "head": "rank-topk", "id": f"r{index}",
             "payload": {"static_indices": [user, NUM_USERS + index % 200],
                         "candidates": candidates, "history": history,
                         "k": 8, "user_id": user}}))
    return lines


def _serve_chunk(registry, chunk) -> float:
    output = io.StringIO()
    started = time.perf_counter()
    summary = serve_jsonl(registry, "m",
                          io.StringIO("\n".join(chunk) + "\n"), output)
    elapsed = time.perf_counter() - started
    assert summary.errors == 0
    return elapsed


def test_wal_overhead_and_recovery_time(tmp_path):
    lines = _build_lines()
    plain_registry = _build_registry()
    durable_registry = _build_registry()
    durable = durable_registry.enable_durability("m", tmp_path / "wal",
                                                 fsync_every=FSYNC_EVERY)

    # Warm caches and BLAS outside the timed region.
    _serve_chunk(plain_registry, lines[:CHUNK])
    _serve_chunk(durable_registry, lines[:CHUNK])

    plain_times, durable_times = [], []
    for rep in range(REPS):
        plain_total = durable_total = 0.0
        for start in range(0, NUM_LINES, CHUNK):
            chunk = lines[start:start + CHUNK]
            if (start // CHUNK) % 2 == 0:   # alternate which mode goes first
                plain_total += _serve_chunk(plain_registry, chunk)
                durable_total += _serve_chunk(durable_registry, chunk)
            else:
                durable_total += _serve_chunk(durable_registry, chunk)
                plain_total += _serve_chunk(plain_registry, chunk)
        plain_times.append(plain_total)
        durable_times.append(durable_total)

    plain_time = min(plain_times)
    durable_time = min(durable_times)
    overhead = durable_time / plain_time - 1.0

    durable.sync()
    pre_crash = durable.snapshot()
    # Crash: no close(), no checkpoint — the WAL alone must rebuild state.
    wal_records = durable.wal_status()["last_seq"]
    wal_bytes = (tmp_path / "wal" / "wal.jsonl").stat().st_size

    started = time.perf_counter()
    recovered = DurableSequenceStore(tmp_path / "wal", CONFIG.max_seq_len,
                                     fsync_every=FSYNC_EVERY)
    recovery_time = time.perf_counter() - started
    assert recovered.snapshot() == pre_crash
    assert recovered.recovery.replayed == wal_records
    recovered.close()

    report = [
        "Durability: write-ahead-logged serving vs in-memory (quick scale)",
        "=" * 68,
        f"stream: {NUM_LINES} rank-topk lines x {EVENTS_PER_LINE} events "
        f"x {NUM_CANDIDATES} candidates = {NUM_LINES * EVENTS_PER_LINE:,} "
        f"events, {NUM_USERS} users",
        f"measurement: {REPS} passes of interleaved {CHUNK}-line chunks, "
        "best pass per mode",
        f"wal: fsync_every={FSYNC_EVERY}, {wal_records:,} records, "
        f"{wal_bytes / 1e6:.2f} MB",
        "",
        f"{'mode':<12} {'time (s)':>10} {'req/s':>10}",
        f"{'in-memory':<12} {plain_time:>10.3f} {NUM_LINES / plain_time:>10.0f}",
        f"{'durable':<12} {durable_time:>10.3f} {NUM_LINES / durable_time:>10.0f}",
        "",
        f"durability overhead: {overhead:+.1%} (budget < {MAX_OVERHEAD:.0%})",
        f"crash recovery: {wal_records:,} records replayed in "
        f"{recovery_time * 1e3:.1f} ms "
        f"({wal_records / max(recovery_time, 1e-9):,.0f} records/s), "
        "recovered snapshot byte-identical to pre-crash state",
    ]
    text = "\n".join(report)
    print("\n" + text)
    export_text("serving_durability", text)

    assert overhead < MAX_OVERHEAD, (
        f"WAL overhead {overhead:.1%} blew the {MAX_OVERHEAD:.0%} budget")
