"""Benchmark E8 — the time-complexity claim of Section III-I.

The paper argues the forward cost of SeqFM is O((n° + n˙)² · d + l · d²) per
instance and therefore *linear in the number of instances*.  This benchmark
measures (a) forward time as the batch size grows with everything else fixed
(expect ~linear growth) and (b) forward time as the latent dimension grows
(expect ~linear growth in d for fixed, small sequence length).
"""

from __future__ import annotations

import time

from benchmarks.conftest import export_text, run_once
from repro.core.config import SeqFMConfig
from repro.core.model import SeqFM
from repro.data.features import FeatureBatch
from repro.experiments.registry import build_context


def _timed_forward(model: SeqFM, batch: FeatureBatch, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        model.score(batch)
        best = min(best, time.perf_counter() - start)
    return best


def _batch_of_size(context, size: int) -> FeatureBatch:
    examples = context.train_examples
    replicated = [examples[i % len(examples)] for i in range(size)]
    return FeatureBatch.from_examples(replicated)


def test_forward_time_linear_in_batch_size(benchmark, scale):
    context = build_context("gowalla", scale=scale)
    model = SeqFM(context.seqfm_config())

    def measure():
        sizes = [256, 512, 1024, 2048]
        times = [_timed_forward(model, _batch_of_size(context, size), repeats=5) for size in sizes]
        return sizes, times

    sizes, times = run_once(benchmark, measure)

    lines = ["Forward wall-clock vs. batch size (fixed n°, n˙, d):"]
    for size, seconds in zip(sizes, times):
        lines.append(f"  batch={size:4d}  {seconds * 1e3:8.2f} ms  ({seconds / size * 1e6:6.2f} µs/instance)")
    report = "\n".join(lines)
    print("\n" + report)
    export_text("complexity_batch_size", report)

    # An 8× larger batch must cost clearly more than the smallest batch but far
    # less than the 64× a quadratic-in-instances model would imply; 24× leaves
    # generous headroom over the linear expectation of 8× for cache effects.
    assert times[-1] > times[0] * 1.5
    assert times[-1] < times[0] * 24


def test_forward_time_grows_with_embed_dim(benchmark, scale):
    context = build_context("gowalla", scale=scale)
    dims = [8, 32, 128]

    def measure():
        batch = _batch_of_size(context, 256)
        times = []
        for dim in dims:
            model = SeqFM(context.seqfm_config(embed_dim=dim))
            times.append(_timed_forward(model, batch))
        return times

    times = run_once(benchmark, measure)

    print()
    print("Forward wall-clock vs. latent dimension d (batch=256):")
    for dim, seconds in zip(dims, times):
        print(f"  d={dim:4d}  {seconds * 1e3:8.2f} ms")

    # Cost must increase with d, but far slower than quadratically over this
    # range (the dominant term is (n°+n˙)²·d which is linear in d).
    assert times[-1] > times[0]
    assert times[-1] < times[0] * (dims[-1] / dims[0]) ** 2


def test_parameter_count_linear_in_vocabulary(benchmark):
    def count(vocab_multiplier: int) -> int:
        config = SeqFMConfig(
            static_vocab_size=100 * vocab_multiplier,
            dynamic_vocab_size=80 * vocab_multiplier,
            embed_dim=16, dropout=0.0,
        )
        return SeqFM(config).num_parameters()

    counts = run_once(benchmark, lambda: [count(m) for m in (1, 2, 4)])

    print()
    print("SeqFM parameter count vs. vocabulary size multiplier:")
    for multiplier, total in zip((1, 2, 4), counts):
        print(f"  ×{multiplier}: {total:,} parameters")

    # Embedding growth dominates and is exactly linear in the vocabulary.
    first_delta = counts[1] - counts[0]
    second_delta = counts[2] - counts[1]
    assert second_delta == 2 * first_delta
