"""Benchmark E1 — regenerate Table I (dataset statistics).

Builds all six synthetic stand-in datasets, applies the paper's activity
filtering, and prints their statistics next to the paper's numbers for the
real datasets.
"""

from __future__ import annotations

from benchmarks.conftest import export_text, run_once
from repro.experiments import reference
from repro.experiments.table1 import ALL_DATASETS, run_table1


def test_table1_dataset_statistics(benchmark, scale):
    table = run_once(benchmark, run_table1, datasets=ALL_DATASETS, scale=scale)

    lines = [str(table), "", "Paper (real datasets):"]
    for name, stats in reference.TABLE1_DATASETS.items():
        lines.append(f"  {name:12s} instances={stats['instances']:>9,} users={stats['users']:>7,} "
                     f"objects={stats['objects']:>7,} features={stats['features']:>8,}")
    report = "\n".join(lines)
    print("\n" + report)
    export_text("table1_datasets", report)

    # Shape checks: all six datasets exist, are non-trivial, and the relative
    # ordering instances > users holds as in the paper.
    assert set(table.rows) == set(ALL_DATASETS)
    for dataset, row in table.rows.items():
        assert row["instances"] > row["users"] > 0
        assert row["features"] > row["objects"] > 0
