"""Benchmark — the online-learning loop at 100k logged events.

Continuous learning is only viable if tailing the serving journal is cheap
relative to serving itself.  This benchmark writes a WAL of **100,000 logged
click events** (25k ``record`` entries × 4 events, the shape
``DurableSequenceStore`` journals for the update head) and measures the two
costs an operator budgets for:

1. **log-to-gradient throughput** — :meth:`InteractionLogReader.tail` plus
   :func:`build_training_examples`: raw events/s from CRC-framed journal
   bytes to padded, maskable :class:`EncodedExample` rows.  This is the
   fixed preprocessing tax of every retrain cycle and must clear
   **20k events/s** (asserted; real hosts do far better) or the tail could
   not keep up with the durable store's own write path.
2. **end-to-end retrain wall time** — one full ``retrain_once`` cycle over
   the same log: tail → convert → warm-start → fused-negative incremental
   epoch → eval gate → versioned checkpoint + hot-swap + index rebuild.
   The trainer caps at the **newest 2,000 examples** (the documented
   ``max_examples`` knob — a retrain consumes the fresh tail, not the full
   archive), so the wall time reported is the steady-state promotion bill,
   dominated by the two gate evaluations.

The cycle must end **promoted** (generous tolerance — this measures cost,
not model quality) with the cursor parked at the final sequence number.
"""

from __future__ import annotations

import time

from benchmarks.conftest import export_text
from repro.core.model import SeqFM
from repro.core.tasks import make_task_model
from repro.core.trainer import Trainer
from repro.experiments.registry import build_context
from repro.online import (
    GateConfig,
    IncrementalTrainerConfig,
    InteractionLogReader,
    build_training_examples,
    retrain_once,
)
from repro.serving import ModelRegistry
from repro.serving.durability import WAL_NAME, WriteAheadLog

NUM_RECORDS = 25_000
EVENTS_PER_RECORD = 4          # NUM_RECORDS * EVENTS_PER_RECORD = 100k events
MAX_EXAMPLES = 2_000           # newest-first trainer cap (steady-state cycle)
GATE_USERS = 30                # held-out users scored per gate side
MIN_EVENTS_PER_SECOND = 20_000.0


def test_log_to_gradient_and_retrain_wall_time(tmp_path):
    context = build_context("gowalla", "quick")
    encoder = context.encoder
    users = [int(user) for user in encoder.known_users()]
    vocab = encoder.dynamic_vocab_size

    # -- the logged-click archive ---------------------------------------- #
    wal_path = tmp_path / WAL_NAME
    wal = WriteAheadLog(wal_path)
    for index in range(NUM_RECORDS):
        events = [1 + (index * EVENTS_PER_RECORD + step) % (vocab - 1)
                  for step in range(EVENTS_PER_RECORD)]
        wal.append({"op": "record", "user": users[index % len(users)],
                    "fp": [0], "stamp": float(index), "events": events})
    wal.sync()
    wal.close()
    total_events = NUM_RECORDS * EVENTS_PER_RECORD

    # -- 1. log-to-gradient: tail + convert ------------------------------ #
    reader = InteractionLogReader(wal_path,
                                  cursor_path=tmp_path / "probe-cursor.json")
    started = time.perf_counter()
    tail = reader.tail()
    build = build_training_examples(tail.interactions, encoder)
    convert_seconds = time.perf_counter() - started
    assert tail.events_total == total_events
    assert len(build.examples) == total_events
    events_per_second = total_events / convert_seconds
    assert events_per_second > MIN_EVENTS_PER_SECOND, (
        f"log-to-gradient {events_per_second:,.0f} events/s is below the "
        f"{MIN_EVENTS_PER_SECOND:,.0f} floor")

    # -- 2. end-to-end retrain cycle -------------------------------------- #
    model = SeqFM(context.seqfm_config())
    Trainer(make_task_model(model, context.task), encoder,
            sampler=context.sampler,
            config=context.trainer_config(epochs=1)).fit(
                context.train_examples)
    registry = ModelRegistry()
    registry.register("m", model)
    registry.build_index("m", range(encoder.num_users,
                                    encoder.num_users + encoder.num_objects))

    started = time.perf_counter()
    report = retrain_once(
        registry, "m", wal_path=wal_path, online_dir=tmp_path / "online",
        encoder=encoder, log=context.log, split=context.split,
        task=context.task,
        gate_config=GateConfig(tolerance=5.0, max_users=GATE_USERS),
        trainer_config=IncrementalTrainerConfig(
            epochs=1, max_examples=MAX_EXAMPLES))
    retrain_seconds = time.perf_counter() - started
    assert report.status == "promoted"
    assert report.events == total_events
    assert report.examples == MAX_EXAMPLES
    assert report.examples_capped == total_events - MAX_EXAMPLES
    assert report.end_seq == NUM_RECORDS

    lines = [
        "online learning — tail/convert throughput and retrain wall time",
        "=" * 66,
        f"logged events        {total_events:>12,}   "
        f"({NUM_RECORDS:,} records x {EVENTS_PER_RECORD})",
        "",
        "log-to-gradient (tail + example build)",
        f"  wall time          {convert_seconds:>12.3f} s",
        f"  throughput         {events_per_second:>12,.0f} events/s   "
        f"(floor {MIN_EVENTS_PER_SECOND:,.0f})",
        "",
        f"end-to-end retrain (max_examples={MAX_EXAMPLES:,}, "
        f"gate max_users={GATE_USERS})",
        f"  wall time          {retrain_seconds:>12.3f} s",
        f"  gradient step      {report.train_seconds:>12.3f} s   "
        f"({report.examples:,} newest examples, "
        f"{report.examples_capped:,} capped)",
        f"  outcome            {report.status:>12}   "
        f"tag={report.tag} cursor seq {report.start_seq} -> {report.end_seq}",
    ]
    text = "\n".join(lines)
    print("\n" + text)
    export_text("online_learning", text)
