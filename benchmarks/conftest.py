"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper at the ``quick``
scale (small synthetic datasets, few epochs) so the full suite completes in
minutes on a CPU.  The measured numbers are printed next to the paper's
reported values; absolute agreement is not expected (different data scale and
substrate), but the qualitative shape — who wins, roughly by how much — is
asserted where the paper's claim is specific.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict

import pytest

#: The scale every benchmark runs at.  Switch to "small" for a slower,
#: higher-fidelity regeneration of the tables.
BENCHMARK_SCALE = "quick"

#: Regenerated tables/figures are also written here as plain text so they are
#: easy to inspect and to archive (pytest captures stdout of passing tests).
RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

#: Tables staged by :func:`export_text` during the currently running test,
#: keyed by destination path.  Flushed to ``results/`` only if that test
#: passes (see :func:`pytest_runtest_makereport`).
_pending_exports: Dict[Path, str] = {}


def export_text(name: str, text: str) -> Path:
    """Stage a regenerated table/figure for ``results/<name>.txt``.

    The write is deferred until the calling test *passes*: benchmarks export
    their report before their acceptance asserts run, and a run that fails an
    acceptance gate (or runs on a contended machine that trips one) must not
    overwrite the committed artifact with numbers the suite itself rejected.
    """
    path = RESULTS_DIR / f"{name}.txt"
    _pending_exports[path] = text + "\n"
    return path


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    outcome = yield
    report = outcome.get_result()
    if report.when == "call":
        if report.passed:
            RESULTS_DIR.mkdir(parents=True, exist_ok=True)
            for path, text in _pending_exports.items():
                path.write_text(text)
        _pending_exports.clear()


@pytest.fixture(scope="session")
def scale() -> str:
    return BENCHMARK_SCALE


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    The experiments are full train-and-evaluate cycles; repeating them for
    statistical timing would multiply the suite's runtime for no benefit, so
    every benchmark uses a single round.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
