"""Benchmark — serving throughput: single-request vs. micro-batched vs. cached.

The serving subsystem (`repro.serving`) exists to make inference fast at
production request granularity.  This benchmark quantifies the claim instead
of asserting it: the same stream of single-candidate scoring requests is
pushed through

1. **single** — the status quo ante: one ``SeqFM.score`` call per request
   (autograd-layer forward, batch of one);
2. **single-engine** — the graph-free engine, still one request per call
   (isolates the autograd overhead from the batching win);
3. **batched** — the micro-batcher coalescing requests into batches of 256;
4. **cached** — batched plus a warm LRU user-sequence store (repeat users
   skip history re-encoding).

Acceptance (ISSUE 1): batched throughput ≥ 5× single-request throughput.
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks.conftest import export_text, run_once
from repro.core.config import SeqFMConfig
from repro.core.model import SeqFM
from repro.serving import InferenceEngine, MicroBatcher, UserSequenceStore

NUM_REQUESTS = 2048
MAX_BATCH = 256
NUM_USERS = 64  # requests revisit users, so the sequence store gets hits

CONFIG = SeqFMConfig(static_vocab_size=512, dynamic_vocab_size=256, max_seq_len=20,
                     embed_dim=32, ffn_layers=1, dropout=0.0, seed=0)


def _build_requests():
    from repro.serving import ScoreRequest

    rng = np.random.default_rng(0)
    histories = {
        user: [int(item) for item in rng.integers(1, CONFIG.dynamic_vocab_size,
                                                  int(rng.integers(5, CONFIG.max_seq_len + 5)))]
        for user in range(NUM_USERS)
    }
    requests = []
    for index in range(NUM_REQUESTS):
        user = int(rng.integers(0, NUM_USERS))
        requests.append(ScoreRequest(
            static_indices=[user, int(rng.integers(NUM_USERS, CONFIG.static_vocab_size))],
            history=histories[user],
            user_id=user,
            object_id=index,
        ))
    return requests


def _throughput(label, fn, rows):
    start = time.perf_counter()
    scores = fn()
    elapsed = time.perf_counter() - start
    assert len(scores) == rows and np.isfinite(scores).all()
    return rows / elapsed, elapsed, scores


def test_batched_serving_throughput(benchmark):
    model = SeqFM(CONFIG)
    rng = np.random.default_rng(1)
    for parameter in model.parameters():
        parameter.data += rng.normal(0.0, 0.1, parameter.data.shape)
    model.dynamic_embedding.reset_padding()

    engine = InferenceEngine(model)
    requests = _build_requests()
    collate = MicroBatcher(engine.score, max_seq_len=CONFIG.max_seq_len).collate
    single_batches = [collate([request]) for request in requests]

    def measure():
        results = {}
        # 1. one autograd-layer score() call per request (the pre-serving path)
        results["single"] = _throughput(
            "single", lambda: np.array([model.score(batch)[0] for batch in single_batches]),
            NUM_REQUESTS)
        # 2. graph-free engine, still one request at a time
        results["single-engine"] = _throughput(
            "single-engine", lambda: np.array([engine.score(batch)[0] for batch in single_batches]),
            NUM_REQUESTS)
        # 3. micro-batched
        batched = MicroBatcher(engine.score, max_batch_size=MAX_BATCH,
                               max_seq_len=CONFIG.max_seq_len)
        results["batched"] = _throughput(
            "batched", lambda: batched.score_all(requests), NUM_REQUESTS)
        # 4. micro-batched + warm user-sequence cache
        store = UserSequenceStore(CONFIG.max_seq_len, capacity=NUM_USERS)
        cached = MicroBatcher(engine.score, max_batch_size=MAX_BATCH,
                              max_seq_len=CONFIG.max_seq_len, sequence_store=store)
        cached.score_all(requests)  # warm the store
        results["cached"] = _throughput(
            "cached", lambda: cached.score_all(requests), NUM_REQUESTS)
        results["cache_stats"] = store.stats
        return results

    results = run_once(benchmark, measure)

    single_rps = results["single"][0]
    lines = [f"Serving throughput, {NUM_REQUESTS} requests "
             f"(d={CONFIG.embed_dim}, n˙={CONFIG.max_seq_len}, batch≤{MAX_BATCH}):"]
    for label in ("single", "single-engine", "batched", "cached"):
        rps, elapsed, _ = results[label]
        lines.append(f"  {label:14s} {rps:10.0f} req/s  "
                     f"({elapsed * 1e3:8.1f} ms total, {rps / single_rps:6.2f}× single)")
    stats = results["cache_stats"]
    lines.append(f"  sequence store: {stats.hits} hits / {stats.misses} misses "
                 f"(hit rate {stats.hit_rate:.2f})")
    report = "\n".join(lines)
    print("\n" + report)
    export_text("serving_throughput", report)

    # Identical math, different execution strategy: scores must agree.
    np.testing.assert_allclose(results["batched"][2], results["cached"][2], atol=1e-12)
    np.testing.assert_allclose(results["single-engine"][2], results["single"][2], atol=1e-10)

    # ISSUE acceptance: batched ≥ 5× single-request throughput.
    assert results["batched"][0] >= 5.0 * single_rps, (
        f"batched serving only {results['batched'][0] / single_rps:.1f}× single-request")
    # The warm cache must not be meaningfully slower than uncached batching
    # (it skips re-encoding).  Generous bound: single-run wall-clock timings
    # inside the tier-1 gate must not flake under CPU contention.
    assert results["cached"][0] >= 0.5 * results["batched"][0]
    # And the cache must actually be exercised.
    assert stats.hits > 0


def test_protocol_dispatch_overhead(benchmark):
    """The generic HeadRegistry dispatcher vs. the hardcoded serving path.

    ISSUE 5 acceptance: collapsing the per-head ``*_batch`` functions onto
    ``execute_batch`` (head lookup, ``Head.parse``, ``Head.execute``,
    response/stats assembly) must cost < 5% versus the equivalent
    hand-wired parse-then-``score_all`` path those functions used to be.
    Both sides parse the same JSON payloads and run the same micro-batched
    forward, so the delta isolates the dispatch machinery itself.
    """
    from repro.serving import ModelRegistry, ServeDefaults, default_heads
    from repro.serving.service import execute_batch

    model = SeqFM(CONFIG)
    rng = np.random.default_rng(1)
    for parameter in model.parameters():
        parameter.data += rng.normal(0.0, 0.1, parameter.data.shape)
    model.dynamic_embedding.reset_padding()

    registry = ModelRegistry()
    registry.register("m", model)
    payloads = [
        {"static_indices": list(request.static_indices),
         "history": list(request.history),
         "user_id": request.user_id, "object_id": request.object_id}
        for request in _build_requests()
    ]
    head = default_heads().get("score")
    defaults = ServeDefaults()
    entry = registry.get("m")

    def hardcoded():
        # the PR-4 shape: bespoke parse + direct batcher.score_all
        requests = [head.parse(payload, defaults) for payload in payloads]
        batcher = entry.batcher(max_batch_size=MAX_BATCH, head="score")
        return [float(score) for score in batcher.score_all(requests)]

    def generic():
        return execute_batch(registry, "m", payloads, head="score",
                             max_batch_size=MAX_BATCH)

    def measure():
        hardcoded(), generic()  # warm-up: imports, caches, allocator
        # Interleave the two paths so both sample the same noise environment
        # (back-to-back windows would let a CPU-contention swing on a shared
        # CI runner masquerade as dispatch overhead); best-of discards the
        # contended rounds entirely.
        direct_timings, generic_timings = [], []
        for _ in range(7):
            for fn, timings in ((hardcoded, direct_timings),
                                (generic, generic_timings)):
                start = time.perf_counter()
                fn()
                timings.append(time.perf_counter() - start)
        return min(direct_timings), min(generic_timings)

    direct_s, generic_s = run_once(benchmark, measure)
    overhead = generic_s / direct_s - 1.0
    report = "\n".join([
        f"Generic protocol dispatch vs hardcoded serving path "
        f"({NUM_REQUESTS} requests, batch≤{MAX_BATCH}, best of 7 interleaved):",
        f"  hardcoded parse+score_all  {direct_s * 1e3:8.1f} ms "
        f"({NUM_REQUESTS / direct_s:10.0f} req/s)",
        f"  execute_batch (registry)   {generic_s * 1e3:8.1f} ms "
        f"({NUM_REQUESTS / generic_s:10.0f} req/s)",
        f"  dispatcher overhead        {overhead * 100:+8.2f} %",
    ])
    print("\n" + report)
    export_text("serving_protocol_overhead", report)

    parity = np.asarray(hardcoded()) - np.asarray(generic()["scores"])
    np.testing.assert_allclose(parity, 0.0, atol=1e-12)
    # ISSUE acceptance: the generic dispatcher adds < 5% overhead.
    assert overhead < 0.05, (
        f"generic dispatch adds {overhead * 100:.1f}% over the hardcoded path")
