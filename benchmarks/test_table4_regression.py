"""Benchmark E4 — regenerate Table IV (regression / rating prediction).

Trains SeqFM and the regression baselines on the Beauty-like and Toys-like
rating logs with the squared-error loss and reports MAE / RRSE, side by side
with the paper.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import export_text, run_once
from repro.experiments import reference
from repro.experiments.reporting import compare_to_paper
from repro.experiments.table4 import REGRESSION_MODELS, run_table4


@pytest.mark.parametrize("dataset", ["beauty", "toys"])
def test_table4_regression(benchmark, scale, dataset):
    tables = run_once(benchmark, run_table4, datasets=(dataset,),
                      models=REGRESSION_MODELS, scale=scale)
    table = tables[dataset]

    report = "\n".join([
        str(table), "",
        compare_to_paper(table, reference.TABLE4_REGRESSION[dataset]),
    ])
    print("\n" + report)
    export_text(f"table4_regression_{dataset}", report)

    # Shape checks: errors are finite and positive, every model is meaningfully
    # better than a degenerate predictor, and SeqFM sits in the top tier on MAE
    # (strictly first in the paper).
    for row in table.rows.values():
        assert row["MAE"] > 0.0
        assert row["RRSE"] > 0.0
    best_model = table.best_row("MAE", maximise=False)
    assert table.get("SeqFM", "MAE") <= table.get(best_model, "MAE") + 0.15
    # Sequence-awareness must not lose to the plain set-category FM.
    assert table.get("SeqFM", "MAE") <= table.get("FM", "MAE") + 0.05
