"""Benchmark — candidate ranking throughput: naive per-candidate vs fast path.

The paper's headline workload is next-item ranking: score J+1 candidate
objects that share one user and one interaction history (RankingTask,
Table 2).  The serving fast path (`InferenceEngine.rank_candidates`) computes
every candidate-independent quantity — the n˙²-cost dynamic view, the dynamic
linear sum, the cross-view K/V projections of the history — once per user and
broadcasts it across the C candidate rows.  This benchmark quantifies that
claim on the same candidate lists pushed through

1. **naive** — the status quo ante: one single-row ``engine.score`` call per
   candidate (what a scoring-head request stream costs);
2. **batched** — one ``engine.score`` call on the materialised C-row batch
   (``FeatureBatch.for_candidates``): amortises Python/NumPy call overhead
   but still recomputes the history work per row;
3. **fast** — ``engine.rank_candidates``: one call, history work once;
4. **fast-cached** — the registry-style rank head (``MicroBatcher.rank``)
   with a warm user-sequence store, so repeat users also skip re-encoding.

Acceptance (ISSUE 3): fast-path candidates/sec ≥ 5× naive at C=500.
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks.conftest import export_text, run_once
from repro.core.config import SeqFMConfig
from repro.core.model import SeqFM
from repro.data.features import FeatureBatch, pad_sequences
from repro.serving import InferenceEngine, MicroBatcher, RankRequest, UserSequenceStore

NUM_USERS = 4
CANDIDATE_COUNTS = (100, 500)
REQUIRED_SPEEDUP = 5.0  # at C=500, fast vs naive

CONFIG = SeqFMConfig(static_vocab_size=1024, dynamic_vocab_size=512, max_seq_len=20,
                     embed_dim=32, ffn_layers=1, dropout=0.0, seed=0)


def _build_model() -> SeqFM:
    model = SeqFM(CONFIG)
    rng = np.random.default_rng(1)
    for parameter in model.parameters():
        parameter.data += rng.normal(0.0, 0.1, parameter.data.shape)
    model.dynamic_embedding.reset_padding()
    return model


def _build_users(num_candidates: int):
    """Per user: (static profile, raw history, candidate index array)."""
    rng = np.random.default_rng(2)
    users = []
    for user in range(NUM_USERS):
        history = rng.integers(1, CONFIG.dynamic_vocab_size, CONFIG.max_seq_len)
        candidates = rng.choice(
            np.arange(NUM_USERS, CONFIG.static_vocab_size), num_candidates, replace=False
        ).astype(np.int64)
        users.append((np.array([user, candidates[0]], dtype=np.int64),
                      [int(item) for item in history], candidates))
    return users


def _throughput(fn, candidates_total):
    start = time.perf_counter()
    scores = fn()
    elapsed = time.perf_counter() - start
    stacked = np.concatenate(scores)
    assert stacked.shape == (candidates_total,) and np.isfinite(stacked).all()
    return candidates_total / elapsed, elapsed, stacked


def test_candidate_ranking_throughput(benchmark):
    model = _build_model()
    engine = InferenceEngine(model)

    def measure():
        all_results = {}
        for num_candidates in CANDIDATE_COUNTS:
            users = _build_users(num_candidates)
            total = NUM_USERS * num_candidates
            results = {}

            # 1. one single-row engine.score call per candidate
            single_batches = []
            for profile, history, candidates in users:
                dynamic, mask = pad_sequences([history], CONFIG.max_seq_len)
                naive = FeatureBatch.for_candidates(profile, candidates, dynamic[0], mask[0])
                single_batches.append([
                    FeatureBatch(
                        static_indices=naive.static_indices[row:row + 1],
                        dynamic_indices=naive.dynamic_indices[row:row + 1],
                        dynamic_mask=naive.dynamic_mask[row:row + 1],
                        labels=naive.labels[row:row + 1],
                        user_ids=naive.user_ids[row:row + 1],
                        object_ids=naive.object_ids[row:row + 1],
                    )
                    for row in range(num_candidates)
                ])
            results["naive"] = _throughput(
                lambda: [np.concatenate([engine.score(batch) for batch in batches])
                         for batches in single_batches],
                total)

            # 2. one engine.score call on the materialised C-row batch
            row_batches = []
            for profile, history, candidates in users:
                dynamic, mask = pad_sequences([history], CONFIG.max_seq_len)
                row_batches.append(
                    FeatureBatch.for_candidates(profile, candidates, dynamic[0], mask[0])
                )
            results["batched"] = _throughput(
                lambda: [engine.score(batch) for batch in row_batches], total)

            # 3. the fast path: candidate-independent work once per user
            results["fast"] = _throughput(
                lambda: [engine.rank_candidates(profile, candidates, history)
                         for profile, history, candidates in users],
                total)

            # 4. the rank head with a warm user-sequence store
            store = UserSequenceStore(CONFIG.max_seq_len, capacity=NUM_USERS)
            rank_head = MicroBatcher(engine.score, max_seq_len=CONFIG.max_seq_len,
                                     sequence_store=store, rank_fn=engine.rank_topk)
            requests = [
                RankRequest(static_indices=profile, candidates=candidates,
                            history=history, user_id=user)
                for user, (profile, history, candidates) in enumerate(users)
            ]
            rank_head.rank_all(requests)  # warm the store
            results["fast-cached"] = _throughput(
                lambda: [result.scores for result in rank_head.rank_all(requests)],
                total)
            results["cache_stats"] = store.stats
            all_results[num_candidates] = results
        return all_results

    all_results = run_once(benchmark, measure)

    lines = [f"Candidate ranking throughput, {NUM_USERS} users "
             f"(d={CONFIG.embed_dim}, n˙={CONFIG.max_seq_len})"]
    for num_candidates, results in all_results.items():
        naive_cps = results["naive"][0]
        lines.append(f"C={num_candidates}:")
        for label in ("naive", "batched", "fast", "fast-cached"):
            cps, elapsed, _ = results[label]
            lines.append(f"  {label:12s} {cps:10.0f} candidates/s  "
                         f"({elapsed * 1e3:8.1f} ms total, {cps / naive_cps:6.2f}× naive)")
        stats = results["cache_stats"]
        lines.append(f"  sequence store: {stats.hits} hits / {stats.misses} misses "
                     f"(hit rate {stats.hit_rate:.2f})")
    report = "\n".join(lines)
    print("\n" + report)
    export_text("ranking_throughput", report)

    for num_candidates, results in all_results.items():
        # Identical math, different execution strategy: scores must agree.
        np.testing.assert_allclose(results["fast"][2], results["naive"][2],
                                   rtol=0.0, atol=1e-10)
        np.testing.assert_allclose(results["batched"][2], results["naive"][2],
                                   rtol=0.0, atol=1e-10)
        # fast-cached ranks (sorts) its output; compare per user, re-sorted.
        for user in range(NUM_USERS):
            span = slice(user * num_candidates, (user + 1) * num_candidates)
            np.testing.assert_allclose(
                results["fast-cached"][2][span],
                np.sort(results["naive"][2][span])[::-1],
                rtol=0.0, atol=1e-10)
        # And the store must actually be exercised on the warm pass.
        assert results["cache_stats"].hits > 0

    # ISSUE acceptance: fast path ≥ 5× naive per-candidate scoring at C=500.
    speedup = all_results[500]["fast"][0] / all_results[500]["naive"][0]
    assert speedup >= REQUIRED_SPEEDUP, (
        f"ranking fast path only {speedup:.1f}× naive per-candidate scoring")
