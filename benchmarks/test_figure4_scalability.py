"""Benchmark E7 — regenerate Figure 4 (training time vs. data proportion).

Trains SeqFM for one epoch on {0.2, 0.4, 0.6, 0.8, 1.0} of the Trivago-like
training data and checks that the wall-clock training time grows roughly
linearly with the data size — the scalability claim of Section VI-D.
"""

from __future__ import annotations

from benchmarks.conftest import export_text, run_once
from repro.experiments import reference
from repro.experiments.figure4_scalability import run_figure4


def test_figure4_training_time_scales_linearly(benchmark, scale):
    # The scalability measurement needs enough work per point for wall-clock
    # noise to stay small relative to the trend, so it always runs at the
    # "small" scale with two epochs per proportion regardless of the suite's
    # default scale.
    result = run_once(benchmark, run_figure4, dataset="trivago",
                      proportions=(0.2, 0.4, 0.6, 0.8, 1.0), scale="small", epochs=2)

    lines = [
        "Figure 4 — SeqFM training time vs. proportion of Trivago-like training data",
        f"  {'proportion':>10s} {'examples':>9s} {'seconds':>9s}   paper (×10³ s)",
    ]
    for proportion, seconds, count in zip(result.proportions, result.train_seconds,
                                          result.num_examples):
        paper = reference.FIGURE4_SCALABILITY.get(proportion, float('nan'))
        lines.append(f"  {proportion:10.1f} {count:9d} {seconds:9.2f}   {paper:.2f}")
    lines.append(f"  linear-fit R^2 = {result.linear_r_squared:.4f}")
    report = "\n".join(lines)
    print("\n" + report)
    export_text("figure4_scalability", report)

    # Shape checks: more data never gets dramatically cheaper, the largest run
    # costs clearly more than the smallest, and a straight line explains the
    # bulk of the variance — the paper's "approximately linear" observation.
    assert len(result.proportions) == 5
    assert result.train_seconds[-1] > result.train_seconds[0]
    assert result.linear_r_squared > 0.8
