"""Benchmark E2 — regenerate Table II (ranking / next-POI recommendation).

Trains SeqFM and all seven ranking baselines on the Gowalla-like and
Foursquare-like datasets with the BPR loss and reports HR@K / NDCG@K under
the leave-one-out protocol, side by side with the paper's numbers.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import export_text, run_once
from repro.experiments import reference
from repro.experiments.reporting import compare_to_paper
from repro.experiments.table2 import RANKING_MODELS, run_table2


@pytest.mark.parametrize("dataset", ["gowalla", "foursquare"])
def test_table2_ranking(benchmark, scale, dataset):
    tables = run_once(benchmark, run_table2, datasets=(dataset,), models=RANKING_MODELS, scale=scale)
    table = tables[dataset]

    report = "\n".join([
        str(table), "",
        compare_to_paper(table, reference.TABLE2_RANKING[dataset], columns=["HR@10", "NDCG@10"]),
    ])
    print("\n" + report)
    export_text(f"table2_ranking_{dataset}", report)

    # Shape checks mirroring the paper's headline observations:
    # every model produced sane, bounded metrics ...
    for row in table.rows.values():
        for value in row.values():
            assert 0.0 <= value <= 1.0
    # ... and SeqFM sits in the top tier on HR@10 (within a few points of the
    # best model in this scaled-down run; in the paper it is strictly first).
    # The tolerances absorb seed-level training noise on the tiny quick grid:
    # a seed sweep puts single-run HR@10 swings at ±0.03-0.05, well above the
    # model gaps the paper reports at full scale.
    best_model = table.best_row("HR@10")
    assert table.get("SeqFM", "HR@10") >= table.get(best_model, "HR@10") - 0.08
    # SeqFM keeps up with the plain, order-free FM — the paper's central claim.
    assert table.get("SeqFM", "HR@10") >= table.get("FM", "HR@10") - 0.05
