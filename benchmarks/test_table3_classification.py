"""Benchmark E3 — regenerate Table III (classification / CTR prediction).

Trains SeqFM and the CTR baselines on the Trivago-like and Taobao-like click
logs with the log loss and reports AUC / RMSE, side by side with the paper.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import export_text, run_once
from repro.experiments import reference
from repro.experiments.reporting import compare_to_paper
from repro.experiments.table3 import CLASSIFICATION_MODELS, run_table3


@pytest.mark.parametrize("dataset", ["trivago", "taobao"])
def test_table3_classification(benchmark, scale, dataset):
    tables = run_once(benchmark, run_table3, datasets=(dataset,),
                      models=CLASSIFICATION_MODELS, scale=scale)
    table = tables[dataset]

    report = "\n".join([
        str(table), "",
        compare_to_paper(table, reference.TABLE3_CLASSIFICATION[dataset]),
    ])
    print("\n" + report)
    export_text(f"table3_classification_{dataset}", report)

    # Shape checks: AUC bounded, every trained model is better than random
    # guessing, and SeqFM lands in the top tier (the paper has it first).
    for row in table.rows.values():
        assert 0.0 <= row["AUC"] <= 1.0
        assert row["RMSE"] >= 0.0
    assert table.get("SeqFM", "AUC") > 0.55
    # The tolerances absorb seed-level training noise on the tiny quick grid
    # (a seed sweep puts single-run AUC swings at ±0.03).
    best_model = table.best_row("AUC")
    assert table.get("SeqFM", "AUC") >= table.get(best_model, "AUC") - 0.08
    # Sequence-awareness must not lose to the plain set-category FM.
    assert table.get("SeqFM", "AUC") >= table.get("FM", "AUC") - 0.05
