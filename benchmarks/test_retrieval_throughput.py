"""Benchmark — two-stage retrieval: exact vs IVF search, and the end-to-end
retrieve → rank pipeline vs brute-force full-catalog ranking.

The ranking fast path (PR 3) made re-ranking a *given* candidate list cheap;
at production catalog sizes the bottleneck moves to producing the list.  This
benchmark measures the retrieval subsystem (:mod:`repro.retrieval`) on
clustered synthetic catalogs (item embeddings drawn from a mixture of
Gaussians — the shape trained embedding tables actually take):

1. **search** — queries/sec of :class:`ExactIndex` (blocked brute force) vs
   :class:`IVFIndex` at default settings (``⌈√n⌉`` partitions, a quarter
   probed) for top-100 retrieval at 10k and 100k items, with IVF recall@100
   measured against the exact oracle;
2. **end-to-end** — one user's top-10 out of the *whole catalog*: brute-force
   exact scoring of every item (chunked ``rank_candidates``) vs the two-stage
   pipeline (surrogate index sweep → 500-candidate exact re-rank).

Acceptance (ISSUE 4): IVF recall@100 ≥ 0.95 at default settings with a
measured speedup over exact search at the 100k-item catalog, and the pipeline
top-10 must agree with brute force to 1e-10 on the ExactIndex backend.
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks.conftest import export_text, run_once
from repro.core.config import SeqFMConfig
from repro.core.model import SeqFM
from repro.nn import kernels
from repro.retrieval import ExactIndex, IVFIndex, ItemIndex, RetrievePipeline, recall_at
from repro.serving import InferenceEngine

NUM_USERS = 32
NUM_QUERIES = 16
CATALOG_SIZES = (10_000, 100_000)
END_TO_END_CATALOG = 10_000
N_RETRIEVE = 500
TOP_K = 10
RECALL_FLOOR = 0.95        # IVF recall@100 at default settings, 100k items
SEARCH_SPEEDUP_FLOOR = 1.5  # IVF queries/sec over exact at 100k items

EMBED_DIM = 32
NUM_CLUSTERS = 80


def _build_model(num_items: int, seed: int = 0):
    config = SeqFMConfig(
        static_vocab_size=NUM_USERS + num_items,
        dynamic_vocab_size=4096,
        max_seq_len=20,
        embed_dim=EMBED_DIM,
        ffn_layers=1,
        dropout=0.0,
        seed=seed,
    )
    model = SeqFM(config)
    rng = np.random.default_rng(seed + 1)
    for parameter in model.parameters():
        parameter.data += rng.normal(0.0, 0.1, parameter.data.shape)
    model.dynamic_embedding.reset_padding()
    catalog = np.arange(NUM_USERS, NUM_USERS + num_items, dtype=np.int64)
    # Clustered item embeddings: the regime trained catalogs converge to and
    # the one IVF partitioning is designed for.
    centers = rng.normal(0.0, 0.5, (NUM_CLUSTERS, EMBED_DIM))
    members = rng.integers(0, NUM_CLUSTERS, num_items)
    model.static_embedding.weight.data[catalog] = (
        centers[members] + rng.normal(0.0, 0.08, (num_items, EMBED_DIM))
    )
    return model, catalog, config


def _encode_queries(engine, index, config, count=NUM_QUERIES, seed=5):
    from repro.retrieval import QueryEncoder

    rng = np.random.default_rng(seed)
    encoder = QueryEncoder(engine, index)
    queries = []
    for user in range(count):
        history = [int(item) for item in
                   rng.integers(1, config.dynamic_vocab_size, config.max_seq_len)]
        profile = np.array([user, int(index.item_ids[0])], dtype=np.int64)
        queries.append((profile, history, encoder.encode(profile, history)))
    return queries


def test_retrieval_search_throughput(benchmark):
    def measure():
        results = {}
        for num_items in CATALOG_SIZES:
            model, catalog, config = _build_model(num_items)
            engine = InferenceEngine(model)
            index = ItemIndex.from_model(engine, catalog, partition=False)

            built_at = time.perf_counter()
            index.build_partitions()  # default ⌈√n⌉ partitions
            ivf_build_seconds = time.perf_counter() - built_at

            exact = ExactIndex(index)
            ivf = IVFIndex(index)  # default: a quarter of the partitions probed

            queries = _encode_queries(engine, index, config)

            start = time.perf_counter()
            exact_ids = [
                exact.search(q.vector, 100, partition_offsets=q.partition_offsets)[0]
                for _, _, q in queries
            ]
            exact_seconds = time.perf_counter() - start

            start = time.perf_counter()
            ivf_ids = [
                ivf.search(q.vector, 100, partition_offsets=q.partition_offsets)[0]
                for _, _, q in queries
            ]
            ivf_seconds = time.perf_counter() - start

            recalls = [recall_at(e, i) for e, i in zip(exact_ids, ivf_ids)]
            results[num_items] = {
                "exact_qps": len(queries) / exact_seconds,
                "ivf_qps": len(queries) / ivf_seconds,
                "speedup": exact_seconds / ivf_seconds,
                "recall": float(np.mean(recalls)),
                "recall_min": float(np.min(recalls)),
                "ivf_build_seconds": ivf_build_seconds,
                "n_partitions": ivf.n_partitions,
                "n_probe": ivf.n_probe,
            }
        return results

    results = run_once(benchmark, measure)

    lines = [f"Retrieval search throughput, top-100, {NUM_QUERIES} queries "
             f"(d={EMBED_DIM}, clustered catalogs)"]
    for num_items, row in results.items():
        lines.append(
            f"catalog={num_items:7d}  exact {row['exact_qps']:8.1f} q/s   "
            f"IVF {row['ivf_qps']:8.1f} q/s ({row['speedup']:5.2f}x, "
            f"{row['n_probe']}/{row['n_partitions']} partitions probed)   "
            f"recall@100 {row['recall']:.3f} (min {row['recall_min']:.3f})   "
            f"[IVF build {row['ivf_build_seconds']:.1f}s]"
        )
    report = "\n".join(lines)
    print("\n" + report)
    export_text("retrieval_throughput", report)

    # ISSUE acceptance at the 100k-item catalog.
    top = results[100_000]
    assert top["recall"] >= RECALL_FLOOR, (
        f"IVF recall@100 {top['recall']:.3f} below {RECALL_FLOOR}")
    assert top["speedup"] >= SEARCH_SPEEDUP_FLOOR, (
        f"IVF only {top['speedup']:.2f}x exact search at 100k items")


def test_retrieve_then_rank_end_to_end(benchmark):
    def measure():
        model, catalog, config = _build_model(END_TO_END_CATALOG)
        engine = InferenceEngine(model)
        index = ItemIndex.from_model(engine, catalog)
        pipeline = RetrievePipeline(engine, ExactIndex(index), n_retrieve=N_RETRIEVE)
        ivf_pipeline = RetrievePipeline(engine, IVFIndex(index), n_retrieve=N_RETRIEVE)

        rng = np.random.default_rng(6)
        users = []
        for user in range(8):
            history = [int(item) for item in
                       rng.integers(1, config.dynamic_vocab_size, config.max_seq_len)]
            users.append((np.array([user, int(catalog[0])], dtype=np.int64), history))

        def brute_force(profile, history):
            # Exact score of every catalog item, chunked so the (C, T, T)
            # cross-view score tensor stays within a fixed memory budget.
            plan = engine.prepare_ranking(profile, history)
            scores = np.concatenate([
                engine.rank_candidates(profile, chunk, plan=plan)
                for chunk in np.array_split(catalog, len(catalog) // 2048 + 1)
            ])
            order = kernels.top_k(scores, TOP_K)
            return catalog[order], scores[order]

        start = time.perf_counter()
        brute = [brute_force(profile, history) for profile, history in users]
        brute_seconds = time.perf_counter() - start

        start = time.perf_counter()
        staged = [pipeline.retrieve_then_rank(profile, TOP_K, history)
                  for profile, history in users]
        staged_seconds = time.perf_counter() - start

        start = time.perf_counter()
        staged_ivf = [ivf_pipeline.retrieve_then_rank(profile, TOP_K, history)
                      for profile, history in users]
        ivf_seconds = time.perf_counter() - start

        return {
            "brute_seconds": brute_seconds,
            "staged_seconds": staged_seconds,
            "ivf_seconds": ivf_seconds,
            "brute": brute,
            "staged": staged,
            "staged_ivf": staged_ivf,
            "num_users": len(users),
        }

    results = run_once(benchmark, measure)

    count = results["num_users"]
    brute_rps = count / results["brute_seconds"]
    staged_rps = count / results["staged_seconds"]
    ivf_rps = count / results["ivf_seconds"]
    ivf_top_recall = float(np.mean([
        recall_at(brute_ids, ranked.candidates)
        for (brute_ids, _), ranked in zip(results["brute"], results["staged_ivf"])
    ]))
    lines = [
        f"End-to-end top-{TOP_K} out of a {END_TO_END_CATALOG}-item catalog, "
        f"{count} users (n_retrieve={N_RETRIEVE})",
        f"  brute-force exact scan   {brute_rps:7.2f} req/s "
        f"({results['brute_seconds']:6.1f}s total)",
        f"  retrieve->rank (exact)   {staged_rps:7.2f} req/s "
        f"({results['staged_seconds']:6.1f}s total, "
        f"{results['brute_seconds'] / results['staged_seconds']:5.1f}x brute force)",
        f"  retrieve->rank (IVF)     {ivf_rps:7.2f} req/s "
        f"({results['ivf_seconds']:6.1f}s total, "
        f"{results['brute_seconds'] / results['ivf_seconds']:5.1f}x brute force, "
        f"top-{TOP_K} recall {ivf_top_recall:.3f})",
    ]
    report = "\n".join(lines)
    print("\n" + report)
    # Place below the search-throughput section written by the first test,
    # replacing any previous end-to-end section so re-runs of this test alone
    # never accumulate duplicate blocks in the committed artifact.
    from benchmarks.conftest import RESULTS_DIR

    path = RESULTS_DIR / "retrieval_throughput.txt"
    existing = path.read_text() if path.exists() else ""
    head = existing.split("End-to-end top-", 1)[0].rstrip("\n")
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text((head + "\n\n" if head else "") + report + "\n")

    # ISSUE acceptance: the ExactIndex pipeline's top-K equals brute force to
    # 1e-10 (the surrogate shortlist covers the true winners on this catalog).
    for (brute_ids, brute_scores), ranked in zip(results["brute"], results["staged"]):
        np.testing.assert_array_equal(ranked.candidates, brute_ids)
        np.testing.assert_allclose(ranked.scores, brute_scores, rtol=0.0, atol=1e-10)
    # And two-stage serving must actually be faster than scanning the catalog.
    assert staged_rps > brute_rps, (
        f"retrieve->rank ({staged_rps:.2f} req/s) not faster than brute force "
        f"({brute_rps:.2f} req/s)")
