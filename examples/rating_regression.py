"""Rating prediction with SeqFM (the paper's regression task).

Given a user, the items they rated before, and a new target item, estimate
the rating they will give (Section IV-C of the paper).  The script trains
SeqFM and the RRN / HOFM regression baselines on a synthetic Amazon-Beauty
style rating log whose ratings contain a sequential "mood" component, then
reports MAE / RRSE and shows a few individual predictions.

Run with::

    python examples/rating_regression.py
"""

from __future__ import annotations

from repro.baselines import HOFM, RRN
from repro.core import SeqFMConfig, Trainer, TrainerConfig
from repro.core.tasks import SeqFMRegressor, make_task_model
from repro.data import FeatureBatch, FeatureEncoder, leave_one_out_split, synthetic
from repro.eval import EvaluationProtocol


def main() -> None:
    log = synthetic.beauty_like(num_users=120, num_objects=140, interactions_per_user=18)
    print(f"dataset: {log.name}  {log.statistics()}")

    split = leave_one_out_split(log)
    encoder = FeatureEncoder(log, max_seq_len=15)
    train_examples = encoder.encode_training_instances(split.train, use_ratings=True)
    protocol = EvaluationProtocol(encoder)
    trainer_config = TrainerConfig(epochs=8, batch_size=128, learning_rate=0.01)

    seqfm_config = SeqFMConfig(
        static_vocab_size=encoder.static_vocab_size,
        dynamic_vocab_size=encoder.dynamic_vocab_size,
        max_seq_len=encoder.max_seq_len,
        embed_dim=32,
        dropout=0.2,
    )

    contenders = {
        "HOFM": make_task_model(
            HOFM(encoder.static_vocab_size, encoder.dynamic_vocab_size, embed_dim=32), "regression"
        ),
        "RRN": make_task_model(
            RRN(encoder.static_vocab_size, encoder.dynamic_vocab_size, embed_dim=32), "regression"
        ),
        "SeqFM": SeqFMRegressor(seqfm_config),
    }

    trained = {}
    print(f"\n{'model':10s} {'MAE':>8s} {'RRSE':>8s}")
    for name, model in contenders.items():
        Trainer(model, encoder, config=trainer_config).fit(train_examples)
        metrics = protocol.evaluate(model, split, task="regression")
        trained[name] = model
        print(f"{name:10s} {metrics['MAE']:8.4f} {metrics['RRSE']:8.4f}")

    # Show a handful of concrete predictions from SeqFM.
    print("\nSeqFM sample predictions (user, item, predicted vs. actual rating):")
    model = trained["SeqFM"]
    shown = 0
    for user_id, event in split.test.items():
        history = split.history.get(user_id, [])
        if not history or event.rating is None:
            continue
        example = encoder.encode(user_id, event.object_id, history, label=event.rating)
        prediction = model.predict(FeatureBatch.from_examples([example]))[0]
        print(f"  user {user_id:4d}  item {event.object_id:4d}  "
              f"predicted {prediction:4.2f}  actual {event.rating:4.2f}")
        shown += 1
        if shown >= 5:
            break

    print("\nExpected shape (paper, Table IV): SeqFM achieves the lowest MAE/RRSE.")


if __name__ == "__main__":
    main()
