"""Peek inside SeqFM: which history items and which views drive a prediction?

The multi-view self-attention scheme is the core idea of the paper; this
example trains a small SeqFM ranker, then uses :mod:`repro.core.interpret`
to show, for a few concrete test users,

* the most influential history items according to the dynamic view's causal
  attention, and
* how the final score decomposes into static / dynamic / cross-view
  contributions.

Run with::

    python examples/attention_interpretation.py
"""

from __future__ import annotations

import numpy as np

from repro.core import Trainer
from repro.core.interpret import top_history_influences, view_contributions
from repro.core.tasks import SeqFMRanker
from repro.data.features import FeatureBatch
from repro.experiments.registry import build_context


def main() -> None:
    context = build_context("gowalla", scale="quick")
    print(f"dataset: {context.log.name}  {context.log.statistics()}")

    model = SeqFMRanker(context.seqfm_config())
    Trainer(model, context.encoder, context.sampler,
            context.trainer_config()).fit(context.train_examples)

    # Build one test instance per user: the ground-truth next POI given the
    # training-time history.
    users = list(context.split.test)[:4]
    examples = [
        context.encoder.encode(user, context.split.test[user].object_id,
                               context.split.history[user])
        for user in users
    ]
    batch = FeatureBatch.from_examples(examples)
    seqfm = model.scorer

    print("\nmost influential history items (dynamic-view causal attention):")
    for index, user in enumerate(users):
        influences = top_history_influences(seqfm, batch, index=index, top_k=3)
        rendered = ", ".join(
            f"pos {item['position']} (feature {item['dynamic_index']}): {item['influence']:.3f}"
            for item in influences
        )
        print(f"  user {user:4d} → {rendered}")

    print("\nper-view contribution to the interaction score ⟨p, h_agg⟩:")
    contributions = view_contributions(seqfm, batch)
    header = f"  {'user':>6s} " + "".join(f"{name:>10s}" for name in contributions)
    print(header)
    for index, user in enumerate(users):
        row = "".join(f"{contributions[name][index]:10.3f}" for name in contributions)
        print(f"  {user:6d} {row}")

    total = np.sum([values for values in contributions.values()], axis=0)
    print("\n(The three columns sum to the interaction term of Eq. 18 for each user:"
          f" {np.round(total, 3).tolist()})")


if __name__ == "__main__":
    main()
