"""Click-through-rate prediction with SeqFM (the paper's classification task).

The scenario follows Section IV-B of the paper: given a user, the sequence of
links they previously clicked, and a candidate link, predict whether the user
will click it.  The script trains both SeqFM and two CTR baselines (FM and
DIN) on a synthetic Taobao-like click log and compares their AUC / RMSE —
illustrating the gap that sequence-awareness buys when click behaviour is
driven by slowly drifting long-term preferences.

Run with::

    python examples/ctr_prediction.py
"""

from __future__ import annotations

from repro.baselines import DIN, FM
from repro.core import SeqFMConfig, Trainer, TrainerConfig
from repro.core.tasks import SeqFMClassifier, make_task_model
from repro.data import (
    FeatureEncoder,
    NegativeSampler,
    filter_by_activity,
    leave_one_out_split,
    synthetic,
)
from repro.eval import EvaluationProtocol


def main() -> None:
    # Synthetic Taobao-like click log: long-range preference drift.
    log = synthetic.taobao_like(num_users=120, num_objects=180, interactions_per_user=30)
    log = filter_by_activity(log, min_user_interactions=8, min_object_interactions=3)
    print(f"dataset: {log.name}  {log.statistics()}")

    split = leave_one_out_split(log)
    encoder = FeatureEncoder(log, max_seq_len=20)
    sampler = NegativeSampler(log, seed=0)
    train_examples = encoder.encode_training_instances(split.train)
    protocol = EvaluationProtocol(encoder, sampler, seed=7)
    trainer_config = TrainerConfig(epochs=5, batch_size=128, learning_rate=8e-3,
                                   negatives_per_positive=2)

    seqfm_config = SeqFMConfig(
        static_vocab_size=encoder.static_vocab_size,
        dynamic_vocab_size=encoder.dynamic_vocab_size,
        max_seq_len=encoder.max_seq_len,
        embed_dim=32,
        dropout=0.2,
    )

    contenders = {
        "FM": make_task_model(
            FM(encoder.static_vocab_size, encoder.dynamic_vocab_size, embed_dim=32), "classification"
        ),
        "DIN": make_task_model(
            DIN(encoder.static_vocab_size, encoder.dynamic_vocab_size, embed_dim=32), "classification"
        ),
        "SeqFM": SeqFMClassifier(seqfm_config),
    }

    print(f"\n{'model':10s} {'AUC':>8s} {'RMSE':>8s}")
    for name, model in contenders.items():
        Trainer(model, encoder, sampler, trainer_config).fit(train_examples)
        metrics = protocol.evaluate(model, split, task="classification")
        print(f"{name:10s} {metrics['AUC']:8.4f} {metrics['RMSE']:8.4f}")

    print("\nExpected shape (paper, Table III): SeqFM > DIN > FM on AUC.")


if __name__ == "__main__":
    main()
