"""Hyper-parameter grid search for SeqFM (the procedure of Section IV-D).

The paper tunes {d, l, n˙, ρ} by grid search on each user's validation record.
This example runs a miniature version of that search on the Foursquare-like
dataset: every combination is trained, scored on the *validation* split
(never the test split), and the best configuration is finally evaluated on
the test split once.

Run with::

    python examples/hyperparameter_search.py
"""

from __future__ import annotations

from repro.core import Trainer, grid_search
from repro.core.tasks import SeqFMRanker
from repro.eval import EvaluationProtocol
from repro.experiments.registry import build_context


def main() -> None:
    context = build_context("foursquare", scale="quick")
    protocol = EvaluationProtocol(context.encoder, context.sampler,
                                  num_ranking_negatives=50, seed=7)

    def evaluate(params) -> float:
        config = context.seqfm_config(embed_dim=params["embed_dim"],
                                      dropout=params["dropout"])
        model = SeqFMRanker(config)
        Trainer(model, context.encoder, context.sampler,
                context.trainer_config(epochs=2)).fit(context.train_examples)
        metrics = protocol.evaluate_ranking_task(model, context.split, use_validation=True)
        score = metrics.hr[10]
        print(f"  d={params['embed_dim']:<3d} rho={params['dropout']:.1f}  "
              f"validation HR@10 = {score:.4f}")
        return score

    print("grid search over d × ρ (validation HR@10):")
    result = grid_search({"embed_dim": [8, 16, 32], "dropout": [0.2, 0.5]}, evaluate)
    print(f"\nbest combination: {result.best_params}  (validation HR@10 = {result.best_score:.4f})")

    # Final, single evaluation of the winning configuration on the test split.
    best_config = context.seqfm_config(embed_dim=result.best_params["embed_dim"],
                                       dropout=result.best_params["dropout"])
    best_model = SeqFMRanker(best_config)
    Trainer(best_model, context.encoder, context.sampler,
            context.trainer_config()).fit(context.train_examples)
    test_metrics = protocol.evaluate_ranking_task(best_model, context.split)
    print(f"test HR@10 of the selected model: {test_metrics.hr[10]:.4f}")


if __name__ == "__main__":
    main()
