"""Quickstart: train SeqFM on a small synthetic POI check-in dataset and rank
next-POI candidates for a few users.

Run with::

    python examples/quickstart.py

The whole script finishes in well under a minute on a laptop CPU.  It walks
through the five steps every application of the library follows:

1. obtain an interaction log (here: a synthetic Gowalla-like generator);
2. filter + leave-one-out split + feature encoding;
3. build a SeqFM model and wrap it with a task head;
4. train with the shared mini-batch Adam trainer;
5. evaluate with the paper's protocol and inspect a few predictions.
"""

from __future__ import annotations

import numpy as np

from repro.core import SeqFMConfig, SeqFMRanker, Trainer, TrainerConfig
from repro.data import (
    FeatureBatch,
    FeatureEncoder,
    NegativeSampler,
    filter_by_activity,
    leave_one_out_split,
    synthetic,
)
from repro.eval import EvaluationProtocol


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. Data: a synthetic POI check-in log with sequential structure.
    # ------------------------------------------------------------------ #
    log = synthetic.gowalla_like(num_users=120, num_objects=150, interactions_per_user=25)
    log = filter_by_activity(log, min_user_interactions=8, min_object_interactions=3)
    print(f"dataset: {log.name}  {log.statistics()}")

    # ------------------------------------------------------------------ #
    # 2. Chronological leave-one-out split and feature encoding.
    # ------------------------------------------------------------------ #
    split = leave_one_out_split(log)
    encoder = FeatureEncoder(log, max_seq_len=15)
    sampler = NegativeSampler(log, seed=0)
    train_examples = encoder.encode_training_instances(split.train)
    print(f"training instances: {len(train_examples)}")

    # ------------------------------------------------------------------ #
    # 3. Model: SeqFM with the ranking (BPR) head.
    # ------------------------------------------------------------------ #
    config = SeqFMConfig(
        static_vocab_size=encoder.static_vocab_size,
        dynamic_vocab_size=encoder.dynamic_vocab_size,
        max_seq_len=encoder.max_seq_len,
        embed_dim=32,
        ffn_layers=1,
        dropout=0.2,
        seed=0,
    )
    model = SeqFMRanker(config)
    print(f"model: {model.scorer}")

    # ------------------------------------------------------------------ #
    # 4. Training.
    # ------------------------------------------------------------------ #
    trainer = Trainer(
        model, encoder, sampler,
        TrainerConfig(epochs=5, batch_size=128, learning_rate=8e-3,
                      negatives_per_positive=1, verbose=True),
    )
    trainer.fit(train_examples)

    # ------------------------------------------------------------------ #
    # 5. Evaluation + a peek at actual recommendations.
    # ------------------------------------------------------------------ #
    protocol = EvaluationProtocol(encoder, sampler, num_ranking_negatives=100)
    metrics = protocol.evaluate(model, split, task="ranking")
    print("\nleave-one-out test metrics:")
    for name, value in metrics.items():
        print(f"  {name:10s} {value:.4f}")

    print("\nsample top-5 recommendations:")
    for user_id in list(split.test)[:3]:
        history = split.history[user_id]
        candidates = sampler.evaluation_candidates(user_id, split.test[user_id].object_id, 50)
        batch = FeatureBatch.from_examples(
            [encoder.encode(user_id, int(candidate), history) for candidate in candidates]
        )
        scores = model.predict(batch)
        top5 = candidates[np.argsort(-scores)[:5]]
        marker = "✓" if split.test[user_id].object_id in top5 else "✗"
        print(f"  user {user_id:4d}: ground truth {split.test[user_id].object_id:4d} "
              f"{marker}  top-5 = {top5.tolist()}")


if __name__ == "__main__":
    main()
