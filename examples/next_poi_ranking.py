"""Next-POI recommendation: SeqFM against the full ranking baseline line-up.

This is the paper's ranking application (Section IV-A) run end-to-end on a
synthetic Gowalla-like check-in log: every baseline of Table II is trained
with the same BPR objective and evaluated with the leave-one-out protocol so
you can see the whole comparison — including the sequence-aware baselines
SASRec and TFM — on one screen.

Run with::

    python examples/next_poi_ranking.py

(It trains eight models, so expect a couple of minutes on a laptop CPU.)
"""

from __future__ import annotations

from repro.experiments import reference
from repro.experiments.registry import build_context
from repro.experiments.reporting import compare_to_paper
from repro.experiments.table2 import RANKING_MODELS, run_table2


def main() -> None:
    context = build_context("gowalla", scale="quick")
    print(f"dataset: {context.log.name}  {context.log.statistics()}")
    print(f"models: {', '.join(RANKING_MODELS)}\n")

    tables = run_table2(datasets=("gowalla",), scale="quick")
    table = tables["gowalla"]
    print(table)
    print()
    print(compare_to_paper(table, reference.TABLE2_RANKING["gowalla"],
                           columns=["HR@10", "NDCG@10"]))
    print("\nExpected shape (paper, Table II): SeqFM first, sequence-aware baselines")
    print("(SASRec, TFM) ahead of the set-category FM family, plain FM last.")
    best = table.best_row("HR@10")
    print(f"\nBest HR@10 in this run: {best} ({table.get(best, 'HR@10'):.3f})")


if __name__ == "__main__":
    main()
