# Development entry points. Everything runs from the repository root with the
# src/ layout on PYTHONPATH; no installation step is needed.

PYTHON ?= python
export PYTHONPATH := $(CURDIR)/src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench bench-train bench-rank docs-check all

# Tier-1 test suite (the acceptance gate for every PR).
test:
	$(PYTHON) -m pytest -x -q

# Benchmark suite: regenerates the paper's tables/figures and the serving
# throughput reports into results/*.txt (includes bench-train and bench-rank).
bench:
	$(PYTHON) -m pytest benchmarks/ -q

# Training-throughput benchmark only: looped vs fused negative sampling
# (writes results/training_throughput.txt).
bench-train:
	$(PYTHON) -m pytest benchmarks/test_training_throughput.py -q

# Candidate-ranking benchmark only: naive per-candidate scoring vs the
# rank_candidates fast path (writes results/ranking_throughput.txt).
bench-rank:
	$(PYTHON) -m pytest benchmarks/test_ranking_throughput.py -q

# Fail if the README's code blocks have drifted from the public API: extracts
# and executes every ```python fence in README.md.
docs-check:
	$(PYTHON) docs/check_docs.py README.md

all: test docs-check
