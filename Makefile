# Development entry points. Everything runs from the repository root with the
# src/ layout on PYTHONPATH; no installation step is needed.

PYTHON ?= python
export PYTHONPATH := $(CURDIR)/src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test lint sanitize chaos bench bench-train bench-rank bench-retrieve bench-serve bench-concurrency bench-durability bench-online docs-check all

# Tier-1 test suite (the acceptance gate for every PR).
test:
	$(PYTHON) -m pytest -x -q

# Static analysis: the in-repo analyzer (lock discipline, lock-order/deadlock
# detection, blocking-under-lock, shared-state drift, kernel purity, protocol
# completeness, numerics hygiene) over src + tests + benchmarks against the
# committed baseline, plus ruff (import order, unused imports, bugbear) when
# it is installed.  --jobs parallelises parsing; output is byte-identical.
# CI passes LINT_FLAGS="--format github" to surface findings as annotations.
lint:
	$(PYTHON) -m repro.analysis src tests benchmarks --baseline analysis-baseline.txt --jobs 4 $(LINT_FLAGS)
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks examples; \
	else \
		echo "lint: ruff not installed; skipped (CI runs it)"; \
	fi

# Runtime lock sanitizer: rerun the concurrency-bearing suites with
# threading.Lock/RLock instrumented (REPRO_LOCK_SANITIZER=1).  Acquisition
# order is recorded per thread, inversions fail the offending test on the
# spot, the observed graph lands in results/lock_sanitizer.json, and the
# final test asserts observed ⊆ static (so it must run last).
sanitize:
	REPRO_LOCK_SANITIZER=1 $(PYTHON) -m pytest tests/test_serving_concurrent.py tests/test_serving_chaos.py tests/test_serving_durability.py tests/test_online_learning.py tests/test_lock_sanitizer.py -q

# Chaos battery: seeded deterministic fault injection against the durable
# store and the self-healing concurrent runtime (WAL crash recovery, torn
# writes, retry/backoff, quarantine, the degradation ladder).
chaos:
	$(PYTHON) -m pytest tests/test_serving_chaos.py tests/test_serving_durability.py -q

# Benchmark suite: regenerates the paper's tables/figures and the serving
# throughput reports into results/*.txt (includes bench-train and bench-rank).
bench:
	$(PYTHON) -m pytest benchmarks/ -q

# Training-throughput benchmark only: looped vs fused negative sampling
# (writes results/training_throughput.txt).
bench-train:
	$(PYTHON) -m pytest benchmarks/test_training_throughput.py -q

# Candidate-ranking benchmark only: naive per-candidate scoring vs the
# rank_candidates fast path (writes results/ranking_throughput.txt).
bench-rank:
	$(PYTHON) -m pytest benchmarks/test_ranking_throughput.py -q

# Retrieval benchmark only: exact vs IVF search throughput + recall@100, and
# the end-to-end retrieve->rank pipeline vs brute-force full-catalog ranking
# (writes results/retrieval_throughput.txt).
bench-retrieve:
	$(PYTHON) -m pytest benchmarks/test_retrieval_throughput.py -q

# Serving benchmark only: single vs batched vs cached request throughput, and
# the generic HeadRegistry dispatcher vs the hardcoded serving path (<5%
# overhead asserted; writes results/serving_throughput.txt and
# results/serving_protocol_overhead.txt).
bench-serve:
	$(PYTHON) -m pytest benchmarks/test_serving_throughput.py -q

# Concurrent-serving benchmark only: the serial router loop vs the concurrent
# runtime at several worker counts (+ cross-envelope coalescing) under
# mixed-head traffic; reports p50/p99 latency and throughput, asserts byte
# parity with the serial path (writes results/serving_concurrency.txt).
bench-concurrency:
	$(PYTHON) -m pytest benchmarks/test_serving_concurrency.py -q

# Durability benchmark only: WAL-on vs WAL-off serving throughput (the <10%
# overhead budget) and crash-recovery time at a 100k-event log (writes
# results/serving_durability.txt).
bench-durability:
	$(PYTHON) -m pytest benchmarks/test_serving_durability.py -q

# Online-learning benchmark only: log-to-gradient throughput (WAL tail +
# example build, events/s floor asserted) and the end-to-end retrain wall
# time at a 100k-event log (writes results/online_learning.txt).
bench-online:
	$(PYTHON) -m pytest benchmarks/test_online_learning.py -q

# Fail if the documented code blocks have drifted from the public API:
# extracts and executes every ```python fence in the README and the
# architecture guide.
docs-check:
	$(PYTHON) docs/check_docs.py README.md
	$(PYTHON) docs/check_docs.py docs/ARCHITECTURE.md

all: lint test docs-check
