"""One retrain cycle, end to end: tail → train → gate → promote/reject.

:func:`retrain_once` is the orchestration the ``retrain`` CLI command wraps.
It is deliberately a pure function of its inputs plus the on-disk online
state (WAL, cursor, manifest): run it twice from the same cursor and the
second run reports ``no_new_events`` and mutates nothing — idempotency is
what makes crash-and-rerun safe.

``RETRAIN_STATUSES`` is the vocabulary a cycle may report; like WAL ops and
manifest statuses it is checked syntactically by the analyzer's
protocol-completeness rule at every :class:`RetrainReport` construction
site, so a new outcome cannot ship without being declared.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from repro.core.tasks import make_task_model
from repro.data.features import FeatureEncoder
from repro.data.interactions import InteractionLog
from repro.data.sampling import NegativeSampler
from repro.data.split import LeaveOneOutSplit
from repro.online.gate import EvalGate, GateConfig, GateVerdict
from repro.online.log_reader import (
    CURSOR_NAME,
    InteractionLogReader,
    LogCursor,
    base_histories_from_split,
    build_training_examples,
)
from repro.online.promotion import (
    MANIFEST_NAME,
    ModelLineage,
    PromotionPipeline,
)
from repro.online.trainer import (
    IncrementalTrainer,
    IncrementalTrainerConfig,
    mark_tail_seen,
)

PathLike = Union[str, Path]

#: Every outcome one retrain cycle may report.  Checked syntactically by
#: :mod:`repro.analysis.protocol_completeness` at RetrainReport call sites.
RETRAIN_STATUSES = (
    "promoted",       # gate passed; checkpoint, registry, index and cursor updated
    "rejected",       # gate failed; manifest audit entry only
    "no_new_events",  # nothing to train on past the cursor; nothing mutated
    "dry_run",        # full cycle ran but no state of any kind was written
)


@dataclass(frozen=True)
class RetrainReport:
    """What one retrain cycle did, machine-readable (the CLI prints it)."""

    status: str
    model: str
    start_seq: int
    end_seq: int
    events: int = 0
    examples: int = 0
    examples_capped: int = 0
    dropped_users: int = 0
    dropped_events: int = 0
    compacted_gap: int = 0
    seeked: bool = False
    version: Optional[int] = None
    tag: Optional[str] = None
    verdict: Optional[GateVerdict] = field(default=None, repr=False)
    train_seconds: float = 0.0

    def as_dict(self) -> dict:
        return {
            "status": self.status,
            "model": self.model,
            "start_seq": int(self.start_seq),
            "end_seq": int(self.end_seq),
            "events": int(self.events),
            "examples": int(self.examples),
            "examples_capped": int(self.examples_capped),
            "dropped_users": int(self.dropped_users),
            "dropped_events": int(self.dropped_events),
            "compacted_gap": int(self.compacted_gap),
            "seeked": bool(self.seeked),
            "version": self.version,
            "tag": self.tag,
            "gate": self.verdict.as_dict() if self.verdict is not None else None,
            "train_seconds": float(self.train_seconds),
        }


def retrain_once(
    registry,
    name: str,
    *,
    wal_path: PathLike,
    online_dir: PathLike,
    encoder: FeatureEncoder,
    log: InteractionLog,
    split: LeaveOneOutSplit,
    task: str = "ranking",
    gate_config: Optional[GateConfig] = None,
    trainer_config: Optional[IncrementalTrainerConfig] = None,
    dry_run: bool = False,
    since_seq: Optional[int] = None,
) -> RetrainReport:
    """Run one incremental retrain of ``registry[name]`` off the WAL.

    ``online_dir`` holds all online-learning state: the cursor file, the
    version manifest and the ``<name>@vN.npz`` checkpoints.  ``since_seq``
    overrides the persisted cursor (a deliberate re-read; the cursor still
    only ever moves forward).  With ``dry_run`` the full tail/train/gate
    cycle runs and the verdict is reported, but registry, index, cursor and
    manifest are all left untouched.
    """
    online_dir = Path(online_dir)
    entry = registry.get(name)
    reader = InteractionLogReader(wal_path,
                                  cursor_path=online_dir / CURSOR_NAME)
    lineage = ModelLineage(online_dir, name=name)
    if entry.lineage is None:
        entry.lineage = lineage

    since = LogCursor(seq=int(since_seq)) if since_seq is not None else None
    tail = reader.tail(since=since)
    if not tail.interactions:
        return RetrainReport(
            status="no_new_events", model=name,
            start_seq=tail.start.seq, end_seq=tail.cursor.seq,
            compacted_gap=tail.compacted_gap, seeked=tail.seeked,
        )

    build = build_training_examples(
        tail.interactions, encoder,
        base_histories=base_histories_from_split(split, encoder))
    if not build.examples:
        # Every logged event fell outside the encoder's vocabulary — there
        # is nothing to fit, so the cycle ends exactly like an empty tail.
        return RetrainReport(
            status="no_new_events", model=name,
            start_seq=tail.start.seq, end_seq=tail.cursor.seq,
            events=tail.events_total,
            dropped_users=build.dropped_users,
            dropped_events=build.dropped_events,
            compacted_gap=tail.compacted_gap, seeked=tail.seeked,
        )

    trainer_config = (trainer_config if trainer_config is not None
                      else IncrementalTrainerConfig())
    sampler = NegativeSampler(log, seed=trainer_config.seed)
    mark_tail_seen(sampler, build.examples)
    trainer = IncrementalTrainer(encoder, sampler, task=task,
                                 config=trainer_config)
    started = time.perf_counter()
    result = trainer.fit_tail(entry.model, build.examples)
    train_seconds = time.perf_counter() - started

    gate = EvalGate(encoder, log, split, task, config=gate_config)
    verdict = gate.evaluate_candidate(
        make_task_model(entry.model, task), result.task_model)

    common = dict(
        model=name,
        start_seq=tail.start.seq, end_seq=tail.cursor.seq,
        events=tail.events_total,
        examples=result.examples_used,
        examples_capped=result.examples_capped,
        dropped_users=build.dropped_users,
        dropped_events=build.dropped_events,
        compacted_gap=tail.compacted_gap, seeked=tail.seeked,
        verdict=verdict, train_seconds=train_seconds,
    )
    if dry_run:
        return RetrainReport(status="dry_run", **common)

    pipeline = PromotionPipeline(registry, name, lineage, reader)
    if verdict.passed:
        version = pipeline.promote(result.task_model, verdict, tail,
                                   examples=result.examples_used)
        return RetrainReport(status="promoted", version=version.version,
                             tag=lineage.tag(version.version), **common)
    version = pipeline.reject(verdict, tail, examples=result.examples_used)
    return RetrainReport(status="rejected", version=version.version,
                         tag=lineage.tag(version.version), **common)


def inspect_online(directory: PathLike) -> dict:
    """Offline summary of an online-state directory (``status`` surface).

    Reads the cursor file and the version manifest without constructing a
    reader or a registry — safe to call against a directory another process
    is actively retraining into.
    """
    directory = Path(directory)
    payload: dict = {"directory": str(directory), "cursor": None,
                     "retrain": None}
    cursor_path = directory / CURSOR_NAME
    if cursor_path.exists():
        payload["cursor"] = LogCursor.from_dict(
            json.loads(cursor_path.read_text())).as_dict()
    if (directory / MANIFEST_NAME).exists():
        payload["retrain"] = ModelLineage(directory).status_payload()
    return payload
