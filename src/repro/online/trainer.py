"""Incremental training: warm-start from the serving weights, fit the tail.

A retrain never trains from scratch — it clones the currently-registered
model's weights into a fresh :class:`~repro.core.model.SeqFM` (the serving
copy is never touched; :meth:`~repro.nn.module.Module.state_dict` copies its
arrays) and runs a short pass of the shared :class:`~repro.core.trainer.
Trainer` over only the *new* log segment, through the same fused
negative-sampling fast path the offline harness uses.  The candidate either
earns promotion at the eval gate or is thrown away; the deployed model is
mutated exclusively by :meth:`ModelRegistry.load` during promotion.

The interaction log carries click events, so incremental training serves the
``ranking`` and ``classification`` tasks; regression has no online path
(ratings never travel through the update head) and is rejected loudly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.model import SeqFM
from repro.core.tasks import TaskModel, make_task_model
from repro.core.trainer import Trainer, TrainerConfig, TrainingResult
from repro.data.features import EncodedExample, FeatureEncoder
from repro.data.sampling import NegativeSampler


@dataclass(frozen=True)
class IncrementalTrainerConfig:
    """Knobs of one incremental pass.

    Deliberately smaller than the offline defaults: the tail is a fraction
    of the corpus and the weights already fit the base distribution, so a
    couple of gentle epochs is the working regime.  ``max_examples`` bounds
    a retrain that slept through a traffic spike — only the **newest** that
    many examples are kept (the older ones are closest to what the model
    already knows), and the cap is reported, never silent.
    """

    epochs: int = 2
    batch_size: int = 64
    learning_rate: float = 5e-3
    negatives_per_positive: int = 2
    fused_negatives: bool = True
    max_examples: Optional[int] = None
    seed: int = 0


@dataclass
class IncrementalResult:
    """A trained candidate plus how it was fitted."""

    task_model: TaskModel
    training: TrainingResult
    examples_used: int
    #: Oldest examples dropped by the ``max_examples`` cap (0: none).
    examples_capped: int


class IncrementalTrainer:
    """Warm-start + short-fit factory for retrain candidates."""

    def __init__(self, encoder: FeatureEncoder, sampler: NegativeSampler,
                 task: str = "ranking",
                 config: Optional[IncrementalTrainerConfig] = None):
        if task not in ("ranking", "classification"):
            raise ValueError(
                f"no online training path for task {task!r}: the interaction "
                "log carries click events (ranking/classification only)"
            )
        self.encoder = encoder
        self.sampler = sampler
        self.task = task
        self.config = config if config is not None else IncrementalTrainerConfig()

    def warm_start(self, model: SeqFM) -> TaskModel:
        """A task-wrapped clone of ``model`` — same config, copied weights.

        The clone shares nothing mutable with the source: ``state_dict``
        copies every array, so training the candidate can never bleed into
        the model still serving traffic.
        """
        clone = SeqFM(model.config)
        clone.load_state_dict(model.state_dict())
        return make_task_model(clone, self.task)

    def train(self, candidate: TaskModel,
              examples: Sequence[EncodedExample]) -> IncrementalResult:
        """Fit ``candidate`` on the tail examples; returns the result bundle."""
        examples = list(examples)
        if not examples:
            raise ValueError("incremental training received no examples; "
                             "callers must skip empty tails")
        capped = 0
        cap = self.config.max_examples
        if cap is not None and len(examples) > cap:
            capped = len(examples) - cap
            examples = examples[-cap:]
        trainer = Trainer(
            candidate,
            self.encoder,
            sampler=self.sampler,
            config=TrainerConfig(
                epochs=self.config.epochs,
                batch_size=self.config.batch_size,
                learning_rate=self.config.learning_rate,
                negatives_per_positive=self.config.negatives_per_positive,
                fused_negatives=self.config.fused_negatives,
                seed=self.config.seed,
            ),
        )
        training = trainer.fit(examples)
        return IncrementalResult(task_model=candidate, training=training,
                                 examples_used=len(examples),
                                 examples_capped=capped)

    def fit_tail(self, model: SeqFM,
                 examples: Sequence[EncodedExample]) -> IncrementalResult:
        """Warm-start from ``model`` and train on ``examples`` in one step."""
        return self.train(self.warm_start(model), examples)


def mark_tail_seen(sampler: NegativeSampler,
                   examples: Sequence[EncodedExample]) -> int:
    """Teach a *training* sampler the tail's positives; returns how many.

    Without this, a logged click could be drawn as its own "negative".
    Only ever applied to the sampler used for training draws — the gate
    builds its own freshly seeded samplers so evaluation candidates stay
    comparable across retrains.
    """
    marked = 0
    for example in examples:
        sampler.mark_seen(int(example.user_id), int(example.object_id))
        marked += 1
    return marked
