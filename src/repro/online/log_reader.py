"""Tail the serving WAL into training interactions (the log → gradient feed).

The write-ahead log of :mod:`repro.serving.durability` doubles as the durable
interaction log: every ``update``-head write lands as a ``record`` entry
carrying the user id and the raw event indices.  This module turns that log
into an *incremental* training feed:

* :class:`LogCursor` — the persisted read position (``seq`` consumed so far
  plus the byte offset it ended at), written atomically to ``cursor.json``
  so a retrain that crashes before promoting never loses or replays events;
* :class:`InteractionLogReader` — tails the WAL from the cursor through the
  :func:`repro.serving.durability.read_wal` fast path (the byte offset lets
  the scan skip everything already consumed; a compacted log falls back to a
  full scan transparently) and reports a :class:`LogTail` of
  :class:`LoggedInteraction` rows;
* :func:`build_training_examples` — converts logged interactions into the
  :class:`~repro.data.features.EncodedExample` instances the shared
  :class:`~repro.core.trainer.Trainer` consumes, replaying each user's
  events in order on top of their base (train-split) history so every click
  becomes one positive with exactly the history the model would have seen.

Events in the log are **dynamic-vocabulary indices** (the update head's wire
format): ``dyn = object_rank + 1`` with index 0 reserved for padding.  Rows
whose user or event fell outside the encoder's vocabulary are dropped and
counted, never guessed at.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.serialization import atomic_write_text
from repro.data.features import EncodedExample, FeatureEncoder, pad_sequences
from repro.serving.durability import SNAPSHOT_NAME, read_wal

PathLike = Union[str, Path]

#: File the reader checkpoints its position to (next to the manifest).
CURSOR_NAME = "cursor.json"

_CURSOR_FORMAT = 1


@dataclass(frozen=True)
class LogCursor:
    """A durable WAL read position: everything at or below ``seq`` is consumed.

    ``offset`` is the byte the consumed prefix ended at — the seek hint for
    the next tail (validated against the file before it is trusted, so a
    compaction between retrains merely costs a full rescan).
    """

    seq: int = 0
    offset: int = 0

    def as_dict(self) -> dict:
        return {"format": _CURSOR_FORMAT, "seq": int(self.seq),
                "offset": int(self.offset)}

    @staticmethod
    def from_dict(doc: Mapping) -> "LogCursor":
        if doc.get("format") != _CURSOR_FORMAT:
            raise ValueError(
                f"cursor format {doc.get('format')!r} is not readable by "
                f"this build (expected {_CURSOR_FORMAT})"
            )
        return LogCursor(seq=int(doc["seq"]), offset=int(doc["offset"]))


@dataclass(frozen=True)
class LoggedInteraction:
    """One ``record`` WAL entry: a user's logged event burst, in log order."""

    seq: int
    user_id: int
    #: Dynamic-vocabulary event indices, chronological within the entry.
    events: Tuple[int, ...]


@dataclass
class LogTail:
    """What one tail of the interaction log produced."""

    interactions: List[LoggedInteraction]
    #: The cursor this tail started from.
    start: LogCursor
    #: The cursor to persist once this tail is fully consumed (promotion).
    cursor: LogCursor
    #: Sequence numbers between the start cursor and the oldest surviving
    #: WAL record that were compacted into a snapshot — their events are no
    #: longer replayable as training data (0 when nothing was lost).
    compacted_gap: int = 0
    #: Non-``record`` journal entries in the tail (puts, touches, topology).
    other_ops: int = 0
    #: Whether the byte-offset fast path was taken (no full log rescan).
    seeked: bool = False

    @property
    def events_total(self) -> int:
        return sum(len(interaction.events)
                   for interaction in self.interactions)


class InteractionLogReader:
    """Tail ``record`` entries out of a WAL from a persisted cursor.

    The reader is deliberately read-only with respect to the log: it never
    opens the WAL for writing, so it can run against a directory a serving
    process is still appending to (retrains see whatever the server has
    flushed).  The cursor file is the reader's only mutable state; it is
    written atomically and only moves forward.
    """

    def __init__(self, wal_path: PathLike,
                 cursor_path: Optional[PathLike] = None):
        self.wal_path = Path(wal_path)
        self.cursor_path = (Path(cursor_path) if cursor_path is not None
                            else self.wal_path.parent / CURSOR_NAME)
        self._lock = threading.Lock()
        self._cursor = self._load_cursor()

    def _load_cursor(self) -> LogCursor:
        if not self.cursor_path.exists():
            return LogCursor()
        return LogCursor.from_dict(json.loads(self.cursor_path.read_text()))

    @property
    def cursor(self) -> LogCursor:
        with self._lock:
            return self._cursor

    # ------------------------------------------------------------------ #
    # Tailing
    # ------------------------------------------------------------------ #
    def tail(self, since: Optional[LogCursor] = None) -> LogTail:
        """Read every ``record`` entry past ``since`` (default: the cursor).

        Does **not** advance the cursor — consumption is only durable once
        the work the tail fed succeeded (:meth:`advance` is the promotion
        pipeline's last step), so a crashed or gate-rejected retrain
        re-reads the same events.
        """
        start = since if since is not None else self.cursor
        scan = read_wal(self.wal_path, since_seq=start.seq,
                        start_offset=start.offset)
        interactions: List[LoggedInteraction] = []
        other_ops = 0
        for record in scan.records:
            if record.get("op") == "record":
                interactions.append(LoggedInteraction(
                    seq=int(record["seq"]),
                    user_id=int(record["user"]),
                    events=tuple(int(event) for event in record["events"]),
                ))
            else:
                other_ops += 1
        # Anything at or below the checkpoint snapshot's sequence was folded
        # into state and is gone as training data — including the case where
        # a clean shutdown compacted the *entire* log and no record survives
        # to betray the gap.
        compacted_gap = max(0, self._snapshot_seq() - start.seq)
        if scan.records and not scan.skipped and not scan.seeked:
            # The whole surviving log is newer than the cursor: anything
            # between the cursor and the log head was compacted away.
            first_seq = int(scan.records[0]["seq"])
            compacted_gap = max(compacted_gap, first_seq - start.seq - 1)
        end = LogCursor(seq=max(start.seq, scan.last_seq),
                        offset=scan.valid_bytes)
        return LogTail(interactions=interactions, start=start, cursor=end,
                       compacted_gap=compacted_gap, other_ops=other_ops,
                       seeked=scan.seeked)

    def _snapshot_seq(self) -> int:
        """Highest sequence a checkpoint snapshot has compacted, 0 if none."""
        try:
            doc = json.loads(
                (self.wal_path.parent / SNAPSHOT_NAME).read_text())
            return int(doc.get("seq", 0))
        except (OSError, ValueError):
            return 0

    def advance(self, cursor: LogCursor) -> LogCursor:
        """Atomically persist ``cursor`` as the new read position.

        Refuses to move backwards — an older cursor would double-train the
        events in between, and idempotent retrains are the whole point.
        """
        with self._lock:
            if cursor.seq < self._cursor.seq:
                raise ValueError(
                    f"cursor cannot move backwards (seq {self._cursor.seq} "
                    f"-> {cursor.seq}); pass since_seq explicitly to re-read"
                )
            # The cursor write must happen under the lock — check-then-write
            # against the monotonicity guard above — and advance() is called
            # once per retrain, never on the serving path.
            # repro: allow[blocking-under-lock]
            atomic_write_text(
                self.cursor_path,
                json.dumps(cursor.as_dict(), separators=(",", ":"),
                           sort_keys=True))
            self._cursor = cursor
            return cursor


# --------------------------------------------------------------------------- #
# Interaction → training-example conversion
# --------------------------------------------------------------------------- #
@dataclass
class ExampleBuild:
    """Converted training feed plus what had to be dropped to build it."""

    examples: List[EncodedExample] = field(default_factory=list)
    dropped_users: int = 0
    dropped_events: int = 0


def build_training_examples(
    interactions: Sequence[LoggedInteraction],
    encoder: FeatureEncoder,
    base_histories: Optional[Mapping[int, Sequence[int]]] = None,
) -> ExampleBuild:
    """One positive :class:`EncodedExample` per logged event.

    Events are replayed per user in log order on top of that user's
    ``base_histories`` entry (dynamic-vocabulary indices — typically the
    train-split history the deployed model was fitted on), so the i-th click
    trains against exactly the history the serving model saw when it was
    made.  Users unknown to the encoder and events outside the dynamic
    vocabulary are dropped and counted; the label is always 1.0 — negatives
    are the trainer's job (:meth:`NegativeSampler.sample_batch`).
    """
    base = base_histories or {}
    known_objects = encoder.known_objects()
    known_users = set(encoder.known_users())
    histories: Dict[int, List[int]] = {}
    build = ExampleBuild()
    for interaction in interactions:
        user_id = interaction.user_id
        if user_id not in known_users:
            build.dropped_users += 1
            continue
        history = histories.get(user_id)
        if history is None:
            history = list(base.get(user_id, ()))
            histories[user_id] = history
        user_index = int(encoder.static_user_index(user_id))
        for dyn in interaction.events:
            if not 1 <= dyn < encoder.dynamic_vocab_size:
                build.dropped_events += 1
                continue
            padded, mask = pad_sequences([history], encoder.max_seq_len)
            build.examples.append(EncodedExample(
                static_indices=np.array(
                    [user_index, encoder.num_users + (dyn - 1)],
                    dtype=np.int64),
                dynamic_indices=padded[0],
                dynamic_mask=mask[0],
                label=1.0,
                user_id=user_id,
                object_id=int(known_objects[dyn - 1]),
            ))
            history.append(int(dyn))
    return build


def base_histories_from_split(split, encoder: FeatureEncoder,
                              ) -> Dict[int, List[int]]:
    """Per-user dynamic-index histories out of a leave-one-out split.

    The bridge between the offline world (``split.history`` holds
    :class:`~repro.data.interactions.Interaction` objects) and the online
    one (the WAL speaks dynamic indices): the returned mapping is what
    :func:`build_training_examples` expects as ``base_histories``.
    """
    known_users = set(encoder.known_users())
    histories: Dict[int, List[int]] = {}
    for user_id, events in split.history.items():
        if user_id not in known_users:
            continue
        history: List[int] = []
        for event in events:
            try:
                history.append(int(encoder.dynamic_object_index(event.object_id)))
            except KeyError:
                continue
        histories[user_id] = history
    return histories
