"""Versioned checkpoints and the gated hot-swap (the ``model@vN`` lineage).

Promotion is the only step of the online loop that mutates shared state, so
it is deliberately small and ordered for crash safety:

1. the candidate is checkpointed as ``<name>@v<N>.npz`` (atomic write via
   :func:`repro.core.serialization.save_seqfm`);
2. the registry hot-swaps the weights in place with ``rebuild_index=True``,
   so the IVF/exact item index is re-snapshotted from the new weights in the
   same step — retrieval never serves stale vectors;
3. the interaction-log cursor advances (the consumed tail is now durable);
4. the manifest records the version.

A gate-rejected candidate records a ``rejected`` manifest entry for the
audit trail and touches **nothing** else — registry, index and cursor are
exactly as before, so the next retrain reconsiders the same events.

``MANIFEST_STATUSES`` is the manifest's status vocabulary; the analyzer's
protocol-completeness rule checks every literal ``status=`` at a
:class:`ModelVersion` construction site against it, exactly as it does for
WAL ops.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Union

from repro.core.serialization import atomic_write_text, save_seqfm
from repro.core.tasks import TaskModel
from repro.online.gate import GateVerdict
from repro.online.log_reader import InteractionLogReader, LogTail

PathLike = Union[str, Path]

#: Every status a manifest entry may carry.  Checked syntactically by
#: :mod:`repro.analysis.protocol_completeness` at ModelVersion call sites.
MANIFEST_STATUSES = (
    "promoted",   # passed the gate; checkpoint written, registry swapped
    "rejected",   # failed the gate; audit entry only, nothing else mutated
)

MANIFEST_NAME = "manifest.json"
_MANIFEST_FORMAT = 1


@dataclass(frozen=True)
class ModelVersion:
    """One manifest entry: what version N was and how it fared."""

    version: int
    status: str
    #: Checkpoint filename relative to the lineage directory; ``None`` for
    #: rejected candidates (their weights are discarded, not archived).
    checkpoint: Optional[str]
    #: WAL sequence the training tail ended at.
    cursor_seq: int
    #: The promoted version this candidate warm-started from (0: the
    #: offline-trained seed checkpoint).
    parent: int
    gate: dict
    examples: int

    def as_dict(self) -> dict:
        return {
            "version": int(self.version),
            "status": self.status,
            "checkpoint": self.checkpoint,
            "cursor_seq": int(self.cursor_seq),
            "parent": int(self.parent),
            "gate": self.gate,
            "examples": int(self.examples),
        }

    @staticmethod
    def from_dict(doc: dict) -> "ModelVersion":
        return ModelVersion(
            version=int(doc["version"]),
            status=str(doc["status"]),
            checkpoint=doc.get("checkpoint"),
            cursor_seq=int(doc.get("cursor_seq", 0)),
            parent=int(doc.get("parent", 0)),
            gate=dict(doc.get("gate", {})),
            examples=int(doc.get("examples", 0)),
        )


class ModelLineage:
    """The ``manifest.json`` ledger of a model's online versions.

    Versions count from 1 and never reuse a number; ``active`` is the most
    recent *promoted* entry (rejected candidates consume a version number —
    the audit trail records every attempt).  All writes are atomic.
    """

    def __init__(self, directory: PathLike, name: Optional[str] = None):
        self.directory = Path(directory)
        self.manifest_path = self.directory / MANIFEST_NAME
        self._versions: List[ModelVersion] = []
        if self.manifest_path.exists():
            doc = json.loads(self.manifest_path.read_text())
            if doc.get("format") != _MANIFEST_FORMAT:
                raise ValueError(
                    f"{self.manifest_path} has manifest format "
                    f"{doc.get('format')!r}; this build reads {_MANIFEST_FORMAT}"
                )
            self._versions = [ModelVersion.from_dict(entry)
                              for entry in doc.get("versions", [])]
            # The manifest remembers its model; an explicit name wins.
            name = name if name is not None else doc.get("model")
        self.name = name if name is not None else "model"

    # -- queries ---------------------------------------------------------- #
    def __len__(self) -> int:
        return len(self._versions)

    @property
    def versions(self) -> List[ModelVersion]:
        return list(self._versions)

    @property
    def active(self) -> Optional[ModelVersion]:
        """The most recent promoted version (what serving should hold)."""
        for version in reversed(self._versions):
            if version.status == "promoted":
                return version
        return None

    def next_version(self) -> int:
        return (max(version.version for version in self._versions) + 1
                if self._versions else 1)

    def tag(self, version: int) -> str:
        return f"{self.name}@v{version}"

    def checkpoint_path(self, version: int) -> Path:
        return self.directory / f"{self.tag(version)}.npz"

    def status_payload(self) -> dict:
        """The ``retrain`` block of the ``status`` head."""
        active = self.active
        last = self._versions[-1] if self._versions else None
        return {
            "versions": len(self._versions),
            "promoted": sum(1 for version in self._versions
                            if version.status == "promoted"),
            "rejected": sum(1 for version in self._versions
                            if version.status == "rejected"),
            "active": self.tag(active.version) if active else None,
            "cursor_seq": active.cursor_seq if active else 0,
            "last": last.as_dict() if last else None,
        }

    # -- mutation --------------------------------------------------------- #
    def record(self, version: ModelVersion) -> ModelVersion:
        if version.status not in MANIFEST_STATUSES:
            raise ValueError(
                f"manifest status {version.status!r} is not in "
                f"MANIFEST_STATUSES {MANIFEST_STATUSES}"
            )
        if any(existing.version == version.version
               for existing in self._versions):
            raise ValueError(f"version {version.version} is already recorded")
        self._versions.append(version)
        self.directory.mkdir(parents=True, exist_ok=True)
        atomic_write_text(
            self.manifest_path,
            json.dumps({
                "format": _MANIFEST_FORMAT,
                "model": self.name,
                "versions": [entry.as_dict() for entry in self._versions],
            }, separators=(",", ":"), sort_keys=True))
        return version


class PromotionPipeline:
    """Apply a gate verdict to the registry, the index and the cursor."""

    def __init__(self, registry, name: str, lineage: ModelLineage,
                 reader: InteractionLogReader):
        self.registry = registry
        self.name = name
        self.lineage = lineage
        self.reader = reader

    def _parent(self) -> int:
        active = self.lineage.active
        return active.version if active else 0

    def promote(self, candidate: TaskModel, verdict: GateVerdict,
                tail: LogTail, examples: int) -> ModelVersion:
        """Checkpoint → hot-swap (index rebuilt) → advance cursor → record."""
        if not verdict.passed:
            raise ValueError("refusing to promote a candidate whose gate "
                             "verdict failed; use reject()")
        number = self.lineage.next_version()
        self.lineage.directory.mkdir(parents=True, exist_ok=True)
        path = self.lineage.checkpoint_path(number)
        save_seqfm(candidate.scorer, path)
        entry = self.registry.load(self.name, path, rebuild_index=True)
        self.reader.advance(tail.cursor)
        version = self.lineage.record(ModelVersion(
            version=number,
            status="promoted",
            checkpoint=path.name,
            cursor_seq=tail.cursor.seq,
            parent=self._parent(),
            gate=verdict.as_dict(),
            examples=examples,
        ))
        entry.lineage = self.lineage
        return version

    def reject(self, verdict: GateVerdict, tail: LogTail,
               examples: int) -> ModelVersion:
        """Record the failed attempt; registry, index and cursor untouched."""
        entry = self.registry.get(self.name)
        version = self.lineage.record(ModelVersion(
            version=self.lineage.next_version(),
            status="rejected",
            checkpoint=None,
            cursor_seq=tail.start.seq,
            parent=self._parent(),
            gate=verdict.as_dict(),
            examples=examples,
        ))
        entry.lineage = self.lineage
        return version
