"""repro.online — continuous learning off the serving write-ahead log.

The online loop closes the feedback cycle the serving stack opens: the
``update`` head journals every click into the WAL
(:mod:`repro.serving.durability`), and this package turns that log back into
model weights —

* :mod:`~repro.online.log_reader` tails ``record`` entries from a durable,
  atomically-checkpointed cursor and converts them into training examples;
* :mod:`~repro.online.trainer` warm-starts a candidate from the serving
  weights and fits only the new segment (fused negative sampling, same
  trainer as offline);
* :mod:`~repro.online.gate` scores baseline vs candidate on the held-out
  split and vetoes regressions beyond a tolerance;
* :mod:`~repro.online.promotion` versions the survivors (``model@vN``
  manifest lineage), hot-swaps the registry and rebuilds the item index;
* :mod:`~repro.online.retrain` wires the above into one idempotent
  ``retrain_once`` cycle (the CLI ``retrain`` command).
"""

from repro.online.gate import (
    LOWER_IS_BETTER,
    EvalGate,
    GateConfig,
    GateVerdict,
)
from repro.online.log_reader import (
    CURSOR_NAME,
    ExampleBuild,
    InteractionLogReader,
    LogCursor,
    LogTail,
    LoggedInteraction,
    base_histories_from_split,
    build_training_examples,
)
from repro.online.promotion import (
    MANIFEST_NAME,
    MANIFEST_STATUSES,
    ModelLineage,
    ModelVersion,
    PromotionPipeline,
)
from repro.online.retrain import (
    RETRAIN_STATUSES,
    RetrainReport,
    inspect_online,
    retrain_once,
)
from repro.online.trainer import (
    IncrementalResult,
    IncrementalTrainer,
    IncrementalTrainerConfig,
    mark_tail_seen,
)

__all__ = [
    "LOWER_IS_BETTER",
    "EvalGate",
    "GateConfig",
    "GateVerdict",
    "CURSOR_NAME",
    "ExampleBuild",
    "InteractionLogReader",
    "LogCursor",
    "LogTail",
    "LoggedInteraction",
    "base_histories_from_split",
    "build_training_examples",
    "MANIFEST_NAME",
    "MANIFEST_STATUSES",
    "ModelLineage",
    "ModelVersion",
    "PromotionPipeline",
    "RETRAIN_STATUSES",
    "RetrainReport",
    "inspect_online",
    "retrain_once",
    "IncrementalResult",
    "IncrementalTrainer",
    "IncrementalTrainerConfig",
    "mark_tail_seen",
]
