"""Eval gate: a candidate model must not regress the held-out metrics.

Continuous learning without a gate is continuous forgetting: a retrain on a
biased slice of recent traffic can happily improve its own loss while
destroying the ranking quality the model was deployed for.  The gate scores
baseline and candidate with the **same** leave-one-out protocol the offline
experiments use (:class:`repro.eval.protocol.EvaluationProtocol`) and vetoes
promotion when any gated metric worsens by more than a configurable
tolerance.

Fairness is the subtle part: the ranking protocol samples negative
candidates, so two ``evaluate`` calls against a shared sampler would rank
baseline and candidate against *different* candidate sets and the comparison
would be noise.  :meth:`EvalGate.score` therefore builds a fresh, identically
seeded :class:`~repro.data.sampling.NegativeSampler` per call — both models
see byte-identical evaluation batches.

Metric direction is handled explicitly: HR@K / NDCG@K / AUC improve upwards,
RMSE / MAE / RRSE improve downwards; deltas are sign-adjusted so "positive
means better" everywhere in the verdict.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.tasks import TaskModel
from repro.data.features import FeatureEncoder
from repro.data.interactions import InteractionLog
from repro.data.sampling import NegativeSampler
from repro.data.split import LeaveOneOutSplit
from repro.eval.protocol import EvaluationProtocol

#: Metric-name prefixes where smaller is better; everything else is
#: higher-is-better (HR@K, NDCG@K, AUC).
LOWER_IS_BETTER = ("RMSE", "MAE", "RRSE")


@dataclass(frozen=True)
class GateConfig:
    """Knobs of the promotion gate.

    ``metrics`` restricts which keys are gated (empty: every metric both
    evaluations produced).  ``tolerance`` is the largest sign-adjusted
    regression a gated metric may show and still pass — 0.02 means "may lose
    up to two HR points"; a negative tolerance *demands improvement* of at
    least its magnitude, which also makes a deterministically failing gate
    easy to construct in tests.
    """

    metrics: Tuple[str, ...] = ()
    tolerance: float = 0.02
    use_validation: bool = True
    max_users: Optional[int] = None
    num_ranking_negatives: int = 50
    seed: int = 7


@dataclass(frozen=True)
class GateVerdict:
    """The gate's decision with the evidence that produced it."""

    passed: bool
    baseline: Dict[str, float]
    candidate: Dict[str, float]
    #: Sign-adjusted per-metric deltas: positive = candidate is better.
    deltas: Dict[str, float]
    tolerance: float
    reasons: Tuple[str, ...]

    def as_dict(self) -> dict:
        return {
            "passed": bool(self.passed),
            "tolerance": float(self.tolerance),
            "baseline": {key: float(value) for key, value in self.baseline.items()},
            "candidate": {key: float(value) for key, value in self.candidate.items()},
            "deltas": {key: float(value) for key, value in self.deltas.items()},
            "reasons": list(self.reasons),
        }


def _improves_downward(metric: str) -> bool:
    return any(metric.startswith(prefix) for prefix in LOWER_IS_BETTER)


class EvalGate:
    """Score candidates on a held-out slice and veto regressions.

    Parameters mirror the experiment harness: the fitted ``encoder``, the
    full interaction ``log`` (the sampler's seen-sets must cover held-out
    records so evaluation negatives are genuinely unseen), the leave-one-out
    ``split`` and the ``task`` whose metrics are gated.
    """

    def __init__(self, encoder: FeatureEncoder, log: InteractionLog,
                 split: LeaveOneOutSplit, task: str,
                 config: Optional[GateConfig] = None):
        self.encoder = encoder
        self.log = log
        self.split = split
        self.task = task
        self.config = config if config is not None else GateConfig()

    def score(self, model: TaskModel) -> Dict[str, float]:
        """Held-out metrics for one model, on a freshly seeded protocol.

        Every call re-seeds the sampler and the protocol, so consecutive
        calls (baseline, then candidate) rank against identical candidate
        sets — the numbers are comparable, not merely similar.
        """
        sampler = NegativeSampler(self.log, seed=self.config.seed)
        protocol = EvaluationProtocol(
            self.encoder,
            sampler=sampler,
            num_ranking_negatives=self.config.num_ranking_negatives,
            seed=self.config.seed,
        )
        return protocol.evaluate(
            model, self.split, self.task,
            use_validation=self.config.use_validation,
            max_users=self.config.max_users,
        )

    def judge(self, baseline: Dict[str, float],
              candidate: Dict[str, float]) -> GateVerdict:
        """Compare two metric dictionaries under the configured tolerance."""
        keys = (list(self.config.metrics) if self.config.metrics
                else sorted(key for key in baseline if key in candidate))
        missing = [key for key in keys
                   if key not in baseline or key not in candidate]
        if missing:
            raise KeyError(
                f"gated metrics {missing} absent from the evaluation output; "
                f"available: {sorted(baseline)}"
            )
        deltas: Dict[str, float] = {}
        reasons = []
        for key in keys:
            direction = -1.0 if _improves_downward(key) else 1.0
            delta = direction * (float(candidate[key]) - float(baseline[key]))
            deltas[key] = delta
            if delta < -self.config.tolerance:
                reasons.append(
                    f"{key} regressed by {-delta:.4f} "
                    f"(tolerance {self.config.tolerance:.4f}): "
                    f"{baseline[key]:.4f} -> {candidate[key]:.4f}"
                )
        return GateVerdict(
            passed=not reasons,
            baseline=dict(baseline),
            candidate=dict(candidate),
            deltas=deltas,
            tolerance=self.config.tolerance,
            reasons=tuple(reasons),
        )

    def evaluate_candidate(self, baseline_model: TaskModel,
                           candidate_model: TaskModel) -> GateVerdict:
        """Score both models and judge the candidate in one step."""
        return self.judge(self.score(baseline_model),
                          self.score(candidate_model))
