"""Static/dynamic feature encoding (Section III of the paper).

The paper splits the sparse input vector ``x`` into a **static view** (the
user one-hot, the candidate object one-hot, plus optional side information)
and a **dynamic view** (the chronological sequence of previously interacted
objects, truncated/padded to a maximum length n˙).  Rather than materialising
the one-hot matrices ``G°`` and ``G˙``, the encoder emits the *indices* of the
non-zero features — mathematically identical input to the embedding layer
(Eq. 5) at a fraction of the memory.

Index layout
------------
* Static vocabulary: ``[0, num_users)`` are user features,
  ``[num_users, num_users + num_objects)`` are candidate-object features,
  followed by optional side-information features.
* Dynamic vocabulary: index ``0`` is the padding feature (embedding pinned to
  the zero vector, exactly the paper's ``{0}^{1×m˙}`` padding rows);
  ``[1, num_objects]`` are the history objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.interactions import Interaction, InteractionLog

PADDING_INDEX = 0


def pad_sequences(
    sequences: Sequence[Sequence[int]],
    max_seq_len: int,
    padding_index: int = PADDING_INDEX,
) -> Tuple[np.ndarray, np.ndarray]:
    """Left-pad/truncate variable-length index sequences into a dense batch.

    The single source of truth for the dynamic-view layout: only the most
    recent ``max_seq_len`` items of each sequence are kept (chronological
    order, most recent last) and shorter sequences are left-padded with
    ``padding_index``.  Returns ``(indices, mask)`` of shapes
    ``(batch, max_seq_len)`` — int64 indices and a float64 validity mask with
    1.0 on real items.  Used by :meth:`FeatureEncoder.encode` for training
    instances and by the serving micro-batcher to collate raw user histories.
    """
    if max_seq_len < 1:
        raise ValueError("max_seq_len must be at least 1")
    batch = len(sequences)
    indices = np.full((batch, max_seq_len), padding_index, dtype=np.int64)
    mask = np.zeros((batch, max_seq_len), dtype=np.float64)
    for row, sequence in enumerate(sequences):
        recent = list(sequence)[-max_seq_len:]
        if recent:
            offset = max_seq_len - len(recent)
            indices[row, offset:] = recent
            mask[row, offset:] = 1.0
    return indices, mask


@dataclass(frozen=True)
class EncodedExample:
    """One (user, candidate object, history) instance ready for a model.

    Attributes
    ----------
    static_indices:
        Indices of the non-zero static features (user, candidate, side info).
    dynamic_indices:
        Left-padded history of length ``max_seq_len``; older events first,
        most recent last, ``PADDING_INDEX`` in unused leading slots.
    dynamic_mask:
        1.0 where ``dynamic_indices`` holds a real event, 0.0 on padding.
    label:
        Task target: 1/0 for classification, rating for regression, unused
        (1.0) for ranking positives.
    user_id / object_id:
        The raw identifiers, kept for evaluation bookkeeping.
    """

    static_indices: np.ndarray
    dynamic_indices: np.ndarray
    dynamic_mask: np.ndarray
    label: float
    user_id: int
    object_id: int


@dataclass
class FeatureBatch:
    """A stacked batch of :class:`EncodedExample` objects.

    All models in the repository (SeqFM and every baseline) consume this
    structure; sequence-agnostic baselines simply ignore the ordering of
    ``dynamic_indices``.
    """

    static_indices: np.ndarray   # (batch, n_static) int64
    dynamic_indices: np.ndarray  # (batch, max_seq_len) int64
    dynamic_mask: np.ndarray     # (batch, max_seq_len) float64
    labels: np.ndarray           # (batch,) float64
    user_ids: np.ndarray         # (batch,) int64
    object_ids: np.ndarray       # (batch,) int64
    #: Structural hint set by :meth:`with_candidates`: the dynamic arrays are
    #: ``dynamic_tile`` vertical copies of their first ``batch/dynamic_tile``
    #: rows (candidates differ, histories repeat).  Models may exploit this to
    #: compute history-only work once per group; ``1`` means no tiling.
    dynamic_tile: int = 1

    def __len__(self) -> int:
        return self.static_indices.shape[0]

    @staticmethod
    def from_examples(examples: Sequence[EncodedExample]) -> "FeatureBatch":
        if not examples:
            raise ValueError("cannot build a batch from zero examples")
        return FeatureBatch(
            static_indices=np.stack([example.static_indices for example in examples]),
            dynamic_indices=np.stack([example.dynamic_indices for example in examples]),
            dynamic_mask=np.stack([example.dynamic_mask for example in examples]),
            labels=np.array([example.label for example in examples], dtype=np.float64),
            user_ids=np.array([example.user_id for example in examples], dtype=np.int64),
            object_ids=np.array([example.object_id for example in examples], dtype=np.int64),
        )

    @staticmethod
    def for_candidates(
        static_profile: np.ndarray,
        candidate_indices: np.ndarray,
        dynamic_indices: np.ndarray,
        dynamic_mask: np.ndarray,
        candidate_slot: int = 1,
        user_id: int = -1,
    ) -> "FeatureBatch":
        """Expand one user into a C-row batch, one row per candidate.

        ``static_profile`` is a single static index row whose
        ``candidate_slot`` entry is replaced by each of the
        ``candidate_indices`` (static-vocabulary); ``dynamic_indices``/
        ``dynamic_mask`` are the user's single padded history row, shared by
        every candidate.  This is the *naive* materialisation of a ranking
        request — C independent rows — used as the reference the serving fast
        path (:meth:`repro.serving.engine.InferenceEngine.rank_candidates`)
        must agree with; the returned batch carries ``dynamic_tile = C`` so
        model-level consumers can still dedup the shared history.
        """
        profile = np.asarray(static_profile, dtype=np.int64).reshape(-1)
        candidates = np.asarray(candidate_indices, dtype=np.int64).reshape(-1)
        if candidates.size == 0:
            raise ValueError("cannot build a candidate batch from zero candidates")
        if not (0 <= candidate_slot < profile.shape[0]):
            raise ValueError(
                f"candidate_slot {candidate_slot} outside the static profile "
                f"of {profile.shape[0]} features"
            )
        count = candidates.shape[0]
        static = np.tile(profile, (count, 1))
        static[:, candidate_slot] = candidates
        dynamic = np.asarray(dynamic_indices, dtype=np.int64).reshape(1, -1)
        mask = np.asarray(dynamic_mask, dtype=np.float64).reshape(1, -1)
        return FeatureBatch(
            static_indices=static,
            dynamic_indices=np.tile(dynamic, (count, 1)),
            dynamic_mask=np.tile(mask, (count, 1)),
            labels=np.zeros(count, dtype=np.float64),
            user_ids=np.full(count, user_id, dtype=np.int64),
            object_ids=candidates.copy(),
            dynamic_tile=count,
        )

    def with_candidate(self, encoder: "FeatureEncoder", object_ids: np.ndarray) -> "FeatureBatch":
        """Return a copy of the batch with the candidate object replaced.

        Used by the looped BPR trainer (swap positive for sampled negative)
        and by the ranking evaluation protocol (score J+1 candidates that
        share the same user and history).
        """
        object_ids = np.asarray(object_ids, dtype=np.int64)
        if object_ids.shape != self.object_ids.shape:
            raise ValueError("candidate array must match the batch size")
        static = self.static_indices.copy()
        static[:, encoder.candidate_slot] = encoder.static_object_index(object_ids)
        return FeatureBatch(
            static_indices=static,
            dynamic_indices=self.dynamic_indices,
            dynamic_mask=self.dynamic_mask,
            labels=self.labels,
            user_ids=self.user_ids,
            object_ids=object_ids,
        )

    def with_candidates(self, encoder: "FeatureEncoder", object_ids: np.ndarray) -> "FeatureBatch":
        """Fuse this batch with ``k`` negative candidate draws into one batch.

        ``object_ids`` has shape ``(k, batch)`` — draw-major: row ``d`` holds
        draw ``d``'s negative object for every positive.  The returned batch
        has ``batch * (1 + k)`` rows laid out as

        * rows ``[0, batch)`` — the positives, labels untouched;
        * row ``batch + d*batch + i`` — draw ``d``'s negative for positive
          ``i``, label ``0.0``.

        All rows of a (positive, negatives) group share the same user and
        dynamic history, so one forward pass over the fused batch scores the
        positive and every sampled negative together — the training fast path
        (:meth:`repro.core.tasks.TaskModel.fused_loss`).  The returned batch
        carries ``dynamic_tile = 1 + k`` so the model can compute
        history-only work (the dynamic view) once per group.
        """
        object_ids = np.asarray(object_ids, dtype=np.int64)
        if object_ids.ndim != 2 or object_ids.shape[1] != len(self):
            raise ValueError(
                f"candidate matrix must have shape (num_draws, {len(self)}), "
                f"got {object_ids.shape}"
            )
        num_draws = object_ids.shape[0]
        flat_negatives = object_ids.reshape(-1)
        static = np.tile(self.static_indices, (1 + num_draws, 1))
        static[len(self):, encoder.candidate_slot] = encoder.static_object_index(flat_negatives)
        return FeatureBatch(
            static_indices=static,
            dynamic_indices=np.tile(self.dynamic_indices, (1 + num_draws, 1)),
            dynamic_mask=np.tile(self.dynamic_mask, (1 + num_draws, 1)),
            labels=np.concatenate([self.labels, np.zeros(len(self) * num_draws)]),
            user_ids=np.tile(self.user_ids, 1 + num_draws),
            object_ids=np.concatenate([self.object_ids, flat_negatives]),
            dynamic_tile=1 + num_draws,
        )


class FeatureEncoder:
    """Build static/dynamic feature encodings from an interaction log.

    Parameters
    ----------
    log:
        The interaction log the vocabularies are derived from.  Users or
        objects never seen here are rejected at encode time.
    max_seq_len:
        The paper's n˙ — maximum dynamic sequence length (default 20, the
        paper's unified setting).
    """

    #: position of the user feature within ``static_indices``
    user_slot = 0
    #: position of the candidate object feature within ``static_indices``
    candidate_slot = 1

    def __init__(self, log: InteractionLog, max_seq_len: int = 20):
        if max_seq_len < 1:
            raise ValueError("max_seq_len must be at least 1")
        self.max_seq_len = max_seq_len
        self._user_to_index: Dict[int, int] = {
            user: index for index, user in enumerate(sorted(log.users))
        }
        self._object_to_index: Dict[int, int] = {
            obj: index for index, obj in enumerate(sorted(log.objects))
        }
        self.num_users = len(self._user_to_index)
        self.num_objects = len(self._object_to_index)

    # ------------------------------------------------------------------ #
    # Vocabulary sizes
    # ------------------------------------------------------------------ #
    @property
    def static_vocab_size(self) -> int:
        """m° of the paper: user features + candidate-object features."""
        return self.num_users + self.num_objects

    @property
    def dynamic_vocab_size(self) -> int:
        """m˙ of the paper plus one padding feature at index 0."""
        return self.num_objects + 1

    @property
    def num_static_features(self) -> int:
        """n° of the paper: non-zero static features per instance."""
        return 2

    def known_objects(self) -> List[int]:
        return sorted(self._object_to_index)

    def known_users(self) -> List[int]:
        return sorted(self._user_to_index)

    # ------------------------------------------------------------------ #
    # Index helpers
    # ------------------------------------------------------------------ #
    def static_user_index(self, user_id) -> np.ndarray:
        return np.vectorize(self._user_to_index.__getitem__, otypes=[np.int64])(user_id)

    def static_object_index(self, object_id) -> np.ndarray:
        lookup = np.vectorize(self._object_to_index.__getitem__, otypes=[np.int64])(object_id)
        return lookup + self.num_users

    def dynamic_object_index(self, object_id) -> np.ndarray:
        lookup = np.vectorize(self._object_to_index.__getitem__, otypes=[np.int64])(object_id)
        return lookup + 1  # shift past the padding index

    # ------------------------------------------------------------------ #
    # Encoding
    # ------------------------------------------------------------------ #
    def encode(
        self,
        user_id: int,
        candidate_object_id: int,
        history: Sequence[Interaction],
        label: float = 1.0,
    ) -> EncodedExample:
        """Encode one (user, candidate, history) instance.

        ``history`` must be in chronological order; only the most recent
        ``max_seq_len`` events are kept (paper §III), and shorter histories
        are left-padded with the padding feature.
        """
        if user_id not in self._user_to_index:
            raise KeyError(f"unknown user {user_id}")
        if candidate_object_id not in self._object_to_index:
            raise KeyError(f"unknown object {candidate_object_id}")

        static_indices = np.array(
            [
                self._user_to_index[user_id],
                self.num_users + self._object_to_index[candidate_object_id],
            ],
            dtype=np.int64,
        )

        recent = [
            self._object_to_index[event.object_id] + 1
            for event in list(history)[-self.max_seq_len:]
        ]
        padded, padded_mask = pad_sequences([recent], self.max_seq_len)
        dynamic, mask = padded[0], padded_mask[0]

        return EncodedExample(
            static_indices=static_indices,
            dynamic_indices=dynamic,
            dynamic_mask=mask,
            label=float(label),
            user_id=user_id,
            object_id=candidate_object_id,
        )

    def encode_candidates(
        self,
        user_id: int,
        candidate_object_ids: Sequence[int],
        history: Sequence[Interaction],
    ) -> Tuple[np.ndarray, np.ndarray, List[int]]:
        """Encode one ranking request: C candidates sharing a user + history.

        Returns ``(static_profile, candidate_indices, dynamic_history)``:

        * ``static_profile`` — one static index row (user feature filled in,
          candidate slot holding the first candidate as a placeholder);
        * ``candidate_indices`` — the static-vocabulary index of every
          candidate object, in input order;
        * ``dynamic_history`` — the raw (unpadded) dynamic-vocabulary indices
          of the most recent ``max_seq_len`` *known* history events.  Events
          whose object is outside the training vocabulary are dropped first
          (the same pre-filtering :meth:`encode_heldout` applies), so older
          known events may backfill the visible window.

        The triple feeds the serving ranking fast path —
        ``InferenceEngine.rank_candidates`` / ``ModelRegistry.rank_topk`` —
        or materialises into the naive per-candidate batch via
        :meth:`FeatureBatch.for_candidates`.
        """
        if user_id not in self._user_to_index:
            raise KeyError(f"unknown user {user_id}")
        candidate_object_ids = list(candidate_object_ids)
        if not candidate_object_ids:
            raise ValueError("need at least one candidate object")
        unknown = [obj for obj in candidate_object_ids if obj not in self._object_to_index]
        if unknown:
            raise KeyError(f"unknown candidate objects {unknown[:5]}")
        candidates = self.static_object_index(np.asarray(candidate_object_ids, dtype=np.int64))
        static_profile = np.array(
            [self._user_to_index[user_id], candidates[0]], dtype=np.int64
        )
        known_objects = [
            event.object_id for event in history
            if event.object_id in self._object_to_index
        ]
        dynamic_history = [
            int(index)
            for index in self.dynamic_object_index(np.asarray(known_objects, dtype=np.int64))
        ]
        return static_profile, candidates, dynamic_history[-self.max_seq_len:]

    def encode_training_instances(
        self,
        log: InteractionLog,
        min_history: int = 1,
        use_ratings: bool = False,
    ) -> List[EncodedExample]:
        """Expand every interaction into a next-object training instance.

        For each user with chronological sequence ``o_1, ..., o_T`` the
        instances are (history = o_1..o_{t-1}, candidate = o_t) for all t with
        at least ``min_history`` preceding events — the standard sequential
        training expansion the paper's protocol implies.
        """
        examples: List[EncodedExample] = []
        for user_id, sequence in log.by_user().items():
            if user_id not in self._user_to_index:
                continue
            for position in range(min_history, len(sequence)):
                event = sequence[position]
                if event.object_id not in self._object_to_index:
                    continue
                history = [
                    past for past in sequence[:position] if past.object_id in self._object_to_index
                ]
                if len(history) < min_history:
                    continue
                label = float(event.rating) if use_ratings and event.rating is not None else 1.0
                examples.append(self.encode(user_id, event.object_id, history, label=label))
        return examples

    def encode_heldout(
        self,
        heldout: Dict[int, Interaction],
        history: Dict[int, List[Interaction]],
        use_ratings: bool = False,
    ) -> List[EncodedExample]:
        """Encode the validation/test records of a leave-one-out split."""
        examples: List[EncodedExample] = []
        for user_id, event in sorted(heldout.items()):
            if user_id not in self._user_to_index or event.object_id not in self._object_to_index:
                continue
            user_history = [
                past for past in history.get(user_id, []) if past.object_id in self._object_to_index
            ]
            if not user_history:
                continue
            label = float(event.rating) if use_ratings and event.rating is not None else 1.0
            examples.append(self.encode(user_id, event.object_id, user_history, label=label))
        return examples
