"""Synthetic stand-ins for the six public datasets of the paper.

The evaluation datasets (Gowalla, Foursquare, Trivago, Taobao, Amazon Beauty,
Amazon Toys) cannot be downloaded in this offline environment, so each is
replaced by a generator that plants the statistical structure the paper's
argument rests on:

* **POI check-ins (Gowalla / Foursquare)** — next-POI choice is dominated by
  *short-range* sequential dependence: users tend to move to POIs close to
  (i.e. frequently co-visited with) their previous check-in.  The generator
  draws each user's next POI from a Markov transition matrix over POI
  "neighbourhoods", blended with a per-user preference distribution.
* **CTR logs (Trivago / Taobao)** — click behaviour is driven by *long-term*
  user preference over item categories that drifts slowly over time; the
  generator gives each user a latent preference vector over categories and a
  slow random-walk drift, so the whole history (not just the last click) is
  informative.
* **Rating data (Beauty / Toys)** — explicit ratings follow a latent-factor
  user×item model plus a *sequential mood/recency* component: a user's recent
  ratings shift the mean of the next one.  This is exactly the structure a
  sequence-aware regressor can exploit and a set-category FM cannot.

All generators are deterministic given a seed, emit
:class:`~repro.data.interactions.InteractionLog` objects, and use power-law
object popularity so the sparsity profile resembles the real datasets
(scaled down ~2 orders of magnitude so CPU training finishes in seconds).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.data.interactions import Interaction, InteractionLog


@dataclass(frozen=True)
class SyntheticConfig:
    """Size and structure knobs shared by all generators."""

    num_users: int
    num_objects: int
    interactions_per_user: int
    seed: int = 0
    # Strength of the sequential component in [0, 1]; 0 removes all
    # sequential structure (useful as a control in tests), 1 makes the next
    # object depend only on the sequence.
    sequential_strength: float = 0.7


def _power_law_popularity(num_objects: int, rng: np.random.Generator, exponent: float = 1.1) -> np.ndarray:
    """Zipf-like popularity distribution over objects."""
    ranks = np.arange(1, num_objects + 1, dtype=np.float64)
    weights = ranks ** (-exponent)
    rng.shuffle(weights)
    return weights / weights.sum()


def _markov_transition_matrix(
    num_objects: int,
    num_clusters: int,
    rng: np.random.Generator,
    within_cluster_probability: float = 0.85,
) -> tuple[np.ndarray, np.ndarray]:
    """Cluster objects into neighbourhoods and build a cluster-level Markov chain.

    Returns ``(object_cluster, cluster_transitions)`` where
    ``cluster_transitions[c]`` is the distribution over the next cluster given
    the current one.  Within-cluster mass models geographic locality of POI
    check-ins; a band structure over clusters models travel between adjacent
    neighbourhoods.
    """
    object_cluster = rng.integers(0, num_clusters, size=num_objects)
    transitions = np.full((num_clusters, num_clusters), (1.0 - within_cluster_probability) / max(num_clusters - 1, 1))
    np.fill_diagonal(transitions, within_cluster_probability)
    # Extra mass to adjacent clusters (ring topology) to mimic travel patterns.
    for cluster in range(num_clusters):
        transitions[cluster, (cluster + 1) % num_clusters] += 0.05
        transitions[cluster, (cluster - 1) % num_clusters] += 0.05
    transitions /= transitions.sum(axis=1, keepdims=True)
    return object_cluster, transitions


def generate_poi_checkins(config: SyntheticConfig, num_clusters: Optional[int] = None) -> InteractionLog:
    """POI check-in log with short-range Markov sequential structure.

    Each user starts in a random neighbourhood cluster; at every step the next
    cluster is drawn from the cluster transition matrix (with probability
    ``sequential_strength``) or from the user's personal preference over
    clusters (otherwise), then a POI is drawn inside the chosen cluster
    proportionally to global popularity.
    """
    rng = np.random.default_rng(config.seed)
    num_clusters = num_clusters or max(4, config.num_objects // 25)
    popularity = _power_law_popularity(config.num_objects, rng)
    object_cluster, cluster_transitions = _markov_transition_matrix(config.num_objects, num_clusters, rng)

    objects_in_cluster = [np.where(object_cluster == c)[0] for c in range(num_clusters)]
    cluster_popularity = [popularity[members] / popularity[members].sum() if len(members) else None
                          for members in objects_in_cluster]

    log = InteractionLog(name="poi-checkins")
    timestamp = 0.0
    for user_id in range(config.num_users):
        user_cluster_preference = rng.dirichlet(np.ones(num_clusters) * 0.5)
        current_cluster = int(rng.choice(num_clusters, p=user_cluster_preference))
        for _ in range(config.interactions_per_user):
            if rng.random() < config.sequential_strength:
                next_cluster_distribution = cluster_transitions[current_cluster]
            else:
                next_cluster_distribution = user_cluster_preference
            current_cluster = int(rng.choice(num_clusters, p=next_cluster_distribution))
            members = objects_in_cluster[current_cluster]
            if len(members) == 0:
                current_cluster = int(rng.choice(num_clusters))
                members = objects_in_cluster[current_cluster]
                if len(members) == 0:
                    continue
            poi = int(rng.choice(members, p=cluster_popularity[current_cluster]))
            timestamp += float(rng.exponential(1.0))
            log.append(Interaction(user_id=user_id, object_id=poi, timestamp=timestamp))
    return log


def generate_ctr_log(config: SyntheticConfig, num_categories: Optional[int] = None,
                     preference_drift: float = 0.05) -> InteractionLog:
    """Click log with long-range preference structure (Trivago/Taobao style).

    Each user holds a latent preference vector over item categories that
    drifts slowly (random walk on the simplex); clicked items are drawn from
    the preferred categories.  Because the preference changes slowly, the
    *entire* click history is informative about the next click — the regime
    where the paper observes larger optimal sequence lengths n˙.
    """
    rng = np.random.default_rng(config.seed)
    num_categories = num_categories or max(5, config.num_objects // 30)
    popularity = _power_law_popularity(config.num_objects, rng)
    object_category = rng.integers(0, num_categories, size=config.num_objects)
    objects_in_category = [np.where(object_category == c)[0] for c in range(num_categories)]
    category_popularity = [popularity[members] / popularity[members].sum() if len(members) else None
                           for members in objects_in_category]

    log = InteractionLog(name="ctr-log")
    timestamp = 0.0
    for user_id in range(config.num_users):
        preference = rng.dirichlet(np.ones(num_categories) * 0.3)
        for _ in range(config.interactions_per_user):
            # Slow drift of the latent preference.
            noise = rng.normal(0.0, preference_drift, size=num_categories)
            preference = np.clip(preference + noise, 1e-6, None)
            preference = preference / preference.sum()
            if rng.random() < config.sequential_strength:
                category = int(rng.choice(num_categories, p=preference))
            else:
                category = int(rng.integers(0, num_categories))
            members = objects_in_category[category]
            if len(members) == 0:
                continue
            item = int(rng.choice(members, p=category_popularity[category]))
            timestamp += float(rng.exponential(1.0))
            log.append(Interaction(user_id=user_id, object_id=item, timestamp=timestamp))
    return log


def generate_rating_log(config: SyntheticConfig, num_factors: int = 8,
                        rating_scale: tuple = (1.0, 5.0), noise_std: float = 0.4,
                        recency_weight: float = 0.6) -> InteractionLog:
    """Explicit-rating log with latent factors plus a sequential mood term.

    The base rating of user u for item i is a scaled inner product of latent
    factors; a "mood" term — the exponentially weighted average of the user's
    recent rating residuals — is added with weight ``recency_weight`` before
    Gaussian noise and clipping to the rating scale.  A sequence-aware model
    can recover the mood from the recent history; a set-category model cannot.
    """
    rng = np.random.default_rng(config.seed)
    low, high = rating_scale
    user_factors = rng.normal(0.0, 1.0, size=(config.num_users, num_factors))
    item_factors = rng.normal(0.0, 1.0, size=(config.num_objects, num_factors))
    item_bias = rng.normal(0.0, 0.3, size=config.num_objects)
    popularity = _power_law_popularity(config.num_objects, rng)

    log = InteractionLog(name="rating-log")
    timestamp = 0.0
    midpoint = (low + high) / 2.0
    spread = (high - low) / 4.0
    for user_id in range(config.num_users):
        mood = 0.0
        for _ in range(config.interactions_per_user):
            item = int(rng.choice(config.num_objects, p=popularity))
            affinity = float(user_factors[user_id] @ item_factors[item]) / np.sqrt(num_factors)
            base = midpoint + spread * affinity + item_bias[item]
            rating = base + recency_weight * mood * config.sequential_strength
            rating += float(rng.normal(0.0, noise_std))
            rating = float(np.clip(rating, low, high))
            # Update the mood with the residual of this rating.
            mood = 0.7 * mood + 0.3 * (rating - base)
            timestamp += float(rng.exponential(1.0))
            log.append(Interaction(user_id=user_id, object_id=item, timestamp=timestamp, rating=rating))
    return log


# --------------------------------------------------------------------------- #
# Named dataset constructors mirroring the paper's six datasets (Table I)
# --------------------------------------------------------------------------- #
def gowalla_like(num_users: int = 160, num_objects: int = 240,
                 interactions_per_user: int = 40, seed: int = 11) -> InteractionLog:
    """Scaled-down synthetic Gowalla: POI check-ins, short-range dependence."""
    log = generate_poi_checkins(SyntheticConfig(num_users, num_objects, interactions_per_user,
                                                seed=seed, sequential_strength=0.8))
    log.name = "gowalla-like"
    return log


def foursquare_like(num_users: int = 140, num_objects: int = 200,
                    interactions_per_user: int = 32, seed: int = 13) -> InteractionLog:
    """Scaled-down synthetic Foursquare: sparser POI check-ins."""
    log = generate_poi_checkins(SyntheticConfig(num_users, num_objects, interactions_per_user,
                                                seed=seed, sequential_strength=0.75))
    log.name = "foursquare-like"
    return log


def trivago_like(num_users: int = 150, num_objects: int = 260,
                 interactions_per_user: int = 45, seed: int = 17) -> InteractionLog:
    """Scaled-down synthetic Trivago: web-search click log, long-range preference."""
    log = generate_ctr_log(SyntheticConfig(num_users, num_objects, interactions_per_user,
                                           seed=seed, sequential_strength=0.8))
    log.name = "trivago-like"
    return log


def taobao_like(num_users: int = 150, num_objects: int = 280,
                interactions_per_user: int = 40, seed: int = 19) -> InteractionLog:
    """Scaled-down synthetic Taobao: e-commerce click log with slow drift."""
    log = generate_ctr_log(SyntheticConfig(num_users, num_objects, interactions_per_user,
                                           seed=seed, sequential_strength=0.85),
                           preference_drift=0.02)
    log.name = "taobao-like"
    return log


def beauty_like(num_users: int = 120, num_objects: int = 150,
                interactions_per_user: int = 18, seed: int = 23) -> InteractionLog:
    """Scaled-down synthetic Amazon Beauty: explicit ratings with mood drift."""
    log = generate_rating_log(SyntheticConfig(num_users, num_objects, interactions_per_user,
                                              seed=seed, sequential_strength=0.8))
    log.name = "beauty-like"
    return log


def toys_like(num_users: int = 110, num_objects: int = 140,
              interactions_per_user: int = 16, seed: int = 29) -> InteractionLog:
    """Scaled-down synthetic Amazon Toys & Games ratings."""
    log = generate_rating_log(SyntheticConfig(num_users, num_objects, interactions_per_user,
                                              seed=seed, sequential_strength=0.75))
    log.name = "toys-like"
    return log
