"""Negative sampling for the ranking and classification tasks.

The paper draws 5 negative samples per positive during training (§IV-D) and,
at evaluation time, ranks the ground-truth object against J sampled objects
the user never interacted with (§V-C) for ranking, or one sampled negative
per positive for classification.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

import numpy as np

from repro.data.interactions import InteractionLog


class NegativeSampler:
    """Sample objects a user has never interacted with.

    Parameters
    ----------
    log:
        The full interaction log (train + held-out) used to build the per-user
        "seen" sets, so evaluation negatives are genuinely unobserved.
    objects:
        The candidate universe; defaults to every object in the log.
    seed:
        Seed for the internal generator, making sampling reproducible.
    """

    def __init__(
        self,
        log: InteractionLog,
        objects: Optional[Sequence[int]] = None,
        seed: int = 0,
    ):
        self._rng = np.random.default_rng(seed)
        self._objects = np.array(sorted(objects if objects is not None else log.objects), dtype=np.int64)
        if self._objects.size == 0:
            raise ValueError("negative sampler needs a non-empty object universe")
        self._seen: Dict[int, Set[int]] = {
            user: set(log.objects_of_user(user)) for user in log.users
        }

    @property
    def object_universe(self) -> np.ndarray:
        return self._objects

    def seen(self, user_id: int) -> Set[int]:
        return self._seen.get(user_id, set())

    def mark_seen(self, user_id: int, object_id: int) -> None:
        """Add an interaction to the user's seen set (e.g. held-out records)."""
        self._seen.setdefault(user_id, set()).add(object_id)

    def sample_for_user(self, user_id: int, count: int) -> np.ndarray:
        """Draw ``count`` objects the user never interacted with (no replacement
        within a call, falling back to with-replacement when the unseen pool is
        smaller than ``count``)."""
        if count < 1:
            raise ValueError("count must be positive")
        seen = self._seen.get(user_id, set())
        unseen = self._objects[~np.isin(self._objects, list(seen))] if seen else self._objects
        if unseen.size == 0:
            # Degenerate case: the user has interacted with everything.
            return self._rng.choice(self._objects, size=count, replace=True)
        replace = unseen.size < count
        return self._rng.choice(unseen, size=count, replace=replace)

    def sample_batch(self, user_ids: np.ndarray, positives: np.ndarray) -> np.ndarray:
        """One negative per (user, positive) pair; vectorised rejection sampling.

        Most draws from a sparse interaction log are already unseen, so a few
        rounds of resampling the collisions is much faster than per-user set
        differences.
        """
        user_ids = np.asarray(user_ids)
        positives = np.asarray(positives)
        negatives = self._rng.choice(self._objects, size=user_ids.shape[0], replace=True)
        for _ in range(20):
            collisions = np.array([
                negatives[i] == positives[i] or negatives[i] in self._seen.get(int(user_ids[i]), set())
                for i in range(user_ids.shape[0])
            ])
            if not collisions.any():
                break
            resampled = self._rng.choice(self._objects, size=int(collisions.sum()), replace=True)
            negatives[collisions] = resampled
        return negatives

    def evaluation_candidates(self, user_id: int, ground_truth: int, num_negatives: int) -> np.ndarray:
        """Ground truth + ``num_negatives`` unseen objects (paper §V-C).

        The ground-truth object is placed first; evaluation code shuffles or
        ranks by score so the position does not matter.
        """
        negatives = self.sample_for_user(user_id, num_negatives)
        negatives = negatives[negatives != ground_truth]
        while negatives.size < num_negatives:
            extra = self.sample_for_user(user_id, num_negatives - negatives.size)
            extra = extra[extra != ground_truth]
            negatives = np.concatenate([negatives, extra]) if extra.size else negatives
            if negatives.size == 0 and self._objects.size <= 1:
                break
        return np.concatenate([[ground_truth], negatives[:num_negatives]]).astype(np.int64)
