"""Negative sampling for the ranking and classification tasks.

The paper draws 5 negative samples per positive during training (§IV-D) and,
at evaluation time, ranks the ground-truth object against J sampled objects
the user never interacted with (§V-C) for ranking, or one sampled negative
per positive for classification.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Set

import numpy as np

from repro.data.interactions import InteractionLog


class NegativeSampler:
    """Sample objects a user has never interacted with.

    Parameters
    ----------
    log:
        The full interaction log (train + held-out) used to build the per-user
        "seen" sets, so evaluation negatives are genuinely unobserved.
    objects:
        The candidate universe; defaults to every object in the log.
    seed:
        Seed for the internal generator, making sampling reproducible.
    """

    def __init__(
        self,
        log: InteractionLog,
        objects: Optional[Sequence[int]] = None,
        seed: int = 0,
    ):
        self._rng = np.random.default_rng(seed)
        self._objects = np.array(sorted(objects if objects is not None else log.objects), dtype=np.int64)
        if self._objects.size == 0:
            raise ValueError("negative sampler needs a non-empty object universe")
        self._seen: Dict[int, Set[int]] = {
            user: set(log.objects_of_user(user)) for user in log.users
        }
        # Lazily built vectorised index over the seen sets (see _seen_index):
        # sorted user ids and sorted (user_rank * |objects| + object_rank)
        # pair keys, enabling a searchsorted membership test over whole
        # batches at once.  Invalidated by mark_seen.
        self._user_list: Optional[np.ndarray] = None
        self._seen_keys: Optional[np.ndarray] = None

    @property
    def object_universe(self) -> np.ndarray:
        return self._objects

    def seen(self, user_id: int) -> Set[int]:
        return self._seen.get(user_id, set())

    def mark_seen(self, user_id: int, object_id: int) -> None:
        """Add an interaction to the user's seen set (e.g. held-out records)."""
        self._seen.setdefault(user_id, set()).add(object_id)
        self._user_list = None
        self._seen_keys = None

    def _seen_index(self) -> tuple:
        """Sorted ``(user_list, pair_keys)`` arrays for batched membership tests."""
        if self._user_list is None or self._seen_keys is None:
            self._user_list = np.array(sorted(self._seen), dtype=np.int64)
            num_objects = self._objects.size
            keys = []
            for rank, user in enumerate(self._user_list):
                seen = np.array(sorted(self._seen[int(user)]), dtype=np.int64)
                position = np.searchsorted(self._objects, seen)
                position = np.clip(position, 0, num_objects - 1)
                in_universe = self._objects[position] == seen
                keys.append(rank * num_objects + position[in_universe])
            self._seen_keys = (
                np.sort(np.concatenate(keys)) if keys else np.empty(0, dtype=np.int64)
            )
        return self._user_list, self._seen_keys

    def sample_for_user(self, user_id: int, count: int) -> np.ndarray:
        """Draw ``count`` objects the user never interacted with (no replacement
        within a call, falling back to with-replacement when the unseen pool is
        smaller than ``count``)."""
        if count < 1:
            raise ValueError("count must be positive")
        seen = self._seen.get(user_id, set())
        unseen = self._objects[~np.isin(self._objects, list(seen))] if seen else self._objects
        if unseen.size == 0:
            # Degenerate case: the user has interacted with everything.
            return self._rng.choice(self._objects, size=count, replace=True)
        replace = unseen.size < count
        return self._rng.choice(unseen, size=count, replace=replace)

    def sample_batch(self, user_ids: np.ndarray, positives: np.ndarray) -> np.ndarray:
        """One negative per (user, positive) pair; vectorised rejection sampling.

        Most draws from a sparse interaction log are already unseen, so a few
        rounds of resampling the collisions beat per-user set differences.
        Both the draws and the collision test are fully vectorised: seen-set
        membership is a ``searchsorted`` over precomputed (user, object) pair
        keys, so no Python-level loop touches the batch.  Rows still colliding
        after the rejection rounds fall back to an exact per-user set
        difference, so a returned negative is never a seen object (unless the
        user has interacted with the entire universe).
        """
        user_ids = np.asarray(user_ids, dtype=np.int64)
        positives = np.asarray(positives, dtype=np.int64)
        user_list, seen_keys = self._seen_index()
        num_objects = self._objects.size

        user_rank = np.searchsorted(user_list, user_ids)
        user_rank = np.clip(user_rank, 0, max(user_list.size - 1, 0))
        known_user = (
            user_list[user_rank] == user_ids if user_list.size else np.zeros(user_ids.shape, bool)
        )

        def collides(rows: np.ndarray, candidates: np.ndarray) -> np.ndarray:
            hit = candidates == positives[rows]
            if seen_keys.size:
                position = np.searchsorted(self._objects, candidates)
                keys = user_rank[rows] * num_objects + position
                slot = np.clip(np.searchsorted(seen_keys, keys), 0, seen_keys.size - 1)
                hit |= known_user[rows] & (seen_keys[slot] == keys)
            return hit

        negatives = self._rng.choice(self._objects, size=user_ids.shape[0], replace=True)
        pending = np.arange(user_ids.shape[0])
        for _ in range(20):
            pending = pending[collides(pending, negatives[pending])]
            if pending.size == 0:
                return negatives
            negatives[pending] = self._rng.choice(self._objects, size=pending.size, replace=True)

        # Stubborn rows (dense users): exact set-difference fallback.
        pending = pending[collides(pending, negatives[pending])]
        for row in pending:
            seen = self._seen.get(int(user_ids[row]), set())
            unseen = self._objects[~np.isin(self._objects, list(seen | {int(positives[row])}))]
            if unseen.size:
                negatives[row] = self._rng.choice(unseen)
        return negatives

    def evaluation_candidates(self, user_id: int, ground_truth: int, num_negatives: int) -> np.ndarray:
        """Ground truth + ``num_negatives`` unseen objects (paper §V-C).

        The ground-truth object is placed first; evaluation code shuffles or
        ranks by score so the position does not matter.
        """
        negatives = self.sample_for_user(user_id, num_negatives)
        negatives = negatives[negatives != ground_truth]
        while negatives.size < num_negatives:
            extra = self.sample_for_user(user_id, num_negatives - negatives.size)
            extra = extra[extra != ground_truth]
            negatives = np.concatenate([negatives, extra]) if extra.size else negatives
            if negatives.size == 0 and self._objects.size <= 1:
                break
        return np.concatenate([[ground_truth], negatives[:num_negatives]]).astype(np.int64)
