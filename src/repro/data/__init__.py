"""Data substrate: interaction logs, synthetic dataset generators, filtering,
chronological leave-one-out splitting, feature encoding and batching.

The paper evaluates on six public datasets (Gowalla, Foursquare, Trivago,
Taobao, Amazon Beauty, Amazon Toys).  This environment has no network access,
so :mod:`repro.data.synthetic` generates scaled-down synthetic equivalents
that plant the same kind of sequential structure each real dataset exhibits
(see DESIGN.md §2 for the substitution rationale).  Everything downstream of
the generators — filtering, splitting, encoding, sampling, batching,
evaluation — is implemented exactly as the paper describes and works
identically on real interaction logs.
"""

from repro.data.interactions import Interaction, InteractionLog
from repro.data.preprocess import filter_by_activity, chronological_sort
from repro.data.split import leave_one_out_split, LeaveOneOutSplit, proportion_subset
from repro.data.features import FeatureEncoder, EncodedExample, FeatureBatch, pad_sequences
from repro.data.sampling import NegativeSampler
from repro.data.batching import BatchIterator
from repro.data.datasets import DatasetSpec, DATASET_REGISTRY, load_dataset, dataset_statistics
from repro.data import synthetic

__all__ = [
    "Interaction",
    "InteractionLog",
    "filter_by_activity",
    "chronological_sort",
    "leave_one_out_split",
    "LeaveOneOutSplit",
    "proportion_subset",
    "FeatureEncoder",
    "EncodedExample",
    "FeatureBatch",
    "NegativeSampler",
    "BatchIterator",
    "pad_sequences",
    "DatasetSpec",
    "DATASET_REGISTRY",
    "load_dataset",
    "dataset_statistics",
    "synthetic",
]
