"""Dataset registry mapping the paper's six datasets to synthetic generators.

``load_dataset("gowalla")`` returns a filtered, chronologically sorted
interaction log whose structure mirrors the corresponding public dataset
(see :mod:`repro.data.synthetic`), and :func:`dataset_statistics` reproduces
the columns of Table I of the paper for any log.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

from repro.data import synthetic
from repro.data.interactions import InteractionLog
from repro.data.preprocess import chronological_sort, filter_by_activity


@dataclass(frozen=True)
class DatasetSpec:
    """Metadata for one of the paper's evaluation datasets.

    Attributes
    ----------
    name:
        Registry key (lower-case, e.g. ``"gowalla"``).
    task:
        ``"ranking"``, ``"classification"`` or ``"regression"``.
    generator:
        Zero-argument callable returning the synthetic interaction log.
    paper_instances / paper_users / paper_objects / paper_features:
        The statistics reported in Table I of the paper for the real dataset,
        kept for side-by-side reporting.
    min_activity:
        Activity threshold applied by the paper (10 for the four implicit
        datasets; the Amazon ratings are used as provided).
    """

    name: str
    task: str
    generator: Callable[[], InteractionLog]
    paper_instances: int
    paper_users: int
    paper_objects: int
    paper_features: int
    min_activity: int = 10


DATASET_REGISTRY: Dict[str, DatasetSpec] = {
    "gowalla": DatasetSpec(
        name="gowalla", task="ranking", generator=synthetic.gowalla_like,
        paper_instances=1_865_119, paper_users=34_796, paper_objects=57_445,
        paper_features=149_686, min_activity=10,
    ),
    "foursquare": DatasetSpec(
        name="foursquare", task="ranking", generator=synthetic.foursquare_like,
        paper_instances=1_196_248, paper_users=24_941, paper_objects=28_593,
        paper_features=82_127, min_activity=10,
    ),
    "trivago": DatasetSpec(
        name="trivago", task="classification", generator=synthetic.trivago_like,
        paper_instances=2_810_584, paper_users=12_790, paper_objects=45_195,
        paper_features=103_180, min_activity=10,
    ),
    "taobao": DatasetSpec(
        name="taobao", task="classification", generator=synthetic.taobao_like,
        paper_instances=1_970_133, paper_users=37_398, paper_objects=65_474,
        paper_features=168_346, min_activity=10,
    ),
    "beauty": DatasetSpec(
        name="beauty", task="regression", generator=synthetic.beauty_like,
        paper_instances=198_503, paper_users=22_363, paper_objects=12_101,
        paper_features=46_565, min_activity=5,
    ),
    "toys": DatasetSpec(
        name="toys", task="regression", generator=synthetic.toys_like,
        paper_instances=167_597, paper_users=19_412, paper_objects=11_924,
        paper_features=50_748, min_activity=5,
    ),
}


def load_dataset(name: str) -> InteractionLog:
    """Generate, filter and chronologically sort one of the registry datasets."""
    key = name.lower()
    if key not in DATASET_REGISTRY:
        raise KeyError(f"unknown dataset {name!r}; known: {sorted(DATASET_REGISTRY)}")
    spec = DATASET_REGISTRY[key]
    log = spec.generator()
    log = filter_by_activity(
        log,
        min_user_interactions=spec.min_activity,
        min_object_interactions=min(spec.min_activity, 5),
    )
    return chronological_sort(log)


def dataset_statistics(log: InteractionLog, max_seq_len: int = 20) -> Dict[str, int]:
    """Table I columns for an interaction log.

    The "#Feature(Sparse)" column of the paper counts the total number of
    sparse feature dimensions, i.e. the static vocabulary (users + objects)
    plus the dynamic vocabulary (objects + padding) — reported here the same
    way so synthetic and paper numbers are comparable in kind.
    """
    stats = log.statistics()
    stats["features"] = stats["users"] + 2 * stats["objects"] + 1
    stats["max_seq_len"] = max_seq_len
    return stats
