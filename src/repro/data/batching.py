"""Mini-batch iteration over encoded examples and sequence collation.

The collation primitive :func:`~repro.data.features.pad_sequences` lives in
:mod:`repro.data.features` (next to the encoder that defines the layout) and
is re-exported here for the batching consumers — the serving micro-batcher
imports it from this module.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence

import numpy as np

from repro.data.features import EncodedExample, FeatureBatch, pad_sequences

__all__ = ["BatchIterator", "pad_sequences"]


class BatchIterator:
    """Iterate over :class:`EncodedExample` objects in shuffled mini-batches.

    Collation is performed **once**: the constructor stacks every example into
    dense dataset-wide arrays (the same work
    :meth:`~repro.data.features.FeatureBatch.from_examples` would do per
    batch), and each epoch merely fancy-indexes rows out of that cache.  For a
    multi-epoch training run this removes the per-example Python loop from
    every epoch after the first, while producing bit-identical batches.

    Parameters
    ----------
    examples:
        The training instances.
    batch_size:
        Mini-batch size (the paper uses 512; the scaled-down reproduction
        defaults to 128).
    shuffle:
        Whether to reshuffle at the start of every epoch.
    seed:
        Seed of the shuffling generator, for reproducibility.
    drop_last:
        Drop the final partial batch (kept by default).
    """

    def __init__(
        self,
        examples: Sequence[EncodedExample],
        batch_size: int = 128,
        shuffle: bool = True,
        seed: int = 0,
        drop_last: bool = False,
    ):
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        if not examples:
            raise ValueError("BatchIterator needs at least one example")
        self.examples: List[EncodedExample] = list(examples)
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self._rng = np.random.default_rng(seed)
        self._collated = FeatureBatch.from_examples(self.examples)

    def __len__(self) -> int:
        full, remainder = divmod(len(self.examples), self.batch_size)
        if remainder and not self.drop_last:
            return full + 1
        return full

    def _take(self, rows: np.ndarray) -> FeatureBatch:
        """Materialise a batch as row copies out of the collation cache."""
        collated = self._collated
        return FeatureBatch(
            static_indices=collated.static_indices[rows],
            dynamic_indices=collated.dynamic_indices[rows],
            dynamic_mask=collated.dynamic_mask[rows],
            labels=collated.labels[rows],
            user_ids=collated.user_ids[rows],
            object_ids=collated.object_ids[rows],
        )

    def __iter__(self) -> Iterator[FeatureBatch]:
        order = np.arange(len(self.examples))
        if self.shuffle:
            self._rng.shuffle(order)
        for start in range(0, len(order), self.batch_size):
            chunk = order[start:start + self.batch_size]
            if self.drop_last and chunk.size < self.batch_size:
                break
            yield self._take(chunk)
