"""Reading and writing interaction logs.

Two pieces of functionality live here:

* a simple, dependency-free on-disk format (CSV and JSON-lines) for
  :class:`~repro.data.interactions.InteractionLog`, so generated or
  preprocessed datasets can be cached and shared between runs;
* loaders for the file formats of the *real* public datasets the paper uses
  (Gowalla/Foursquare check-in dumps and Amazon rating CSVs), so anyone with
  access to those files can run every experiment in this repository on the
  original data instead of the synthetic stand-ins.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Optional, Union

from repro.data.interactions import Interaction, InteractionLog

PathLike = Union[str, Path]

_CSV_FIELDS = ["user_id", "object_id", "timestamp", "rating"]


# --------------------------------------------------------------------------- #
# Native CSV / JSONL round-trip
# --------------------------------------------------------------------------- #
def save_csv(log: InteractionLog, path: PathLike) -> None:
    """Write a log as CSV with columns user_id, object_id, timestamp, rating."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_CSV_FIELDS)
        for event in log:
            rating = "" if event.rating is None else repr(float(event.rating))
            writer.writerow([event.user_id, event.object_id, repr(float(event.timestamp)), rating])


def load_csv(path: PathLike, name: str = "") -> InteractionLog:
    """Read a log written by :func:`save_csv` (extra columns are ignored)."""
    path = Path(path)
    log = InteractionLog(name=name or path.stem)
    with path.open(newline="") as handle:
        reader = csv.DictReader(handle)
        missing = set(_CSV_FIELDS[:3]) - set(reader.fieldnames or [])
        if missing:
            raise ValueError(f"{path} is missing required columns: {sorted(missing)}")
        for row in reader:
            rating_text = (row.get("rating") or "").strip()
            log.append(Interaction(
                user_id=int(row["user_id"]),
                object_id=int(row["object_id"]),
                timestamp=float(row["timestamp"]),
                rating=float(rating_text) if rating_text else None,
            ))
    return log


def save_jsonl(log: InteractionLog, path: PathLike) -> None:
    """Write a log as JSON-lines, one interaction object per line."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as handle:
        for event in log:
            record = {
                "user_id": event.user_id,
                "object_id": event.object_id,
                "timestamp": event.timestamp,
            }
            if event.rating is not None:
                record["rating"] = event.rating
            handle.write(json.dumps(record) + "\n")


def load_jsonl(path: PathLike, name: str = "") -> InteractionLog:
    """Read a log written by :func:`save_jsonl`."""
    path = Path(path)
    log = InteractionLog(name=name or path.stem)
    with path.open() as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(f"{path}:{line_number}: invalid JSON") from error
            log.append(Interaction(
                user_id=int(record["user_id"]),
                object_id=int(record["object_id"]),
                timestamp=float(record["timestamp"]),
                rating=float(record["rating"]) if "rating" in record else None,
            ))
    return log


# --------------------------------------------------------------------------- #
# Loaders for the real public datasets (paper §V-A)
# --------------------------------------------------------------------------- #
def load_gowalla_checkins(path: PathLike, max_rows: Optional[int] = None) -> InteractionLog:
    """Load the SNAP Gowalla check-in dump (``loc-gowalla_totalCheckins.txt``).

    The file is tab-separated: ``user  check-in-time  latitude  longitude
    location-id``.  Only the user, time and location columns are used; the
    ISO-8601 timestamp is converted to seconds so chronological ordering works
    exactly as with the synthetic generators.
    """
    from datetime import datetime, timezone

    path = Path(path)
    log = InteractionLog(name="gowalla")
    with path.open() as handle:
        for row_number, line in enumerate(handle):
            if max_rows is not None and row_number >= max_rows:
                break
            parts = line.rstrip("\n").split("\t")
            if len(parts) < 5:
                continue
            user_text, time_text, _, _, location_text = parts[:5]
            try:
                timestamp = datetime.strptime(time_text, "%Y-%m-%dT%H:%M:%SZ")
                timestamp = timestamp.replace(tzinfo=timezone.utc).timestamp()
                log.append(Interaction(
                    user_id=int(user_text),
                    object_id=int(location_text),
                    timestamp=float(timestamp),
                ))
            except (ValueError, OverflowError):
                continue
    return log


def load_foursquare_checkins(path: PathLike, max_rows: Optional[int] = None) -> InteractionLog:
    """Load the global-scale Foursquare check-in file (Yang et al.).

    The file is tab-separated: ``user_id  venue_id  utc_time  timezone_offset``;
    venue ids are strings and are mapped to dense integer ids on the fly.
    """
    from datetime import datetime, timezone

    path = Path(path)
    log = InteractionLog(name="foursquare")
    venue_ids: dict = {}
    with path.open(errors="replace") as handle:
        for row_number, line in enumerate(handle):
            if max_rows is not None and row_number >= max_rows:
                break
            parts = line.rstrip("\n").split("\t")
            if len(parts) < 3:
                continue
            user_text, venue_text, time_text = parts[0], parts[1], parts[2]
            try:
                timestamp = datetime.strptime(time_text, "%a %b %d %H:%M:%S +0000 %Y")
                timestamp = timestamp.replace(tzinfo=timezone.utc).timestamp()
            except ValueError:
                continue
            venue_index = venue_ids.setdefault(venue_text, len(venue_ids))
            try:
                log.append(Interaction(
                    user_id=int(user_text),
                    object_id=venue_index,
                    timestamp=float(timestamp),
                ))
            except ValueError:
                continue
    return log


def load_amazon_ratings(path: PathLike, max_rows: Optional[int] = None) -> InteractionLog:
    """Load an Amazon "ratings only" CSV (``user,item,rating,timestamp``).

    This is the format of the per-category files (Beauty, Toys & Games, ...)
    from the SNAP Amazon product data the paper uses for the regression task.
    User and item ids are alphanumeric strings and are densified on the fly.
    """
    path = Path(path)
    log = InteractionLog(name=path.stem)
    user_ids: dict = {}
    item_ids: dict = {}
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        for row_number, row in enumerate(reader):
            if max_rows is not None and row_number >= max_rows:
                break
            if len(row) < 4:
                continue
            user_text, item_text, rating_text, time_text = row[:4]
            try:
                rating = float(rating_text)
                timestamp = float(time_text)
            except ValueError:
                continue  # header or malformed row
            user_index = user_ids.setdefault(user_text, len(user_ids))
            item_index = item_ids.setdefault(item_text, len(item_ids))
            log.append(Interaction(
                user_id=user_index,
                object_id=item_index,
                timestamp=timestamp,
                rating=rating,
            ))
    return log
