"""Interaction-log data structures.

An :class:`Interaction` is a single (user, object, timestamp[, rating]) event
— a POI check-in, an ad click or a product rating depending on the task.  An
:class:`InteractionLog` is a collection of interactions with efficient access
to each user's chronological sequence, the shape every component downstream
(filtering, splitting, encoding, evaluation) works with.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Set


@dataclass(frozen=True)
class Interaction:
    """A single user–object event.

    Attributes
    ----------
    user_id:
        Identifier of the acting user.
    object_id:
        Identifier of the POI / link / item, the paper's generic "object".
    timestamp:
        Monotone event time; only the relative order per user matters.
    rating:
        Explicit feedback value for regression datasets; ``None`` for the
        implicit-feedback ranking/classification datasets.
    """

    user_id: int
    object_id: int
    timestamp: float
    rating: Optional[float] = None


@dataclass
class InteractionLog:
    """A set of interactions plus an optional human-readable dataset name."""

    interactions: List[Interaction] = field(default_factory=list)
    name: str = ""

    def __post_init__(self) -> None:
        self._by_user: Optional[Dict[int, List[Interaction]]] = None

    # ------------------------------------------------------------------ #
    # Container protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.interactions)

    def __iter__(self) -> Iterator[Interaction]:
        return iter(self.interactions)

    def append(self, interaction: Interaction) -> None:
        self.interactions.append(interaction)
        self._by_user = None

    def extend(self, interactions: Iterable[Interaction]) -> None:
        self.interactions.extend(interactions)
        self._by_user = None

    # ------------------------------------------------------------------ #
    # Derived views
    # ------------------------------------------------------------------ #
    @property
    def users(self) -> Set[int]:
        return {interaction.user_id for interaction in self.interactions}

    @property
    def objects(self) -> Set[int]:
        return {interaction.object_id for interaction in self.interactions}

    def num_users(self) -> int:
        return len(self.users)

    def num_objects(self) -> int:
        return len(self.objects)

    def by_user(self) -> Dict[int, List[Interaction]]:
        """Map each user to their interactions sorted chronologically.

        The mapping is cached and invalidated whenever the log is mutated
        through :meth:`append` / :meth:`extend`.
        """
        if self._by_user is None:
            grouped: Dict[int, List[Interaction]] = {}
            for interaction in self.interactions:
                grouped.setdefault(interaction.user_id, []).append(interaction)
            for sequence in grouped.values():
                sequence.sort(key=lambda event: event.timestamp)
            self._by_user = grouped
        return self._by_user

    def user_sequence(self, user_id: int) -> List[Interaction]:
        """Chronological interaction sequence of one user (empty if unknown)."""
        return self.by_user().get(user_id, [])

    def objects_of_user(self, user_id: int) -> Set[int]:
        return {interaction.object_id for interaction in self.user_sequence(user_id)}

    def has_ratings(self) -> bool:
        """Whether this log carries explicit feedback (regression datasets)."""
        return any(interaction.rating is not None for interaction in self.interactions)

    def statistics(self) -> Dict[str, int]:
        """Headline statistics in the format of Table I of the paper."""
        return {
            "instances": len(self.interactions),
            "users": self.num_users(),
            "objects": self.num_objects(),
        }
