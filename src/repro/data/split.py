"""Chronological leave-one-out splitting (paper §V-C).

Within each user's transaction history the last record is held out for test,
the second-to-last for validation, and everything earlier is used for
training.  This respects the temporal causality the paper argues for: a model
may only use a user's *past* records to predict the future.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.data.interactions import Interaction, InteractionLog


@dataclass
class LeaveOneOutSplit:
    """Per-user chronological split produced by :func:`leave_one_out_split`.

    Attributes
    ----------
    train:
        All but the last two interactions of every user (chronological).
    validation / test:
        One held-out interaction per user: the second-to-last and the last.
    history:
        For each user, the chronological training history (used to build the
        dynamic feature sequence when scoring validation/test candidates).
    """

    train: InteractionLog
    validation: Dict[int, Interaction]
    test: Dict[int, Interaction]
    history: Dict[int, List[Interaction]]

    def users(self) -> List[int]:
        return sorted(self.test)


def leave_one_out_split(log: InteractionLog, min_sequence_length: int = 3) -> LeaveOneOutSplit:
    """Split each user's sequence into train / validation (n-1) / test (n).

    Users with fewer than ``min_sequence_length`` interactions cannot supply
    both held-out records plus at least one training record and are placed
    entirely in the training partition (they still contribute interaction
    signal but are not evaluated), mirroring common practice.
    """
    if min_sequence_length < 3:
        raise ValueError("leave-one-out needs at least 3 interactions per evaluated user")

    train_events: List[Interaction] = []
    validation: Dict[int, Interaction] = {}
    test: Dict[int, Interaction] = {}
    history: Dict[int, List[Interaction]] = {}

    for user_id, sequence in log.by_user().items():
        if len(sequence) < min_sequence_length:
            train_events.extend(sequence)
            continue
        train_part = sequence[:-2]
        validation[user_id] = sequence[-2]
        test[user_id] = sequence[-1]
        history[user_id] = list(train_part)
        train_events.extend(train_part)

    train_events.sort(key=lambda event: (event.timestamp, event.user_id, event.object_id))
    train_log = InteractionLog(interactions=train_events, name=f"{log.name}-train")
    return LeaveOneOutSplit(train=train_log, validation=validation, test=test, history=history)


def proportion_subset(log: InteractionLog, proportion: float) -> InteractionLog:
    """Return the chronologically earliest ``proportion`` of the interactions.

    Used by the Figure 4 scalability experiment, which varies the proportion
    of training data in {0.2, 0.4, 0.6, 0.8, 1.0} and measures training time.
    """
    if not 0.0 < proportion <= 1.0:
        raise ValueError("proportion must be in (0, 1]")
    ordered = sorted(
        log.interactions,
        key=lambda event: (event.timestamp, event.user_id, event.object_id),
    )
    cutoff = max(1, int(round(len(ordered) * proportion)))
    return InteractionLog(interactions=ordered[:cutoff], name=f"{log.name}-{proportion:.0%}")
