"""Preprocessing: activity filtering and chronological ordering.

The paper filters out "inactive users with less than 10 interacted objects and
unpopular objects visited by less than 10 users" (Section V-A).  Because
removing unpopular objects can push a user below the activity threshold (and
vice versa), :func:`filter_by_activity` iterates the two filters to a fixed
point, the standard k-core style procedure used throughout the recommender
literature the paper builds on.
"""

from __future__ import annotations

from collections import Counter

from repro.data.interactions import Interaction, InteractionLog


def chronological_sort(log: InteractionLog) -> InteractionLog:
    """Return a new log with interactions globally sorted by timestamp.

    Ties are broken by (user, object) so the output is deterministic.
    """
    ordered = sorted(
        log.interactions,
        key=lambda event: (event.timestamp, event.user_id, event.object_id),
    )
    return InteractionLog(interactions=ordered, name=log.name)


def filter_by_activity(
    log: InteractionLog,
    min_user_interactions: int = 10,
    min_object_interactions: int = 10,
    max_iterations: int = 50,
) -> InteractionLog:
    """Iteratively drop inactive users and unpopular objects (paper §V-A).

    Parameters
    ----------
    log:
        The raw interaction log.
    min_user_interactions:
        Minimum number of events a user must have to be kept.
    min_object_interactions:
        Minimum number of distinct users an object must be touched by.
    max_iterations:
        Safety bound on the fixed-point iteration.
    """
    if min_user_interactions < 1 or min_object_interactions < 1:
        raise ValueError("activity thresholds must be at least 1")

    interactions = list(log.interactions)
    for _ in range(max_iterations):
        user_counts = Counter(event.user_id for event in interactions)
        object_user_counts: Counter = Counter()
        seen_pairs = set()
        for event in interactions:
            pair = (event.object_id, event.user_id)
            if pair not in seen_pairs:
                seen_pairs.add(pair)
                object_user_counts[event.object_id] += 1

        kept = [
            event
            for event in interactions
            if user_counts[event.user_id] >= min_user_interactions
            and object_user_counts[event.object_id] >= min_object_interactions
        ]
        if len(kept) == len(interactions):
            break
        interactions = kept

    return InteractionLog(interactions=interactions, name=log.name)


def deduplicate_consecutive(log: InteractionLog) -> InteractionLog:
    """Remove immediate repeats of the same object within a user's sequence.

    Useful for POI check-in style data where a user may check into the same
    place several times in a row; repeated entries carry no sequential signal.
    """
    kept: list[Interaction] = []
    for user_id, sequence in log.by_user().items():
        previous_object = None
        for event in sequence:
            if event.object_id != previous_object:
                kept.append(event)
            previous_object = event.object_id
    kept.sort(key=lambda event: (event.timestamp, event.user_id, event.object_id))
    return InteractionLog(interactions=kept, name=log.name)
