"""SeqFM reproduction: Sequence-Aware Factorization Machines for Temporal
Predictive Analytics (Chen et al., ICDE 2020).

Subpackages
-----------
``repro.autograd``
    Reverse-mode automatic differentiation on NumPy (the DL substrate).
``repro.nn``
    Neural-network layers, optimisers and losses built on the autograd engine.
``repro.core``
    The SeqFM model, its task heads, the trainer and grid search.
``repro.baselines``
    Re-implementations of every baseline the paper compares against.
``repro.data``
    Interaction logs, synthetic dataset generators, splits, feature encoding.
``repro.eval``
    HR/NDCG/AUC/RMSE/MAE/RRSE and the leave-one-out evaluation protocols.
``repro.experiments``
    Runners that regenerate every table and figure of the paper.
``repro.serving``
    Batched inference runtime: graph-free engine, request micro-batcher,
    LRU-cached user-sequence store and the checkpoint-backed model registry.
"""

__version__ = "1.0.0"

from repro.core import SeqFM, SeqFMConfig, SeqFMRanker, SeqFMClassifier, SeqFMRegressor

__all__ = [
    "SeqFM",
    "SeqFMConfig",
    "SeqFMRanker",
    "SeqFMClassifier",
    "SeqFMRegressor",
    "__version__",
]
