"""Repo-invariant static analysis for the SeqFM reproduction.

``python -m repro.analysis src`` (or ``make lint``) runs every registered
rule over the tree and fails on any finding that is neither suppressed
inline (``# repro: allow[rule-id]``) nor grandfathered in the committed
baseline (``analysis-baseline.txt``).  See :mod:`repro.analysis.core` for
the framework and the individual rule modules for what each one enforces:

* ``lock-discipline`` — :mod:`repro.analysis.lock_discipline`
* ``lock-order`` — :mod:`repro.analysis.lock_order`
* ``blocking-under-lock`` — :mod:`repro.analysis.lock_order`
* ``shared-state-drift`` — :mod:`repro.analysis.lock_order`
* ``kernel-purity`` — :mod:`repro.analysis.kernel_purity`
* ``protocol-completeness`` — :mod:`repro.analysis.protocol_completeness`
* ``numerics-hygiene`` — :mod:`repro.analysis.numerics`

The concurrency rules share the repo-wide call graph built by
:mod:`repro.analysis.callgraph`; the static lock graph they derive is
cross-validated at runtime by the opt-in :mod:`repro.analysis.sanitizer`
(``make sanitize``).
"""

from repro.analysis.core import (  # noqa: F401 — the public surface
    AnalysisReport,
    Finding,
    Module,
    Project,
    Rule,
    SYNTAX_ERROR_RULE,
    analyze,
    collect_files,
    load_baseline,
    render_baseline,
)
from repro.analysis.callgraph import CallGraph, get_callgraph  # noqa: F401
from repro.analysis.kernel_purity import KernelPurityRule  # noqa: F401
from repro.analysis.lock_discipline import LockDisciplineRule  # noqa: F401
from repro.analysis.lock_order import (  # noqa: F401
    BlockingUnderLockRule,
    LockAnalysis,
    LockOrderRule,
    SharedStateDriftRule,
    get_lock_analysis,
    static_lock_edges,
)
from repro.analysis.sanitizer import (  # noqa: F401
    LockOrderViolation,
    LockSanitizer,
    active_sanitizer,
    enabled_from_env,
    install_sanitizer,
    uninstall_sanitizer,
)
from repro.analysis.numerics import NumericsHygieneRule  # noqa: F401
from repro.analysis.protocol_completeness import ProtocolCompletenessRule  # noqa: F401


def default_rules():
    """One instance of every registered rule, in stable id order."""
    rules = [
        BlockingUnderLockRule(),
        KernelPurityRule(),
        LockDisciplineRule(),
        LockOrderRule(),
        NumericsHygieneRule(),
        ProtocolCompletenessRule(),
        SharedStateDriftRule(),
    ]
    return sorted(rules, key=lambda rule: rule.rule_id)
