"""lock-order / blocking-under-lock / shared-state-drift: the concurrency rules.

The PR 7 ``lock-discipline`` rule checks that declared shared state is only
touched under its lock — an *intraprocedural* property.  The three rules in
this module cover what it cannot see:

* :class:`LockOrderRule` (``lock-order``) builds the repo's static
  lock-acquisition graph by propagating held-lock sets through the call
  graph (:mod:`repro.analysis.callgraph`): every ``with self._lock:`` block
  and every ``# repro: locked[...]`` annotation contributes held locks, and
  each acquisition while other locks are held adds ``held -> acquired``
  edges.  A cycle in that graph is a potential deadlock; the finding spells
  out the full acquisition path.  Acquiring a plain (non-reentrant)
  ``threading.Lock`` that is already held is reported as a self-deadlock.
* :class:`BlockingUnderLockRule` (``blocking-under-lock``) flags blocking
  operations — ``fsync``/``fdatasync``, ``time.sleep``, file/socket I/O,
  ``Future.result()``/``Event.wait()``, thread joins — performed while a
  lock is held, either directly or through a call whose callee (transitively)
  blocks.  Latency under a lock is latency for *every* thread behind it.
* :class:`SharedStateDriftRule` (``shared-state-drift``) keeps the
  hand-maintained ``DEFAULT_SHARED_STATE`` map honest: an attribute whose
  every post-construction mutation happens under the same ``self`` lock but
  which the map does not declare is suggested for declaration; a declared
  module/class/attribute that no longer exists is reported as stale.

Two escape hatches, both visible in the code under review:

* a ``lock-edge[ClassA._lock - ClassB._lock]`` comment (spelled with the
  usual ``# repro:`` prefix and an arrow between the two lock names)
  *declares* an intended acquisition edge the AST cannot see — the idiom
  for callback
  indirection (a journal sink invoked under the store lock that appends to
  the WAL).  Declared edges join the static graph, participate in cycle
  detection, and legitimize the matching runtime observations
  (:mod:`repro.analysis.sanitizer` asserts observed ⊆ static).
* the generic ``# repro: allow[rule-id]`` suppression, for blocking calls
  that are the point (a WAL exists to fsync under its lock).

Locks are identified as ``ClassName.attr`` (or ``function.var`` for
function-local locks); only attributes whose name contains ``lock`` are
treated as locks, so ``with self._file:`` never pollutes the graph.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Set, Tuple

from repro.analysis.callgraph import (
    CallGraph,
    FunctionInfo,
    get_callgraph,
)
from repro.analysis.core import Finding, Module, Project, Rule, attribute_on, \
    dotted_name
from repro.analysis.lock_discipline import (
    CONSTRUCTION_METHODS,
    DEFAULT_SHARED_STATE,
    MUTATING_METHODS,
    annotated_locks,
)

#: The declared-acquisition-edge comment (``repro: lock-edge[src -> dst]``).
_LOCK_EDGE_COMMENT = re.compile(
    r"#\s*repro:\s*lock-edge\[\s*([\w.]+)\s*->\s*([\w.]+)\s*\]")

#: Dotted call names that block outright.
_BLOCKING_CALLS = frozenset({
    "time.sleep", "os.fsync", "os.fdatasync", "select.select", "open",
})

#: Methods that block regardless of receiver.
_BLOCKING_METHODS = frozenset({"result", "wait", "fsync", "fdatasync"})

#: Stream-ish method names that block when the receiver looks like I/O.
_STREAM_METHODS = frozenset({
    "flush", "write", "read", "readline", "readlines", "recv", "send",
    "sendall", "connect", "accept",
})

#: Receiver name fragments that mark a stream/socket receiver.
_STREAM_RECEIVERS = ("file", "handle", "output", "stream", "sock",
                     "stdout", "stderr", "writer", "buf")

#: ``.join()`` blocks on these receivers (never on ``", ".join``).
_JOINABLE_RECEIVERS = ("thread", "worker", "proc", "pool", "future")

#: Contexts per function before the propagation collapses them (bound).
_MAX_CONTEXTS = 16


# --------------------------------------------------------------------------- #
# Per-function summaries (one lexical walk each)
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class AcquireSite:
    """``with self.<lock>:`` — which locks were lexically held on entry."""

    lock: str
    held: Tuple[str, ...]
    line: int


@dataclass(frozen=True)
class CallUnder:
    """One resolved call and the locks lexically held around it."""

    callee_key: str
    held: FrozenSet[str]
    line: int


@dataclass(frozen=True)
class BlockSite:
    """A directly-blocking operation and the locks lexically held around it."""

    desc: str
    held: FrozenSet[str]
    line: int


@dataclass(frozen=True)
class AttrWrite:
    """One ``self.attr`` mutation, for the shared-state drift inference."""

    attr: str
    held: FrozenSet[str]
    line: int
    construction: bool


@dataclass
class FunctionSummary:
    """Everything the interprocedural passes need to know about one function."""

    info: FunctionInfo
    #: Locks the ``# repro: locked[...]`` annotation asserts (qualified);
    #: ``None`` for the bare all-locks form.
    entry_locks: Optional[FrozenSet[str]]
    acquires: List[AcquireSite] = field(default_factory=list)
    calls: List[CallUnder] = field(default_factory=list)
    blocking: List[BlockSite] = field(default_factory=list)
    attr_writes: List[AttrWrite] = field(default_factory=list)

    @property
    def annotated(self) -> bool:
        return self.entry_locks is None or bool(self.entry_locks)


class LockAnalysis:
    """The static lock-acquisition graph and its supporting summaries."""

    def __init__(self, project: Project):
        self.project = project
        self.graph: CallGraph = get_callgraph(project)
        # Test/benchmark helpers acquire locks of their own; they are not
        # part of the production acquisition graph (and fixture snippets in
        # test files must not contribute declared edges to it either).
        self.summaries: Dict[str, FunctionSummary] = {
            info.key: _Summarizer(self, info).run()
            for info in self.graph.functions.values()
            if not _exempt_path(info.path)
        }
        self.blocks: Dict[str, bool] = self._compute_blocks()
        self.contexts: Dict[str, Set[FrozenSet[str]]] = \
            self._propagate_contexts()
        #: src lock -> dst lock -> (witness text, anchor path, anchor line)
        self.edges: Dict[str, Dict[str, Tuple[str, str, int]]] = {}
        #: (path, line, lock) self-deadlock acquisition sites.
        self.self_deadlocks: List[Tuple[str, int, str, str]] = []
        self._build_edges()
        self._add_declared_edges()

    # ------------------------------------------------------------------ #
    # Lock identity
    # ------------------------------------------------------------------ #
    def lock_kind(self, lock: str) -> str:
        """'Lock' | 'RLock' | 'unknown' for a qualified lock name."""
        owner, _, attr = lock.rpartition(".")
        cls = self.graph.lookup_class(owner)
        if cls is not None and attr in cls.lock_attrs:
            return cls.lock_attrs[attr]
        return "unknown"

    def qualify(self, info: FunctionInfo, names: FrozenSet[str]
                ) -> FrozenSet[str]:
        """Bare annotation lock names -> ``Class.attr`` qualified form."""
        owner = info.class_name if info.class_name is not None else info.name
        return frozenset(name if "." in name else f"{owner}.{name}"
                         for name in names)

    # ------------------------------------------------------------------ #
    # Transitive "does this function block?"
    # ------------------------------------------------------------------ #
    def _compute_blocks(self) -> Dict[str, bool]:
        blocks = {key: bool(summary.blocking)
                  for key, summary in self.summaries.items()}
        changed = True
        while changed:
            changed = False
            for key, summary in self.summaries.items():
                if blocks[key]:
                    continue
                for call in summary.calls:
                    callee = self.summaries.get(call.callee_key)
                    # An annotated helper's blocking is reported once, at
                    # its own definition — don't re-report at every caller.
                    if callee is not None and not callee.annotated and \
                            blocks.get(call.callee_key, False):
                        blocks[key] = True
                        changed = True
                        break
        return blocks

    # ------------------------------------------------------------------ #
    # Interprocedural held-lock contexts
    # ------------------------------------------------------------------ #
    def _propagate_contexts(self) -> Dict[str, Set[FrozenSet[str]]]:
        contexts: Dict[str, Set[FrozenSet[str]]] = {}
        for key, summary in self.summaries.items():
            entry = summary.entry_locks if summary.entry_locks is not None \
                else frozenset()
            contexts[key] = {entry}
        queue = sorted(self.summaries)
        while queue:
            key = queue.pop()
            summary = self.summaries[key]
            for ctx in list(contexts[key]):
                for call in summary.calls:
                    if call.callee_key not in contexts:
                        continue
                    incoming = frozenset(ctx | call.held)
                    if self._add_context(contexts, call.callee_key, incoming):
                        queue.append(call.callee_key)
        return contexts

    @staticmethod
    def _add_context(contexts: Dict[str, Set[FrozenSet[str]]], key: str,
                     ctx: FrozenSet[str]) -> bool:
        existing = contexts[key]
        if any(ctx <= other for other in existing):
            return False  # a superset context already generates these edges
        existing.difference_update([other for other in existing
                                    if other < ctx])
        existing.add(ctx)
        if len(existing) > _MAX_CONTEXTS:
            merged = frozenset().union(*existing)
            existing.clear()
            existing.add(merged)
        return True

    # ------------------------------------------------------------------ #
    # The acquisition graph
    # ------------------------------------------------------------------ #
    def _build_edges(self) -> None:
        for key in sorted(self.summaries):
            summary = self.summaries[key]
            info = summary.info
            for ctx in sorted(self.contexts[key], key=sorted):
                for acquire in summary.acquires:
                    held = set(ctx) | set(acquire.held)
                    for holder in sorted(held):
                        if holder == acquire.lock:
                            if self.lock_kind(acquire.lock) == "Lock":
                                self.self_deadlocks.append(
                                    (info.path, acquire.line, acquire.lock,
                                     info.qualname))
                            continue
                        self.edges.setdefault(holder, {}).setdefault(
                            acquire.lock,
                            (info.qualname, info.path, acquire.line))

    def _add_declared_edges(self) -> None:
        for module in self.project.modules:
            if _exempt_path(module.path):
                continue
            for offset, line in enumerate(module.source.splitlines(), start=1):
                match = _LOCK_EDGE_COMMENT.search(line)
                if match:
                    src, dst = match.group(1), match.group(2)
                    self.edges.setdefault(src, {}).setdefault(
                        dst, (f"declared in {module.path}", module.path,
                              offset))

    def cycles(self) -> List[List[str]]:
        """Every elementary inconsistency, one representative cycle per SCC."""
        components = _strongly_connected(self.edges)
        found: List[List[str]] = []
        for component in components:
            if len(component) < 2:
                node = next(iter(component))
                if node in self.edges.get(node, {}):
                    found.append([node, node])
                continue
            found.append(_representative_cycle(self.edges, component))
        found.sort()
        return found


class _Summarizer:
    """One lexical walk of a function body, tracking held locks in order."""

    def __init__(self, analysis: LockAnalysis, info: FunctionInfo):
        self.analysis = analysis
        self.info = info
        raw = annotated_locks(info.module, info.node)
        entry = None if raw is None else analysis.qualify(info, raw)
        self.summary = FunctionSummary(info=info, entry_locks=entry)
        self.local_locks = self._find_local_locks()
        self.callees_by_line: Dict[int, List[FunctionInfo]] = {}
        for site in analysis.graph.callees(info):
            self.callees_by_line.setdefault(site.line, []).append(site.callee)
        self._recorded_calls: Set[Tuple[str, int, FrozenSet[str]]] = set()

    def run(self) -> FunctionSummary:
        for statement in self.info.node.body:
            self._visit(statement, ())
        return self.summary

    def _find_local_locks(self) -> Dict[str, str]:
        locks: Dict[str, str] = {}
        for node in ast.walk(self.info.node):
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                name = dotted_name(node.value.func)
                kind = {"threading.Lock": "Lock", "Lock": "Lock",
                        "threading.RLock": "RLock", "RLock": "RLock"}.get(name)
                if kind is not None:
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            locks[target.id] = kind
        return locks

    # -- the walk ------------------------------------------------------ #
    def _visit(self, node: ast.AST, held: Tuple[str, ...]) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested functions may run on another thread: no lexical locks.
            return
        if isinstance(node, ast.Lambda):
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            inner = held
            for item in node.items:
                self._scan_node(item.context_expr, inner)
                lock = self._lock_of(item.context_expr)
                if lock is not None:
                    self.summary.acquires.append(
                        AcquireSite(lock=lock, held=inner, line=node.lineno))
                    inner = inner + (lock,)
            for child in node.body:
                self._visit(child, inner)
            return
        self._scan_node(node, held, recurse=False)
        for child in ast.iter_child_nodes(node):
            self._visit(child, held)

    def _lock_of(self, expr: ast.AST) -> Optional[str]:
        attr = attribute_on(expr, "self")
        if attr is not None and "lock" in attr.lower() and \
                self.info.class_name is not None:
            return f"{self.info.class_name}.{attr}"
        if isinstance(expr, ast.Name) and expr.id in self.local_locks:
            return f"{self.info.name}.{expr.id}"
        return None

    def _scan_node(self, node: ast.AST, held: Tuple[str, ...],
                   recurse: bool = True) -> None:
        nodes = ast.walk(node) if recurse else [node]
        held_set = frozenset(held)
        for child in nodes:
            if isinstance(child, ast.Call):
                desc = _blocking_descriptor(child)
                if desc is not None:
                    self.summary.blocking.append(
                        BlockSite(desc=desc, held=held_set, line=child.lineno))
                self._record_calls(child.lineno, held_set)
            elif isinstance(child, ast.Attribute):
                self._record_calls(child.lineno, held_set)
            self._record_writes(child, held_set)

    def _record_calls(self, line: int, held: FrozenSet[str]) -> None:
        for callee in self.callees_by_line.get(line, []):
            entry = (callee.key, line, held)
            if entry not in self._recorded_calls:
                self._recorded_calls.add(entry)
                self.summary.calls.append(
                    CallUnder(callee_key=callee.key, held=held, line=line))

    def _record_writes(self, node: ast.AST, held: FrozenSet[str]) -> None:
        construction = self.info.name in CONSTRUCTION_METHODS
        attrs: List[Tuple[str, int]] = []
        if isinstance(node, ast.Assign):
            for target in node.targets:
                attr = _written_attr(target)
                if attr is not None:
                    attrs.append((attr, node.lineno))
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)) and \
                getattr(node, "value", None) is not None:
            attr = _written_attr(node.target)
            if attr is not None:
                attrs.append((attr, node.lineno))
        elif isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Attribute):
            if node.func.attr in MUTATING_METHODS:
                attr = attribute_on(node.func.value, "self")
                if attr is not None:
                    attrs.append((attr, node.lineno))
        for attr, line in attrs:
            self.summary.attr_writes.append(AttrWrite(
                attr=attr, held=held, line=line, construction=construction))


def _written_attr(target: ast.AST) -> Optional[str]:
    """The ``self.attr`` a write target mutates (``self.attr[k] = v`` too)."""
    if isinstance(target, (ast.Subscript, ast.Starred)):
        target = target.value
    return attribute_on(target, "self")


# --------------------------------------------------------------------------- #
# Graph utilities
# --------------------------------------------------------------------------- #
def _strongly_connected(edges: Mapping[str, Mapping[str, object]]
                        ) -> List[Set[str]]:
    """Tarjan's SCCs over the lock graph, deterministic order, no recursion."""
    nodes = sorted(set(edges) | {dst for dsts in edges.values()
                                 for dst in dsts})
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    components: List[Set[str]] = []
    counter = [0]

    for root in nodes:
        if root in index:
            continue
        work = [(root, iter(sorted(edges.get(root, ()))))]
        index[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in index:
                    index[succ] = lowlink[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(sorted(edges.get(succ, ())))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component: Set[str] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                components.append(component)
    return components


def _representative_cycle(edges: Mapping[str, Mapping[str, object]],
                          component: Set[str]) -> List[str]:
    """A shortest cycle through the smallest lock name of the component."""
    start = min(component)
    parents: Dict[str, str] = {}
    queue = [start]
    seen = {start}
    while queue:
        node = queue.pop(0)
        for succ in sorted(edges.get(node, ())):
            if succ not in component:
                continue
            if succ == start:
                path = [start]
                walk = node
                tail = []
                while walk != start:
                    tail.append(walk)
                    walk = parents[walk]
                return [start] + list(reversed(tail)) + [start]
            if succ not in seen:
                seen.add(succ)
                parents[succ] = node
                queue.append(succ)
    return sorted(component) + [start]  # fallback; should not happen


def get_lock_analysis(project: Project) -> LockAnalysis:
    """The project's lock analysis, built once and cached on the project."""
    return project.cache("lock-analysis", LockAnalysis)


def static_lock_edges(paths, root=None) -> Set[Tuple[str, str]]:
    """The static acquisition graph over ``paths`` as (src, dst) pairs.

    The runtime sanitizer's cross-validation test compares its observed
    edges against this set — every edge a real thread interleaving produces
    must already be in the static graph (derived or declared).
    """
    from pathlib import Path

    from repro.analysis.core import collect_files, parse_module

    root = root if root is not None else Path.cwd()
    project = Project()
    for path in collect_files([Path(p) for p in paths]):
        module, _ = parse_module(path, root)
        if module is not None:
            project.modules.append(module)
    analysis = LockAnalysis(project)
    return {(src, dst) for src, targets in analysis.edges.items()
            for dst in targets}


# --------------------------------------------------------------------------- #
# Blocking-call classification
# --------------------------------------------------------------------------- #
def _blocking_descriptor(node: ast.Call) -> Optional[str]:
    """A stable description if ``node`` blocks outright, else ``None``."""
    name = dotted_name(node.func)
    if name in _BLOCKING_CALLS:
        return f"{name}()"
    if not isinstance(node.func, ast.Attribute):
        return None
    method = node.func.attr
    receiver = dotted_name(node.func.value) or ""
    receiver_tail = receiver.split(".")[-1].lower()
    if method in _BLOCKING_METHODS:
        return f".{method}()"
    if method in _STREAM_METHODS and \
            any(part in receiver_tail for part in _STREAM_RECEIVERS):
        return f"{receiver_tail}.{method}()"
    if method == "join" and \
            any(part in receiver_tail for part in _JOINABLE_RECEIVERS):
        return f"{receiver_tail}.join()"
    return None


# --------------------------------------------------------------------------- #
# The rules
# --------------------------------------------------------------------------- #
class LockOrderRule(Rule):
    """Cycles (and self-deadlocks) in the static lock-acquisition graph."""

    rule_id = "lock-order"
    description = ("the static lock-acquisition graph (with-blocks, "
                   "'# repro: locked' and lock-edge annotations, propagated "
                   "through the call graph) must be acyclic")

    def check_project(self, project: Project) -> Iterable[Finding]:
        analysis = get_lock_analysis(project)
        findings: List[Finding] = []
        for cycle in analysis.cycles():
            hops = []
            anchor: Optional[Tuple[str, int]] = None
            for src, dst in zip(cycle, cycle[1:]):
                witness, path, line = analysis.edges[src][dst]
                hops.append(f"{src} -> {dst} (in {witness})")
                if anchor is None:
                    anchor = (path, line)
            findings.append(Finding(
                path=anchor[0], line=anchor[1], col=1, rule=self.rule_id,
                message=("potential deadlock: lock-order cycle "
                         + "; ".join(hops))))
        seen: Set[Tuple[str, str, str]] = set()
        for path, line, lock, qualname in analysis.self_deadlocks:
            key = (path, lock, qualname)
            if key in seen:
                continue
            seen.add(key)
            findings.append(Finding(
                path=path, line=line, col=1, rule=self.rule_id,
                message=(f"self-deadlock: '{qualname}' can acquire "
                         f"non-reentrant lock '{lock}' while already "
                         f"holding it")))
        return sorted(findings)


class BlockingUnderLockRule(Rule):
    """Blocking operations performed while holding a lock."""

    rule_id = "blocking-under-lock"
    description = ("no fsync/sleep/file/socket I/O or Future.result()/wait() "
                   "while a lock is held, directly or through callees")

    def check_project(self, project: Project) -> Iterable[Finding]:
        analysis = get_lock_analysis(project)
        findings: Set[Finding] = set()
        for key in sorted(analysis.summaries):
            summary = analysis.summaries[key]
            if summary.entry_locks is None:
                continue  # bare '# repro: locked': holders unknown, stay quiet
            entry = summary.entry_locks
            for site in summary.blocking:
                held = sorted(site.held | entry)
                if held:
                    findings.add(Finding(
                        path=summary.info.path, line=site.line, col=1,
                        rule=self.rule_id,
                        message=(f"blocking call {site.desc} in "
                                 f"'{summary.info.qualname}' while holding "
                                 f"{', '.join(held)}")))
            for call in summary.calls:
                held = sorted(call.held | entry)
                if not held:
                    continue
                callee = analysis.summaries.get(call.callee_key)
                if callee is None or callee.annotated:
                    continue  # annotated helpers report at their definition
                if analysis.blocks.get(call.callee_key, False):
                    findings.add(Finding(
                        path=summary.info.path, line=call.line, col=1,
                        rule=self.rule_id,
                        message=(f"call to '{callee.info.qualname}' (performs "
                                 f"blocking I/O) in '{summary.info.qualname}' "
                                 f"while holding {', '.join(held)}")))
        return sorted(findings)


class SharedStateDriftRule(Rule):
    """DEFAULT_SHARED_STATE drift: undeclared-but-locked and stale entries."""

    rule_id = "shared-state-drift"
    description = ("DEFAULT_SHARED_STATE must declare attributes that are "
                   "consistently mutated under a lock and must not name "
                   "classes/attributes that no longer exist")

    #: The module that owns the map — drift is reported against it, and the
    #: whole rule stays quiet when it is not part of the analyzed tree (a
    #: partial tree proves nothing about staleness).
    anchor_suffix = "repro/analysis/lock_discipline.py"

    def __init__(self, shared_state: Optional[Mapping[str, Dict[str, Dict[str, str]]]] = None,
                 require_anchor: bool = True):
        self.shared_state = dict(shared_state if shared_state is not None
                                 else DEFAULT_SHARED_STATE)
        self.require_anchor = require_anchor

    def check_project(self, project: Project) -> Iterable[Finding]:
        anchor = project.find(self.anchor_suffix)
        if self.require_anchor and anchor is None:
            return ()
        analysis = get_lock_analysis(project)
        findings: List[Finding] = []
        findings.extend(self._undeclared(analysis))
        findings.extend(self._stale(analysis, anchor))
        return sorted(findings)

    # -- inference: consistently-locked but undeclared ------------------ #
    def _undeclared(self, analysis: LockAnalysis) -> List[Finding]:
        writes: Dict[Tuple[str, str, str], List[AttrWrite]] = {}
        for key in sorted(analysis.summaries):
            summary = analysis.summaries[key]
            info = summary.info
            if info.class_name is None or _exempt_path(info.path):
                continue
            entry = summary.entry_locks or frozenset()
            for write in summary.attr_writes:
                if write.construction or "lock" in write.attr.lower():
                    continue
                effective = AttrWrite(attr=write.attr,
                                      held=frozenset(write.held | entry),
                                      line=write.line,
                                      construction=False)
                writes.setdefault((info.path, info.class_name, write.attr),
                                  []).append(effective)
        findings = []
        for (path, class_name, attr) in sorted(writes):
            if self._declared(path, class_name, attr):
                continue
            sites = writes[(path, class_name, attr)]
            common = frozenset.intersection(*[site.held for site in sites])
            candidates = sorted(
                lock.split(".", 1)[1] for lock in common
                if lock.split(".", 1)[0] == class_name)
            if not candidates:
                continue
            lock_attr = candidates[0]
            findings.append(Finding(
                path=path, line=min(site.line for site in sites), col=1,
                rule=self.rule_id,
                message=(f"'{class_name}.{attr}' is always mutated under "
                         f"'with self.{lock_attr}:' but is not declared in "
                         f"DEFAULT_SHARED_STATE (add \"{attr}\": "
                         f"\"{lock_attr}\")")))
        return findings

    def _declared(self, path: str, class_name: str, attr: str) -> bool:
        for suffix, classes in self.shared_state.items():
            if path.endswith(suffix):
                return attr in classes.get(class_name, {})
        return False

    # -- staleness: declared entries with no referent ------------------- #
    def _stale(self, analysis: LockAnalysis,
               anchor: Optional[Module]) -> List[Finding]:
        anchor_path = anchor.path if anchor is not None else \
            self.anchor_suffix
        anchor_line = self._map_line(anchor)
        findings = []
        for suffix in sorted(self.shared_state):
            module = analysis.project.find(suffix)
            if module is None:
                findings.append(Finding(
                    path=anchor_path, line=anchor_line, col=1,
                    rule=self.rule_id,
                    message=(f"stale DEFAULT_SHARED_STATE entry: no module "
                             f"matches '{suffix}'")))
                continue
            for class_name in sorted(self.shared_state[suffix]):
                cls = self._class_in(analysis, module.path, class_name)
                if cls is None:
                    findings.append(Finding(
                        path=anchor_path, line=anchor_line, col=1,
                        rule=self.rule_id,
                        message=(f"stale DEFAULT_SHARED_STATE entry: class "
                                 f"'{class_name}' not found in {suffix}")))
                    continue
                for attr in sorted(self.shared_state[suffix][class_name]):
                    if attr not in cls.assigned_attrs:
                        findings.append(Finding(
                            path=anchor_path, line=anchor_line, col=1,
                            rule=self.rule_id,
                            message=(f"stale DEFAULT_SHARED_STATE entry: "
                                     f"'{class_name}.{attr}' is never "
                                     f"assigned in {suffix}")))
        return findings

    @staticmethod
    def _class_in(analysis: LockAnalysis, path: str, class_name: str):
        for cls in analysis.graph.classes.get(class_name, []):
            if cls.path == path:
                return cls
        return None

    @staticmethod
    def _map_line(anchor: Optional[Module]) -> int:
        if anchor is None:
            return 1
        for node in anchor.tree.body:
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name) and \
                            target.id == "DEFAULT_SHARED_STATE":
                        return node.lineno
        return 1


def _exempt_path(path: str) -> bool:
    return any(part in path for part in
               ("tests/", "benchmarks/", "examples/", "docs/"))
