"""A repo-wide call graph the project rules can query via :class:`Project`.

The lock-order analysis (:mod:`repro.analysis.lock_order`) needs to know,
for every ``with self._lock:`` block, *which functions the guarded calls can
reach* — an interprocedural question the per-module rules cannot answer.
This module builds that graph once per analysis run and caches it on the
:class:`~repro.analysis.core.Project`:

* every class and function in the analyzed tree is indexed under a stable
  qualified name (``path::Class.method`` / ``path::function``);
* ``self.method(...)`` calls resolve through the defining class and its
  bases (``SlowScoringHead -> ScoringHead -> Head``);
* ``self.attr.method(...)`` calls resolve through a deliberately *shallow*
  type inference: direct constructor assignments (``self._wal =
  WriteAheadLog(...)``), parameter annotations (``injector:
  Optional[FaultInjector]``), return annotations (``def _build_store(...)
  -> Union[UserSequenceStore, ShardedUserSequenceStore]``) and container
  value types (``self._shards: Dict[Hashable, UserSequenceStore]`` makes
  ``self._shards[k].snapshot()`` resolve);
* bare ``function(...)`` calls resolve to same-module functions first, then
  to a unique intra-package definition (``read_wal``, ``atomic_write_text``);
* attribute reads that land on an ``@property`` count as calls — a property
  that takes a lock is an acquisition site like any other.

The graph is *seeded* (for reachability queries) by the runtime's natural
entry points: ``main`` functions of the CLI modules and the ``parse`` /
``execute`` methods of every registered :class:`Head` subclass.  Resolution
is best-effort and unambiguous-only: a call that could mean two different
functions resolves to both targets; a call the index cannot place resolves
to none.  Soundness for the lock rules comes from the explicit
``# repro: lock-edge[...]`` escape hatch, not from pretending the inference
is complete.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from repro.analysis.core import Module, Project, attribute_on, dotted_name

#: Cache key under which the built graph is stashed on the Project.
_CACHE_KEY = "callgraph"

#: Container heads whose subscript / ``.pop`` / ``.get`` yields the declared
#: value type (``Dict[K, V]`` -> ``V``, ``List[T]`` / ``Optional[T]`` -> ``T``).
_CONTAINER_HEADS = frozenset({"Dict", "dict", "List", "list", "Mapping",
                              "MutableMapping", "DefaultDict", "OrderedDict"})
_WRAPPER_HEADS = frozenset({"Optional", "Union"})

#: ``self._shards.pop(k)`` / ``.get(k)`` / ``self._shards[k]`` produce values.
_VALUE_PRODUCING_METHODS = frozenset({"pop", "get", "setdefault"})


@dataclass
class FunctionInfo:
    """One function or method definition, as the graph resolves calls to it."""

    path: str                 # module path (repo-relative, POSIX)
    qualname: str             # 'Class.method' or 'function'
    name: str                 # bare name
    class_name: Optional[str]
    node: ast.AST             # FunctionDef | AsyncFunctionDef
    module: Module
    is_property: bool = False

    @property
    def key(self) -> str:
        """Stable identity: ``path::qualname``."""
        return f"{self.path}::{self.qualname}"


@dataclass
class ClassInfo:
    """One class definition plus everything inferred about its attributes."""

    name: str
    path: str
    node: ast.ClassDef
    module: Module
    base_names: List[str] = field(default_factory=list)
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: ``self.attr`` -> set of class names the attribute may hold.
    attr_types: Dict[str, Set[str]] = field(default_factory=dict)
    #: ``self.attr`` -> 'Lock' | 'RLock' for threading lock constructors.
    lock_attrs: Dict[str, str] = field(default_factory=dict)
    #: Attributes ever assigned anywhere in the class body (staleness checks).
    assigned_attrs: Set[str] = field(default_factory=set)


@dataclass(frozen=True)
class CallSite:
    """One resolved call: where it happens and what it reaches."""

    callee: "FunctionInfo"
    line: int


class CallGraph:
    """Class/function index plus resolved call edges for one project."""

    def __init__(self, project: Project):
        self.project = project
        self.classes: Dict[str, List[ClassInfo]] = {}
        self.functions: Dict[str, FunctionInfo] = {}          # key -> info
        self.module_functions: Dict[str, Dict[str, FunctionInfo]] = {}
        self._callees: Dict[str, List[CallSite]] = {}
        self._index()
        self._infer_attr_types()
        for info in self.functions.values():
            self._callees[info.key] = self._resolve_calls(info)

    # ------------------------------------------------------------------ #
    # Public queries
    # ------------------------------------------------------------------ #
    def callees(self, info: FunctionInfo) -> List[CallSite]:
        """Every resolved call out of ``info``, in source order."""
        return self._callees.get(info.key, [])

    def lookup_class(self, name: str) -> Optional[ClassInfo]:
        """The unique class called ``name``, if exactly one exists."""
        candidates = self.classes.get(name, [])
        return candidates[0] if len(candidates) == 1 else None

    def resolve_method(self, class_name: str,
                       method: str) -> Optional[FunctionInfo]:
        """``Class.method`` through the MRO of same-named indexed classes."""
        seen: Set[str] = set()
        queue = [class_name]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            info = self.lookup_class(current)
            if info is None:
                continue
            if method in info.methods:
                return info.methods[method]
            queue.extend(info.base_names)
        return None

    def entry_points(self) -> List[FunctionInfo]:
        """The graph's seeds: CLI ``main`` functions and head protocol hooks.

        Every registered head reaches the runtime through ``parse`` /
        ``execute``; every command line reaches it through ``main``.
        """
        seeds: List[FunctionInfo] = []
        head_classes = self._subclasses_of("Head")
        for info in sorted(self.functions.values(), key=lambda f: f.key):
            if info.class_name is None and info.name == "main":
                seeds.append(info)
            elif info.class_name in head_classes and \
                    info.name in ("parse", "execute"):
                seeds.append(info)
        return seeds

    def reachable(self, roots: Iterable[FunctionInfo]) -> Set[str]:
        """Keys of every function reachable from ``roots`` (inclusive)."""
        seen: Set[str] = set()
        queue = [root.key for root in roots]
        while queue:
            key = queue.pop()
            if key in seen:
                continue
            seen.add(key)
            for site in self._callees.get(key, []):
                queue.append(site.callee.key)
        return seen

    def _subclasses_of(self, root: str) -> Set[str]:
        names = {root}
        changed = True
        while changed:
            changed = False
            for name, infos in self.classes.items():
                for info in infos:
                    if name not in names and names & set(info.base_names):
                        names.add(name)
                        changed = True
        return names

    # ------------------------------------------------------------------ #
    # Indexing
    # ------------------------------------------------------------------ #
    def _index(self) -> None:
        for module in self.project.modules:
            self.module_functions[module.path] = {}
            for node in module.tree.body:
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    info = FunctionInfo(path=module.path, qualname=node.name,
                                        name=node.name, class_name=None,
                                        node=node, module=module)
                    self.functions[info.key] = info
                    self.module_functions[module.path][node.name] = info
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ClassDef):
                    self._index_class(module, node)

    def _index_class(self, module: Module, node: ast.ClassDef) -> None:
        info = ClassInfo(name=node.name, path=module.path, node=node,
                         module=module)
        for base in node.bases:
            name = dotted_name(base)
            if name is not None:
                info.base_names.append(name.split(".")[-1])
        for item in node.body:
            # Class-level declarations (dataclass fields) are attributes too.
            if isinstance(item, ast.AnnAssign) and \
                    isinstance(item.target, ast.Name):
                info.assigned_attrs.add(item.target.id)
                info.attr_types.setdefault(item.target.id, set()).update(
                    _annotation_types(item.annotation, container_values=True))
            elif isinstance(item, ast.Assign):
                for target in item.targets:
                    if isinstance(target, ast.Name):
                        info.assigned_attrs.add(target.id)
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                method = FunctionInfo(
                    path=module.path, qualname=f"{node.name}.{item.name}",
                    name=item.name, class_name=node.name, node=item,
                    module=module, is_property=_is_property(item))
                info.methods[item.name] = method
                self.functions[method.key] = method
        self.classes.setdefault(node.name, []).append(info)

    # ------------------------------------------------------------------ #
    # Shallow attribute-type inference
    # ------------------------------------------------------------------ #
    def _infer_attr_types(self) -> None:
        for infos in self.classes.values():
            for cls in infos:
                for method in cls.methods.values():
                    params = _param_annotations(method.node)
                    for stmt in ast.walk(method.node):
                        self._record_attr_assign(cls, stmt, params)

    def _record_attr_assign(self, cls: ClassInfo, stmt: ast.AST,
                            params: Dict[str, Set[str]]) -> None:
        targets: List[ast.AST] = []
        value: Optional[ast.AST] = None
        annotation: Optional[ast.AST] = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            targets, value, annotation = [stmt.target], stmt.value, \
                stmt.annotation
        elif isinstance(stmt, ast.AugAssign):
            targets = [stmt.target]
        else:
            return
        for target in targets:
            if isinstance(target, (ast.Subscript, ast.Starred)):
                target = target.value  # self.attr[k] = v assigns *into* attr
                if attribute_on(target, "self") is not None:
                    cls.assigned_attrs.add(attribute_on(target, "self"))
                continue
            attr = attribute_on(target, "self")
            if attr is None:
                continue
            cls.assigned_attrs.add(attr)
            if annotation is not None:
                cls.attr_types.setdefault(attr, set()).update(
                    _annotation_types(annotation, container_values=True))
            if value is not None:
                lock_kind = _lock_constructor(value)
                if lock_kind is not None:
                    cls.lock_attrs[attr] = lock_kind
                    continue
                inferred = self._expression_types(cls, value, params, {})
                if inferred:
                    cls.attr_types.setdefault(attr, set()).update(inferred)

    def _expression_types(self, cls: ClassInfo, node: ast.AST,
                          params: Dict[str, Set[str]],
                          local_types: Dict[str, Set[str]]) -> Set[str]:
        """Class names ``node`` may evaluate to (shallow, unambiguous-only)."""
        if isinstance(node, ast.IfExp):
            return (self._expression_types(cls, node.body, params, local_types)
                    | self._expression_types(cls, node.orelse, params,
                                             local_types))
        if isinstance(node, ast.Name):
            if node.id in local_types:
                return set(local_types[node.id])
            if node.id in params:
                return set(params[node.id])
            return self._global_var_types(node.id)
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name is not None:
                bare = name.split(".")[-1]
                if bare in self.classes:
                    return {bare}
            # self._method(...) with a return annotation
            method_name = _self_method_call(node)
            if method_name is not None:
                target = self.resolve_method(cls.name, method_name)
                returns = getattr(target.node, "returns", None) \
                    if target is not None else None
                if returns is not None:
                    return _annotation_types(returns)
            # self._shards.pop(k) and friends produce the container value type
            if isinstance(node.func, ast.Attribute) and \
                    node.func.attr in _VALUE_PRODUCING_METHODS:
                return self._receiver_value_types(cls, node.func.value,
                                                 params, local_types)
            return set()
        if isinstance(node, ast.Attribute):
            attr = attribute_on(node, "self")
            if attr is not None:
                return set(cls.attr_types.get(attr, ()))
            return set()
        if isinstance(node, ast.Subscript):
            return self._receiver_value_types(cls, node.value, params,
                                              local_types)
        return set()

    def _receiver_value_types(self, cls: ClassInfo, receiver: ast.AST,
                              params: Dict[str, Set[str]],
                              local_types: Dict[str, Set[str]]) -> Set[str]:
        """Value types of an annotated container, for ``recv[k]`` / ``.pop``."""
        attr = attribute_on(receiver, "self")
        if attr is not None:
            return set(cls.attr_types.get(attr, ()))
        return set()

    def _global_var_types(self, name: str) -> Set[str]:
        """Types of module-level ``NAME = ClassName(...)`` singletons."""
        found: Set[str] = set()
        for module in self.project.modules:
            for node in module.tree.body:
                if isinstance(node, ast.Assign) and node.value is not None:
                    for target in node.targets:
                        if isinstance(target, ast.Name) and target.id == name:
                            if isinstance(node.value, ast.Call):
                                callee = dotted_name(node.value.func)
                                if callee is not None and \
                                        callee.split(".")[-1] in self.classes:
                                    found.add(callee.split(".")[-1])
        return found

    # ------------------------------------------------------------------ #
    # Call resolution
    # ------------------------------------------------------------------ #
    def _resolve_calls(self, info: FunctionInfo) -> List[CallSite]:
        cls = self.lookup_class(info.class_name) if info.class_name else None
        params = _param_annotations(info.node)
        local_types = self._local_types(info, cls, params)
        sites: List[CallSite] = []
        for node in ast.walk(info.node):
            if isinstance(node, ast.Call):
                for target in self._call_targets(info, cls, node, params,
                                                 local_types):
                    sites.append(CallSite(callee=target, line=node.lineno))
            elif isinstance(node, ast.Attribute) and cls is not None:
                # property reads: self.attr.prop where prop is an @property
                for target in self._property_targets(cls, node, params,
                                                     local_types):
                    sites.append(CallSite(callee=target, line=node.lineno))
        sites.sort(key=lambda site: (site.line, site.callee.key))
        return sites

    def _local_types(self, info: FunctionInfo, cls: Optional[ClassInfo],
                     params: Dict[str, Set[str]]) -> Dict[str, Set[str]]:
        """Types of local variables assigned from inferable expressions."""
        local_types: Dict[str, Set[str]] = {}
        owner = cls if cls is not None else _DETACHED_CLASS
        for stmt in ast.walk(info.node):
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 and \
                    isinstance(stmt.targets[0], ast.Name):
                inferred = self._expression_types(owner, stmt.value, params,
                                                 local_types)
                if inferred:
                    local_types.setdefault(stmt.targets[0].id,
                                           set()).update(inferred)
            elif isinstance(stmt, ast.AnnAssign) and \
                    isinstance(stmt.target, ast.Name):
                inferred = _annotation_types(stmt.annotation,
                                             container_values=True)
                if inferred:
                    local_types.setdefault(stmt.target.id,
                                           set()).update(inferred)
        return local_types

    def _call_targets(self, info: FunctionInfo, cls: Optional[ClassInfo],
                      node: ast.Call, params: Dict[str, Set[str]],
                      local_types: Dict[str, Set[str]]) -> List[FunctionInfo]:
        func = node.func
        targets: List[FunctionInfo] = []
        # self.method(...)
        if cls is not None:
            method = _self_method_call(node)
            if method is not None:
                resolved = self.resolve_method(cls.name, method)
                return [resolved] if resolved is not None else []
        if isinstance(func, ast.Attribute):
            # <receiver>.method(...): resolve through the receiver's types
            receiver_types = self._receiver_types(cls, func.value, params,
                                                  local_types)
            for type_name in sorted(receiver_types):
                resolved = self.resolve_method(type_name, func.attr)
                if resolved is not None:
                    targets.append(resolved)
            # ClassName.method(...) direct
            if not targets and isinstance(func.value, ast.Name) and \
                    func.value.id in self.classes:
                resolved = self.resolve_method(func.value.id, func.attr)
                if resolved is not None:
                    targets.append(resolved)
            return targets
        if isinstance(func, ast.Name):
            # ClassName(...) constructs: route to __init__
            if func.id in self.classes:
                resolved = self.resolve_method(func.id, "__init__")
                return [resolved] if resolved is not None else []
            # function(...): same module first, then unique across the tree
            same_module = self.module_functions.get(info.path, {})
            if func.id in same_module:
                return [same_module[func.id]]
            matches = [candidates[func.id]
                       for candidates in self.module_functions.values()
                       if func.id in candidates]
            if len(matches) == 1:
                return matches
        return targets

    def _receiver_types(self, cls: Optional[ClassInfo], receiver: ast.AST,
                        params: Dict[str, Set[str]],
                        local_types: Dict[str, Set[str]]) -> Set[str]:
        owner = cls if cls is not None else _DETACHED_CLASS
        return self._expression_types(owner, receiver, params, local_types)

    def _property_targets(self, cls: ClassInfo, node: ast.Attribute,
                          params: Dict[str, Set[str]],
                          local_types: Dict[str, Set[str]]
                          ) -> List[FunctionInfo]:
        receiver_types = self._receiver_types(cls, node.value, params,
                                              local_types)
        targets = []
        for type_name in sorted(receiver_types):
            resolved = self.resolve_method(type_name, node.attr)
            if resolved is not None and resolved.is_property:
                targets.append(resolved)
        return targets


#: Receiver-type lookups for module-level functions have no owning class.
_DETACHED_CLASS = ClassInfo(name="<module>", path="", node=None, module=None)


def get_callgraph(project: Project) -> CallGraph:
    """The project's call graph, built once and cached on the project."""
    return project.cache(_CACHE_KEY, CallGraph)


# --------------------------------------------------------------------------- #
# AST helpers
# --------------------------------------------------------------------------- #
def _is_property(node: ast.AST) -> bool:
    for decorator in getattr(node, "decorator_list", []):
        name = dotted_name(decorator)
        if name in ("property", "functools.cached_property", "cached_property"):
            return True
    return False


def _lock_constructor(node: ast.AST) -> Optional[str]:
    """'Lock' / 'RLock' for ``threading.Lock()`` / ``threading.RLock()``."""
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        if name in ("threading.Lock", "Lock"):
            return "Lock"
        if name in ("threading.RLock", "RLock"):
            return "RLock"
    return None


def _self_method_call(node: ast.Call) -> Optional[str]:
    """The method name for ``self.method(...)`` calls."""
    if isinstance(node.func, ast.Attribute):
        if isinstance(node.func.value, ast.Name) and \
                node.func.value.id == "self":
            return node.func.attr
    return None


def _param_annotations(node: ast.AST) -> Dict[str, Set[str]]:
    """Parameter name -> annotated class names, ``self`` excluded."""
    params: Dict[str, Set[str]] = {}
    args = getattr(node, "args", None)
    if args is None:
        return params
    for arg in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
        if arg.annotation is not None and arg.arg != "self":
            types = _annotation_types(arg.annotation)
            if types:
                params[arg.arg] = types
    return params


def _annotation_types(node: ast.AST, container_values: bool = False) -> Set[str]:
    """Class names an annotation can denote.

    ``Optional[X]`` / ``Union[X, Y]`` unwrap to their members; with
    ``container_values`` set, ``Dict[K, V]`` contributes ``V`` (the type a
    subscript or ``.pop`` yields) and ``List[T]`` contributes ``T``.
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return set()
    if isinstance(node, (ast.Name, ast.Attribute)):
        name = dotted_name(node)
        if name is None:
            return set()
        bare = name.split(".")[-1]
        return set() if bare in ("None", "Any") else {bare}
    if isinstance(node, ast.Subscript):
        head = dotted_name(node.value)
        head = head.split(".")[-1] if head else ""
        elements = node.slice.elts if isinstance(node.slice, ast.Tuple) \
            else [node.slice]
        if head in _WRAPPER_HEADS:
            found: Set[str] = set()
            for element in elements:
                found |= _annotation_types(element, container_values)
            return found
        if container_values and head in _CONTAINER_HEADS:
            return _annotation_types(elements[-1], container_values=False)
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        return (_annotation_types(node.left, container_values)
                | _annotation_types(node.right, container_values))
    return set()
