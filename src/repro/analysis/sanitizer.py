"""The runtime lock sanitizer: observed acquisition edges vs the static graph.

The static ``lock-order`` rule (:mod:`repro.analysis.lock_order`) proves the
*declared* world acyclic; this module checks the *actual* one.  It is the
TSan/lockdep idiom scaled to this repo: an opt-in instrumented lock wrapper
that

* records, per thread, the order in which locks are acquired — every
  acquisition while another lock is held contributes an observed
  ``held-top -> acquired`` edge keyed by the locks' *source identities*
  (``UserSequenceStore._lock``, inferred at creation time from the frame
  that called ``threading.Lock()``);
* asserts acyclicity **online**: an acquisition that would close a cycle in
  the observed graph raises :class:`LockOrderViolation` immediately, with
  the full path — the test that triggered it fails on the spot, not in a
  post-mortem;
* dumps the observed graph (:meth:`LockSanitizer.dump`) so the
  ``make sanitize`` run leaves an artifact, and exposes it to the
  cross-validation test that asserts observed ⊆ static — the check that
  keeps the annotations honest in *both* directions (an undeclared runtime
  edge fails the subset test; a declared-but-impossible edge is visible as
  dead weight in the static graph).

Only edges between *adjacent* stack entries are recorded — exactly what a
thread's acquisition order proves — so the observed graph is comparable
against the static graph's held → acquired edges without transitive closure.
Re-acquiring a lock already on the thread's stack (reentrant ``RLock`` use)
records nothing.

Installation is opt-in, never ambient: ``REPRO_LOCK_SANITIZER=1`` makes the
session-scoped pytest fixture (``tests/conftest.py``) monkeypatch
``threading.Lock`` / ``threading.RLock`` for the whole run — ``make
sanitize`` wires this around the concurrency, chaos and durability suites.
Locks created outside the repo's own source tree (pytest internals,
``concurrent.futures`` plumbing, test-local helpers) pass through
uninstrumented; unit tests build instrumented locks directly with
:meth:`LockSanitizer.named_lock`.
"""

from __future__ import annotations

import json
import linecache
import os
import re
import sys
import threading
from pathlib import Path
from typing import Dict, List, Optional, Tuple

#: Environment flag the pytest fixture keys installation off.
ENV_FLAG = "REPRO_LOCK_SANITIZER"

#: Only locks created from files whose path contains this fragment are
#: instrumented: the repo's own runtime, not pytest/stdlib internals.
_DEFAULT_PATH_FRAGMENT = "/repro/"

#: ``self._lock = threading.Lock()`` — the attribute the lock lands on.
_ATTR_PATTERN = re.compile(r"self\.(\w*lock\w*)\s*[:=]", re.IGNORECASE)
#: ``write_lock = threading.Lock()`` — a function-local lock variable.
_VAR_PATTERN = re.compile(r"(\w*lock\w*)\s*=", re.IGNORECASE)


class LockOrderViolation(AssertionError):
    """An acquisition closed a cycle in the observed lock-order graph."""


class _SanitizedLock:
    """A lock wrapper that reports acquisitions/releases to the sanitizer."""

    __slots__ = ("_real", "name", "_sanitizer")

    def __init__(self, real, name: str, sanitizer: "LockSanitizer"):
        self._real = real
        self.name = name
        self._sanitizer = sanitizer

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        got = self._real.acquire(blocking, timeout)
        if got:
            try:
                self._sanitizer._on_acquire(self)
            except LockOrderViolation:
                # Surface the inversion without wedging the lock for
                # whatever code (test teardown, other threads) runs next.
                self._real.release()
                raise
        return got

    def release(self) -> None:
        self._sanitizer._on_release(self)
        self._real.release()

    def locked(self) -> bool:
        return self._real.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<sanitized {self.name!r} wrapping {self._real!r}>"


class LockSanitizer:
    """Observed per-thread lock acquisition edges, checked online."""

    def __init__(self, path_fragment: str = _DEFAULT_PATH_FRAGMENT):
        self.path_fragment = path_fragment
        self._guard = _REAL_LOCK()
        self._tls = threading.local()
        #: (src, dst) -> acquisition count.
        self._edges: Dict[Tuple[str, str], int] = {}
        self._real_lock = _REAL_LOCK
        self._real_rlock = _REAL_RLOCK
        self._installed = False

    # ------------------------------------------------------------------ #
    # Lock construction
    # ------------------------------------------------------------------ #
    def named_lock(self, name: str, kind: str = "Lock") -> _SanitizedLock:
        """An instrumented lock with an explicit identity (for unit tests)."""
        real = self._real_rlock() if kind == "RLock" else self._real_lock()
        return _SanitizedLock(real, name, self)

    def _factory(self, kind: str):
        def make_lock():
            real = self._real_rlock() if kind == "RLock" \
                else self._real_lock()
            name = self._name_from_caller(sys._getframe(1))
            if name is None:
                return real
            return _SanitizedLock(real, name, self)
        make_lock.__name__ = kind
        return make_lock

    def _name_from_caller(self, frame) -> Optional[str]:
        """``Class.attr`` / ``function.var`` from the creating statement."""
        code = frame.f_code
        filename = code.co_filename.replace(os.sep, "/")
        if self.path_fragment not in filename or \
                filename.endswith("repro/analysis/sanitizer.py"):
            return None
        qualname = getattr(code, "co_qualname", None)
        if qualname is not None:
            owner = qualname.split(".")[0] if "." not in qualname \
                else qualname.rsplit(".", 1)[0].split(".")[-1]
        else:  # Python 3.10: derive the class from the bound self, if any
            self_object = frame.f_locals.get("self")
            owner = type(self_object).__name__ if self_object is not None \
                else code.co_name
        line = linecache.getline(code.co_filename, frame.f_lineno)
        attr_match = _ATTR_PATTERN.search(line)
        if attr_match:
            return f"{owner}.{attr_match.group(1)}"
        var_match = _VAR_PATTERN.search(line)
        if var_match:
            return f"{code.co_name}.{var_match.group(1)}"
        return None

    # ------------------------------------------------------------------ #
    # Acquisition tracking
    # ------------------------------------------------------------------ #
    def _stack(self) -> List[Tuple[int, str]]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = []
            self._tls.stack = stack
        return stack

    def _on_acquire(self, lock: _SanitizedLock) -> None:
        stack = self._stack()
        reentrant = any(ident == id(lock) for ident, _ in stack)
        if stack and not reentrant:
            top_name = stack[-1][1]
            if top_name != lock.name:
                self._record_edge(top_name, lock.name)
        stack.append((id(lock), lock.name))

    def _on_release(self, lock: _SanitizedLock) -> None:
        stack = self._stack()
        for index in range(len(stack) - 1, -1, -1):
            if stack[index][0] == id(lock):
                del stack[index]
                return

    def _record_edge(self, src: str, dst: str) -> None:
        with self._guard:
            known = (src, dst) in self._edges
            self._edges[(src, dst)] = self._edges.get((src, dst), 0) + 1
            if known:
                return
            cycle = self._find_cycle(dst, src)
        if cycle is not None:
            raise LockOrderViolation(
                "lock-order inversion: acquiring "
                f"'{dst}' while holding '{src}' closes the cycle "
                + " -> ".join([src, dst] + cycle[1:]))

    def _find_cycle(self, start: str, target: str) -> Optional[List[str]]:
        """A path ``start -> ... -> target`` in the observed graph, if any."""
        parents: Dict[str, str] = {}
        queue = [start]
        seen = {start}
        while queue:
            node = queue.pop(0)
            for (src, dst) in self._edges:
                if src != node or dst in seen:
                    continue
                parents[dst] = node
                if dst == target:
                    path = [dst]
                    while path[-1] != start:
                        path.append(parents[path[-1]])
                    return list(reversed(path))
                seen.add(dst)
                queue.append(dst)
        return None

    # ------------------------------------------------------------------ #
    # Results
    # ------------------------------------------------------------------ #
    def observed_edges(self) -> List[Tuple[str, str]]:
        """Every distinct (held, acquired) pair seen so far, sorted."""
        with self._guard:
            return sorted(self._edges)

    def to_dict(self) -> dict:
        with self._guard:
            return {
                "edges": [{"src": src, "dst": dst, "count": count}
                          for (src, dst), count in sorted(self._edges.items())],
            }

    def dump(self, path: Path) -> None:
        """Write the observed graph as JSON (the ``make sanitize`` artifact)."""
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True)
                        + "\n", encoding="utf-8")

    # ------------------------------------------------------------------ #
    # Monkeypatch installation
    # ------------------------------------------------------------------ #
    def install(self) -> "LockSanitizer":
        """Route ``threading.Lock`` / ``threading.RLock`` through the wrapper."""
        if self._installed:
            return self
        threading.Lock = self._factory("Lock")
        threading.RLock = self._factory("RLock")
        self._installed = True
        return self

    def uninstall(self) -> None:
        if self._installed:
            threading.Lock = self._real_lock
            threading.RLock = self._real_rlock
            self._installed = False


#: The genuine factories, captured at import time (before any patching).
_REAL_LOCK = threading.Lock
_REAL_RLOCK = threading.RLock

_ACTIVE: Optional[LockSanitizer] = None


def enabled_from_env() -> bool:
    """Whether ``REPRO_LOCK_SANITIZER`` asks for an instrumented run."""
    return os.environ.get(ENV_FLAG, "") == "1"


def install_sanitizer() -> LockSanitizer:
    """Install (once) and return the process-wide sanitizer."""
    global _ACTIVE
    if _ACTIVE is None:
        _ACTIVE = LockSanitizer()
    return _ACTIVE.install()


def uninstall_sanitizer() -> Optional[LockSanitizer]:
    """Restore the real factories; returns the sanitizer for inspection."""
    if _ACTIVE is not None:
        _ACTIVE.uninstall()
    return _ACTIVE


def active_sanitizer() -> Optional[LockSanitizer]:
    """The installed sanitizer, if :func:`install_sanitizer` ran."""
    return _ACTIVE
