"""numerics-hygiene: no float-literal equality, no unseeded global RNG in src/.

Two classes of numerical foot-gun this repo has no excuse for, given that its
whole purpose is *reproducing* a paper:

* **float-literal equality** — ``x == 0.3`` is almost never the predicate
  the author meant once ``x`` has been through a BLAS call; comparisons
  against float literals should be inequalities or tolerance checks
  (``math.isclose`` / ``np.isclose``).  Exact zero-checks that are genuinely
  intended (sentinel values) take an inline
  ``# repro: allow[numerics-hygiene]``.
* **unseeded randomness** — the legacy global-state API
  (``np.random.rand``, ``np.random.seed``, ...) is process-global and
  unseedable per call site, and ``np.random.default_rng()`` /
  ``np.random.RandomState()`` without a seed produce different streams on
  every run.  Every RNG in ``src/`` must be an explicitly seeded
  ``Generator`` so experiments, index builds and synthetic traffic replay
  identically.

Tests, benchmarks and examples are exempt — exercising an API with
throwaway randomness there is fine; the reproduction path is not allowed to.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Sequence

from repro.analysis.core import Finding, Module, Rule, dotted_name

#: Path fragments whose modules this rule skips entirely.
DEFAULT_EXEMPT_PARTS = ("tests/", "benchmarks/", "examples/", "docs/")

#: Legacy global-RNG entry points: process-global state, no local seeding.
LEGACY_GLOBAL_RNG = frozenset({
    "beta", "binomial", "bytes", "choice", "exponential", "gamma",
    "geometric", "normal", "permutation", "poisson", "rand", "randint",
    "randn", "random", "random_sample", "ranf", "sample", "seed", "shuffle",
    "standard_normal", "uniform",
})

#: Constructors that are fine *with* a seed argument, flagged without one.
SEEDABLE_CONSTRUCTORS = frozenset({"default_rng", "RandomState"})


class NumericsHygieneRule(Rule):
    """Flag float-literal equality and unseeded NumPy randomness."""

    rule_id = "numerics-hygiene"
    description = ("no equality against float literals and no unseeded "
                   "np.random use outside tests/benchmarks/examples")

    def __init__(self, exempt_parts: Sequence[str] = DEFAULT_EXEMPT_PARTS):
        self.exempt_parts = tuple(exempt_parts)

    def check_module(self, module: Module) -> Iterable[Finding]:
        if any(part in module.path for part in self.exempt_parts):
            return ()
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Compare):
                self._check_compare(module, node, findings)
            elif isinstance(node, ast.Call):
                self._check_random(module, node, findings)
        return findings

    def _check_compare(self, module: Module, node: ast.Compare,
                       findings: List[Finding]) -> None:
        operands = [node.left] + list(node.comparators)
        for operator, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(operator, (ast.Eq, ast.NotEq)):
                continue
            for operand in (left, right):
                if isinstance(operand, ast.Constant) \
                        and isinstance(operand.value, float):
                    symbol = "==" if isinstance(operator, ast.Eq) else "!="
                    findings.append(self._finding(
                        module, node,
                        f"floating-point equality '{symbol} {operand.value!r}'"
                        " — compare with a tolerance or an inequality"))
                    break

    def _check_random(self, module: Module, node: ast.Call,
                      findings: List[Finding]) -> None:
        name = dotted_name(node.func)
        if name is None:
            return
        parts = name.split(".")
        # np.random.X(...) / numpy.random.X(...)
        if len(parts) == 3 and parts[0] in ("np", "numpy") \
                and parts[1] == "random":
            attr = parts[2]
            if attr in LEGACY_GLOBAL_RNG:
                findings.append(self._finding(
                    module, node,
                    f"call to the process-global RNG 'np.random.{attr}()' — "
                    "use an explicitly seeded np.random.default_rng(seed)"))
            elif attr in SEEDABLE_CONSTRUCTORS and not node.args \
                    and not node.keywords:
                findings.append(self._finding(
                    module, node,
                    f"unseeded 'np.random.{attr}()' — pass an explicit seed "
                    "so runs reproduce"))
        # from numpy.random import default_rng; default_rng()
        elif len(parts) == 1 and parts[0] in SEEDABLE_CONSTRUCTORS \
                and not node.args and not node.keywords:
            findings.append(self._finding(
                module, node,
                f"unseeded '{parts[0]}()' — pass an explicit seed so runs "
                "reproduce"))

    def _finding(self, module: Module, node: ast.AST, message: str) -> Finding:
        return Finding(path=module.path, line=node.lineno,
                       col=node.col_offset + 1, rule=self.rule_id,
                       message=message)
