"""The ``python -m repro.analysis`` command-line front-end.

Exit codes follow the usual linter contract::

    0  no findings (clean, or everything baselined/suppressed)
    1  findings
    2  usage error (unknown rule, missing path, unreadable baseline)

``--format github`` renders findings as GitHub workflow annotations so the
CI ``lint`` job surfaces them inline on the PR diff; ``--write-baseline``
(re)generates the grandfather file from the current tree.  Output ordering
is deterministic — findings sort by (path, line, col, rule) — so two runs
over the same tree are byte-identical on any platform.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis import (
    analyze,
    default_rules,
    load_baseline,
    render_baseline,
)

USAGE_ERROR = 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Run the repo-invariant static analyzer.",
    )
    parser.add_argument("paths", nargs="*", type=Path, default=None,
                        help="files or directories to analyze (default: src)")
    parser.add_argument("--format", dest="output_format", default="text",
                        choices=("text", "github"),
                        help="finding format: human text or GitHub workflow "
                             "annotations (default: text)")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="committed baseline file of grandfathered "
                             "finding keys (default: none)")
    parser.add_argument("--write-baseline", type=Path, default=None,
                        metavar="PATH",
                        help="write the current findings as a new baseline "
                             "to PATH and exit 0")
    parser.add_argument("--select", default=None, metavar="RULES",
                        help="comma-separated rule ids to run "
                             "(default: all)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="parse files with N parallel workers; output is "
                             "byte-identical to a serial run (default: 1)")
    parser.add_argument("--root", type=Path, default=None,
                        help="repository root findings are reported relative "
                             "to (default: current directory)")
    parser.add_argument("--list-rules", action="store_true",
                        help="list registered rules and exit")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    rules = default_rules()

    if args.list_rules:
        for rule in rules:
            print(f"{rule.rule_id}: {rule.description}")
        return 0

    if args.select is not None:
        known = {rule.rule_id: rule for rule in rules}
        selected: List = []
        for rule_id in (part.strip() for part in args.select.split(",")):
            if rule_id not in known:
                print(f"error: unknown rule {rule_id!r}; expected one of "
                      f"{sorted(known)}", file=sys.stderr)
                return USAGE_ERROR
            selected.append(known[rule_id])
        rules = selected

    paths = args.paths if args.paths else [Path("src")]
    for path in paths:
        if not path.exists():
            print(f"error: no such path: {path}", file=sys.stderr)
            return USAGE_ERROR

    baseline: List[str] = []
    if args.baseline is not None:
        try:
            baseline = load_baseline(args.baseline)
        except OSError as error:
            print(f"error: cannot read baseline {args.baseline}: {error}",
                  file=sys.stderr)
            return USAGE_ERROR

    if args.jobs < 1:
        print(f"error: --jobs must be >= 1, got {args.jobs}", file=sys.stderr)
        return USAGE_ERROR

    report = analyze(paths, rules, root=args.root, baseline=baseline,
                     jobs=args.jobs)

    if args.write_baseline is not None:
        grandfathered = sorted(report.findings + report.baselined)
        args.write_baseline.write_text(render_baseline(grandfathered),
                                       encoding="utf-8")
        print(f"wrote {len(grandfathered)} finding(s) to "
              f"{args.write_baseline}")
        return 0

    for finding in report.findings:
        print(finding.render() if args.output_format == "text"
              else finding.render_github())

    summary = [f"{len(report.findings)} finding(s)"]
    if report.baselined:
        summary.append(f"{len(report.baselined)} baselined")
    if report.suppressed:
        summary.append(f"{len(report.suppressed)} suppressed inline")
    print("repro.analysis: " + ", ".join(summary), file=sys.stderr)
    for stale in report.stale_baseline:
        print(f"repro.analysis: stale baseline entry (debt paid — delete "
              f"it): {stale}", file=sys.stderr)
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
