"""lock-discipline: shared state may only be mutated while its lock is held.

The concurrent serving runtime (PR 6) is correct because every mutation of
cross-thread state happens inside ``with self.<lock>:`` — a property the
stress tests sample but cannot prove for the *next* edit.  This rule makes it
syntactic: a per-module map declares which attributes of which classes are
shared and which lock guards each one; any write (``self.attr = ...``,
``self.attr += ...``, ``self.attr[k] = ...``, ``del self.attr``) or mutating
method call (``self.attr.append(...)``, ``.pop()``, ``.clear()``, ...) on a
declared attribute outside the guarding ``with`` block is a finding.

Three escape hatches, all visible in the code under review:

* ``__init__`` / ``__post_init__`` / ``__new__`` are exempt — construction
  happens before the object is published to other threads;
* a method whose ``def`` line (or the line above it) carries
  ``# repro: locked[<lock>]`` asserts its callers hold ``<lock>`` — the
  documented contract for internal helpers like
  :meth:`repro.serving.cache.UserSequenceStore._peek`;
* the generic ``# repro: allow[lock-discipline]`` suppression.

Nested functions defined inside a method start with *no* held locks: a
closure may run on another thread long after the enclosing ``with`` exited,
so lexically inheriting the lock would be unsound.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional

from repro.analysis.core import Finding, Module, Rule, attribute_on

#: Methods that mutate their receiver — calling one on a shared attribute is
#: a write for the purposes of this rule.
MUTATING_METHODS = frozenset({
    "add", "append", "appendleft", "clear", "discard", "extend", "insert",
    "move_to_end", "pop", "popitem", "popleft", "put", "remove", "restore",
    "reverse", "setdefault", "sort", "update",
})

#: Methods that run before the object is visible to any other thread.
CONSTRUCTION_METHODS = frozenset({"__init__", "__post_init__", "__new__"})

#: ``# repro: locked`` / ``# repro: locked[_lock]`` — the caller-holds-the-
#: lock annotation for helpers that are only ever invoked under the lock.
_LOCKED_COMMENT = re.compile(r"#\s*repro:\s*locked(?:\[([\w, ]+)\])?")


def annotated_locks(module: Module,
                    method: ast.AST) -> Optional[FrozenSet[str]]:
    """Locks a ``# repro: locked`` annotation asserts the method's callers hold.

    ``None`` means a bare annotation (all locks); an empty set means no
    annotation at all.  The comment may sit on the ``def`` line, the line
    above it, or — for decorated methods, whose ``def`` is pushed down —
    the line above the topmost decorator.
    """
    lines = module.source.splitlines()
    candidates = [method.lineno, method.lineno - 1]
    decorators = getattr(method, "decorator_list", [])
    if decorators:
        candidates.append(decorators[0].lineno - 1)
    for line_number in candidates:
        if 1 <= line_number <= len(lines):
            match = _LOCKED_COMMENT.search(lines[line_number - 1])
            if match:
                if match.group(1) is None:
                    return None
                return frozenset(part.strip()
                                 for part in match.group(1).split(","))
    return frozenset()

#: The repo's shared-state map: module suffix → class → attribute → lock.
#: Seeded from the concurrency-bearing modules of :mod:`repro.serving`; new
#: shared attributes (and new modules) are declared here as the runtime grows.
DEFAULT_SHARED_STATE: Dict[str, Dict[str, Dict[str, str]]] = {
    "repro/serving/cache.py": {
        "UserSequenceStore": {
            "_cache": "_lock",
            "_hits": "_lock",
            "_misses": "_lock",
            "_expired": "_lock",
            "_journal": "_lock",
            "_sealed": "_lock",
        },
        "ShardedUserSequenceStore": {
            "_shards": "_lock",
            "_ring": "_lock",
            "_journal": "_lock",
        },
    },
    "repro/serving/concurrent.py": {
        "ConcurrentServingRouter": {
            "_pending": "_pending_lock",
            "_idle": "_idle_lock",
            "_process_pool": "_idle_lock",
            "_groups": "_groups_lock",
            "_quarantine": "_quarantine_lock",
            "_pool_restarts": "_idle_lock",
        },
        "_Pending": {
            "_claimed": "_lock",
        },
        "HealthMonitor": {
            "_events": "_lock",
        },
    },
    "repro/serving/service.py": {
        "ServeSummary": {
            "rows": "_lock",
            "lines": "_lock",
            "errors": "_lock",
            "error_codes": "_lock",
        },
    },
    "repro/serving/durability.py": {
        "WriteAheadLog": {
            "_last_seq": "_lock",
            "_synced_seq": "_lock",
            "_appends": "_lock",
            "_fsyncs": "_lock",
            "_pending": "_lock",
            "_file": "_lock",
            "_broken": "_lock",
        },
        "DurableSequenceStore": {
            "_snapshot_seq": "_checkpoint_lock",
        },
    },
    "repro/serving/faults.py": {
        "FaultInjector": {
            "_specs": "_lock",
        },
    },
    "repro/online/log_reader.py": {
        "InteractionLogReader": {
            # The persisted cursor: read by tail(), advanced by the promotion
            # pipeline — possibly from another thread than the serve loop.
            "_cursor": "_lock",
        },
    },
}


class LockDisciplineRule(Rule):
    """Flag writes to declared shared attributes outside their lock."""

    rule_id = "lock-discipline"
    description = ("shared attributes (per-module map) may only be mutated "
                   "inside 'with self.<lock>:' or a '# repro: locked' method")

    def __init__(self, shared_state: Optional[Mapping[str, Dict[str, Dict[str, str]]]] = None):
        self.shared_state = dict(shared_state if shared_state is not None
                                 else DEFAULT_SHARED_STATE)

    def check_module(self, module: Module) -> Iterable[Finding]:
        for suffix, classes in self.shared_state.items():
            if module.matches(suffix):
                return self._check_classes(module, classes)
        return ()

    def _check_classes(self, module: Module,
                       classes: Dict[str, Dict[str, str]]) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef) and node.name in classes:
                guarded = classes[node.name]
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        self._check_method(module, node.name, guarded, item,
                                           findings)
        return findings

    def _check_method(self, module: Module, class_name: str,
                      guarded: Dict[str, str],
                      method: ast.FunctionDef, findings: List[Finding]) -> None:
        if method.name in CONSTRUCTION_METHODS:
            return
        held = self._annotated_locks(module, method)
        if held is None:  # bare '# repro: locked' — every lock held
            return
        for statement in method.body:
            self._visit(module, class_name, guarded, statement, held, findings)

    def _annotated_locks(self, module: Module,
                         method: ast.FunctionDef) -> Optional[FrozenSet[str]]:
        """Locks the method's ``# repro: locked`` annotation asserts are held."""
        return annotated_locks(module, method)

    # ------------------------------------------------------------------ #
    # Lexical walk, tracking which 'with self.<lock>:' blocks enclose us
    # ------------------------------------------------------------------ #
    def _visit(self, module: Module, class_name: str, guarded: Dict[str, str],
               node: ast.AST, held: FrozenSet[str],
               findings: List[Finding]) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            # A nested function may outlive the enclosing 'with': no lock is
            # lexically inherited (its own annotation may re-assert one).
            inner = self._annotated_locks(module, node) \
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) else frozenset()
            if inner is None:
                return
            body = node.body if not isinstance(node, ast.Lambda) else [node.body]
            for child in body:
                self._visit(module, class_name, guarded, child, inner, findings)
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired = set(held)
            for item in node.items:
                lock = attribute_on(item.context_expr, "self")
                if lock is not None:
                    acquired.add(lock)
            for child in node.body:
                self._visit(module, class_name, guarded, child,
                            frozenset(acquired), findings)
            # context expressions themselves execute before the lock is held
            for item in node.items:
                self._scan_expression(module, class_name, guarded,
                                      item.context_expr, held, findings)
            return

        self._check_statement(module, class_name, guarded, node, held, findings)
        for child in ast.iter_child_nodes(node):
            self._visit(module, class_name, guarded, child, held, findings)

    def _check_statement(self, module: Module, class_name: str,
                         guarded: Dict[str, str], node: ast.AST,
                         held: FrozenSet[str], findings: List[Finding]) -> None:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                self._check_target(module, class_name, guarded, target, held,
                                   findings)
        elif isinstance(node, ast.AugAssign) or (
                isinstance(node, ast.AnnAssign) and node.value is not None):
            self._check_target(module, class_name, guarded, node.target, held,
                               findings)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                self._check_target(module, class_name, guarded, target, held,
                                   findings)
        elif isinstance(node, ast.Call):
            self._check_call(module, class_name, guarded, node, held, findings)

    def _check_target(self, module: Module, class_name: str,
                      guarded: Dict[str, str], target: ast.AST,
                      held: FrozenSet[str], findings: List[Finding]) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._check_target(module, class_name, guarded, element, held,
                                   findings)
            return
        if isinstance(target, (ast.Subscript, ast.Starred)):
            self._check_target(module, class_name, guarded, target.value, held,
                               findings)
            return
        attr = attribute_on(target, "self")
        if attr is not None and attr in guarded and guarded[attr] not in held:
            findings.append(self._finding(
                module, target,
                f"write to shared '{class_name}.{attr}' outside "
                f"'with self.{guarded[attr]}:'"))

    def _check_call(self, module: Module, class_name: str,
                    guarded: Dict[str, str], node: ast.Call,
                    held: FrozenSet[str], findings: List[Finding]) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute) or func.attr not in MUTATING_METHODS:
            return
        attr = attribute_on(func.value, "self")
        if attr is not None and attr in guarded and guarded[attr] not in held:
            findings.append(self._finding(
                module, node,
                f"mutating call self.{attr}.{func.attr}() on shared "
                f"'{class_name}.{attr}' outside 'with self.{guarded[attr]}:'"))

    def _scan_expression(self, module: Module, class_name: str,
                         guarded: Dict[str, str], node: ast.AST,
                         held: FrozenSet[str], findings: List[Finding]) -> None:
        for child in ast.walk(node):
            if isinstance(child, ast.Call):
                self._check_call(module, class_name, guarded, child, held,
                                 findings)

    def _finding(self, module: Module, node: ast.AST, message: str) -> Finding:
        return Finding(path=module.path, line=node.lineno,
                       col=node.col_offset + 1, rule=self.rule_id,
                       message=message)
