"""kernel-purity: the NumPy kernels stay vectorised and side-effect free.

:mod:`repro.nn.kernels` is the hot path of both serving and training — every
score the engine produces flows through it, and the performance story of the
whole repo (batched serving, fused training, the ranking fast path) rests on
those functions being pure vectorised NumPy.  Three properties make a kernel
a kernel, and this rule enforces each syntactically:

* **no Python loops over data** — ``for``/``while`` in a kernel runs the
  interpreter per element instead of BLAS per array.  The deliberate
  exceptions (block sweeps that iterate ``O(rows / block_size)`` times to
  bound scratch memory, not per-element) carry an inline
  ``# repro: allow[kernel-purity]`` where reviewers can see and challenge
  them.
* **no assignment into parameters** — kernels never mutate caller arrays:
  no ``param[...] = ...`` stores, no ``param += ...`` in-place updates, no
  ``param.sort()``-style mutating calls.  Rebinding the *name* to a fresh
  array (``scores = np.asarray(scores)``) is fine and idiomatic — once a
  parameter name is rebound the rule stops treating it as caller-owned.
* **reductions route through NumPy** — ``sum(x)`` / ``min(x)`` / ``max(x)``
  over an array is an interpreter loop in disguise; ``np.sum``/``.sum()``
  keep it vectorised.  The two-argument scalar forms (``min(k, n)``) are
  not reductions and stay legal.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Sequence, Set

from repro.analysis.core import Finding, Module, Rule, call_name

#: Modules whose top-level functions must be pure vectorised kernels.
DEFAULT_KERNEL_MODULES = ("repro/nn/kernels.py",)

#: ndarray methods that mutate the receiver in place.
MUTATING_ARRAY_METHODS = frozenset({
    "fill", "itemset", "partition", "put", "resize", "setfield", "setflags",
    "sort",
})

#: Builtins whose one-argument form is a Python-level reduction over data.
PYTHON_REDUCTIONS = frozenset({"sum", "min", "max"})


class KernelPurityRule(Rule):
    """Flag interpreter loops, caller-array mutation and Python reductions."""

    rule_id = "kernel-purity"
    description = ("kernel modules may not loop over data in Python, assign "
                   "into parameters, or reduce through builtins")

    def __init__(self, kernel_modules: Sequence[str] = DEFAULT_KERNEL_MODULES):
        self.kernel_modules = tuple(kernel_modules)

    def check_module(self, module: Module) -> Iterable[Finding]:
        if not any(module.matches(suffix) for suffix in self.kernel_modules):
            return ()
        findings: List[Finding] = []
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._check_kernel(module, node, findings)
        return findings

    def _check_kernel(self, module: Module, function: ast.FunctionDef,
                      findings: List[Finding]) -> None:
        arguments = function.args
        parameters = {arg.arg for arg in (
            arguments.posonlyargs + arguments.args + arguments.kwonlyargs)}
        rebound = self._rebound_names(function)
        caller_owned = parameters - rebound
        for node in ast.walk(function):
            if isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
                kind = "while" if isinstance(node, ast.While) else "for"
                findings.append(self._finding(
                    module, node,
                    f"Python '{kind}' loop in kernel '{function.name}' — "
                    "vectorise through NumPy"))
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    self._check_store(module, function, target, caller_owned,
                                      findings)
            elif isinstance(node, ast.AugAssign):
                self._check_augmented(module, function, node, caller_owned,
                                      findings)
            elif isinstance(node, ast.Call):
                self._check_call(module, function, node, caller_owned, findings)

    def _rebound_names(self, function: ast.FunctionDef) -> Set[str]:
        """Parameter names rebound to fresh objects inside the kernel."""
        rebound = set()
        for node in ast.walk(function):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        rebound.add(target.id)
        return rebound

    def _check_store(self, module: Module, function: ast.FunctionDef,
                     target: ast.AST, caller_owned: Set[str],
                     findings: List[Finding]) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._check_store(module, function, element, caller_owned,
                                  findings)
            return
        if isinstance(target, ast.Subscript) and \
                isinstance(target.value, ast.Name) and \
                target.value.id in caller_owned:
            findings.append(self._finding(
                module, target,
                f"kernel '{function.name}' assigns into parameter "
                f"'{target.value.id}' — kernels must not mutate caller arrays"))

    def _check_augmented(self, module: Module, function: ast.FunctionDef,
                         node: ast.AugAssign, caller_owned: Set[str],
                         findings: List[Finding]) -> None:
        target = node.target
        name = None
        if isinstance(target, ast.Name):
            name = target.id
        elif isinstance(target, ast.Subscript) and isinstance(target.value, ast.Name):
            name = target.value.id
        if name in caller_owned:
            findings.append(self._finding(
                module, node,
                f"kernel '{function.name}' updates parameter '{name}' in "
                "place — kernels must not mutate caller arrays"))

    def _check_call(self, module: Module, function: ast.FunctionDef,
                    node: ast.Call, caller_owned: Set[str],
                    findings: List[Finding]) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and \
                func.attr in MUTATING_ARRAY_METHODS and \
                isinstance(func.value, ast.Name) and \
                func.value.id in caller_owned:
            findings.append(self._finding(
                module, node,
                f"kernel '{function.name}' calls mutating "
                f"'{func.value.id}.{func.attr}()' on a parameter — kernels "
                "must not mutate caller arrays"))
            return
        name = call_name(node)
        if name in PYTHON_REDUCTIONS and len(node.args) == 1 and not node.keywords:
            findings.append(self._finding(
                module, node,
                f"kernel '{function.name}' reduces through builtin "
                f"'{name}()' — route reductions through NumPy"))

    def _finding(self, module: Module, node: ast.AST, message: str) -> Finding:
        return Finding(path=module.path, line=node.lineno,
                       col=node.col_offset + 1, rule=self.rule_id,
                       message=message)
