"""The static-analysis framework: findings, rules, suppressions, baselines.

pytest can only *sample* the invariants the serving runtime and the kernels
live by — a lock left off one new ``self._pending`` write, a Python loop
snuck into a kernel, a head registered without a CLI route are all bugs a
test suite catches only if someone thought to write that exact test.  This
package enforces those invariants *syntactically*, on every line of every
file, before any test runs.

The moving parts:

* :class:`Finding` — one diagnostic, pinned to ``file:line:col`` with a
  stable rule id and a line-number-free :meth:`Finding.key` (the identity
  the baseline matches on, so findings survive unrelated edits).
* :class:`Rule` — one invariant.  Per-module rules implement
  :meth:`Rule.check_module`; whole-repo rules (protocol completeness needs
  the registry, the heads *and* the CLI at once) implement
  :meth:`Rule.check_project`.
* **Suppressions** — a ``# repro: allow[rule-id]`` comment on the offending
  line (or the line above it) silences one finding, in the code, where a
  reviewer can see it.
* **Baseline** — :func:`load_baseline` reads a committed file of finding
  keys (``#`` comments carry the justifications); matching findings are
  reported as grandfathered instead of failing the run, so the analyzer can
  be adopted without rewriting history while still failing on anything new.

:func:`analyze` wires it together and returns a deterministic
:class:`AnalysisReport` — findings sorted by (path, line, col, rule), so the
output and any baseline diff are stable across platforms and dict orders.
Files that do not parse become ``syntax-error`` findings, never a crash.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Rule id the framework itself emits for files `ast.parse` rejects.
SYNTAX_ERROR_RULE = "syntax-error"

#: Inline suppression: ``# repro: allow[rule-a]`` or ``allow[rule-a,rule-b]``.
_ALLOW_COMMENT = re.compile(r"#\s*repro:\s*allow\[([\w\-, ]+)\]")

#: Separator between the key fields of a baseline entry.
KEY_SEPARATOR = " :: "


@dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic: where it is, which invariant it breaks, and why.

    Ordering is (path, line, col, rule, message) — exactly the deterministic
    report order.  ``message`` must not embed line numbers: together with
    ``path`` and ``rule`` it forms the baseline identity (:meth:`key`),
    which has to survive unrelated edits shifting the file around.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str

    def key(self) -> str:
        """The line-number-free identity a baseline entry matches on."""
        return KEY_SEPARATOR.join((self.path, self.rule, self.message))

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"

    def render_github(self) -> str:
        """A GitHub workflow annotation, shown inline on the PR diff."""
        return (f"::error file={self.path},line={self.line},col={self.col},"
                f"title={self.rule}::{self.message}")


@dataclass
class Module:
    """One parsed source file as the rules see it."""

    path: str  # repository-relative, POSIX separators
    source: str
    tree: ast.Module

    def matches(self, suffix: str) -> bool:
        """Whether this module is the file a path-scoped rule configures."""
        return self.path.endswith(suffix)

    def allowed_rules(self, line: int) -> frozenset:
        """Rule ids suppressed at ``line`` (same line or the line above)."""
        allowed = set()
        lines = self.source.splitlines()
        for candidate in (line, line - 1):
            if 1 <= candidate <= len(lines):
                match = _ALLOW_COMMENT.search(lines[candidate - 1])
                if match:
                    allowed.update(part.strip()
                                   for part in match.group(1).split(","))
        return frozenset(allowed)


@dataclass
class Project:
    """Every module of one analysis run, for whole-repo rules."""

    modules: List[Module] = field(default_factory=list)
    #: Expensive derived structures (the call graph, the lock graph) built
    #: once per run and shared by every rule that asks for them.
    _caches: Dict[str, object] = field(default_factory=dict, repr=False,
                                       compare=False)

    def find(self, suffix: str) -> Optional[Module]:
        """The unique module whose path ends with ``suffix``, if present."""
        matches = [module for module in self.modules if module.matches(suffix)]
        return matches[0] if len(matches) == 1 else None

    def cache(self, key: str, build):
        """``build(self)`` memoized under ``key`` for this project's lifetime.

        Project rules share derived structures through this: the first rule
        to ask pays for the build, later rules (and later queries from the
        same rule) reuse it.
        """
        if key not in self._caches:
            self._caches[key] = build(self)
        return self._caches[key]


class Rule:
    """One enforced invariant.  Subclasses implement either check method."""

    #: Stable identifier: the ``# repro: allow[...]`` / baseline / CLI name.
    rule_id: str = ""
    #: One operator-facing line, shown by ``--list-rules``.
    description: str = ""

    def check_module(self, module: Module) -> Iterable[Finding]:
        """Findings local to one file (most rules)."""
        return ()

    def check_project(self, project: Project) -> Iterable[Finding]:
        """Findings needing the whole repo at once (cross-file invariants)."""
        return ()


@dataclass
class AnalysisReport:
    """What one analysis run concluded, deterministically ordered.

    ``findings`` fail the run; ``baselined`` matched a committed baseline
    entry and are grandfathered; ``suppressed`` carried an inline allow
    comment; ``stale_baseline`` entries matched nothing (the debt they
    tracked was paid — they should be deleted from the baseline file).
    """

    findings: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    stale_baseline: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings


def parse_module(path: Path, root: Path) -> Tuple[Optional[Module], Optional[Finding]]:
    """Parse one file; a syntax error becomes a finding, never an exception."""
    relative = _relative_posix(path, root)
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as error:
        return None, Finding(path=relative, line=1, col=1,
                             rule=SYNTAX_ERROR_RULE,
                             message=f"file could not be read: {error}")
    try:
        tree = ast.parse(source)
    except SyntaxError as error:
        return None, Finding(
            path=relative,
            line=error.lineno or 1,
            col=(error.offset or 1),
            rule=SYNTAX_ERROR_RULE,
            message=f"file does not parse: {error.msg}",
        )
    return Module(path=relative, source=source, tree=tree), None


def _relative_posix(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def collect_files(paths: Sequence[Path]) -> List[Path]:
    """Every ``.py`` file under ``paths`` (files kept, directories walked)."""
    files: List[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(candidate for candidate in path.rglob("*.py")
                                if "__pycache__" not in candidate.parts))
        else:
            files.append(path)
    unique: Dict[str, Path] = {str(path.resolve()): path for path in files}
    return [unique[key] for key in sorted(unique)]


def load_baseline(path: Path) -> List[str]:
    """Finding keys grandfathered by a committed baseline file.

    One key per line; blank lines and ``#`` comments (the justifications —
    every grandfathered finding should carry one) are ignored.  Entries are
    a multiset: a key listed once forgives one finding.
    """
    entries = []
    for raw_line in path.read_text(encoding="utf-8").splitlines():
        line = raw_line.strip()
        if line and not line.startswith("#"):
            entries.append(line)
    return entries


def render_baseline(findings: Sequence[Finding]) -> str:
    """The baseline file content grandfathering exactly ``findings``."""
    lines = [
        "# repro.analysis baseline — grandfathered findings.",
        "# One finding key per line ('path :: rule :: message').  Annotate every",
        "# entry with WHY it is safe; delete entries once the debt is paid",
        "# (stale entries are reported on every run).",
    ]
    for finding in sorted(findings):
        lines.append(f"# ({finding.rule}) at {finding.path}:{finding.line}")
        lines.append(finding.key())
    return "\n".join(lines) + "\n"


def analyze(
    paths: Sequence[Path],
    rules: Sequence[Rule],
    root: Optional[Path] = None,
    baseline: Sequence[str] = (),
    jobs: int = 1,
) -> AnalysisReport:
    """Run ``rules`` over every Python file under ``paths``.

    Findings are bucketed into failing / baselined / suppressed and sorted
    by (path, line, col, rule) so two runs over the same tree — any
    platform, any filesystem order — render byte-identical reports.

    ``jobs`` parallelizes the read-and-parse phase only; results are
    collected in file order, so the report is byte-identical to a serial
    run at any worker count.  Rules always run serially: they are cheap
    relative to parsing and several share mutable project-level caches.
    """
    root = root if root is not None else Path.cwd()
    project = Project()
    raw_findings: List[Finding] = []
    files = collect_files(paths)
    if jobs > 1 and len(files) > 1:
        from concurrent.futures import ThreadPoolExecutor
        with ThreadPoolExecutor(max_workers=jobs) as pool:
            parsed = list(pool.map(lambda path: parse_module(path, root),
                                   files))
    else:
        parsed = [parse_module(path, root) for path in files]
    for module, failure in parsed:
        if failure is not None:
            raw_findings.append(failure)
        if module is not None:
            project.modules.append(module)

    modules_by_path = {module.path: module for module in project.modules}
    for rule in rules:
        for module in project.modules:
            raw_findings.extend(rule.check_module(module))
        raw_findings.extend(rule.check_project(project))

    report = AnalysisReport()
    remaining = list(baseline)
    for finding in sorted(raw_findings):
        module = modules_by_path.get(finding.path)
        if module is not None and finding.rule in module.allowed_rules(finding.line):
            report.suppressed.append(finding)
        elif finding.key() in remaining:
            remaining.remove(finding.key())
            report.baselined.append(finding)
        else:
            report.findings.append(finding)
    report.stale_baseline = remaining
    return report


# --------------------------------------------------------------------------- #
# Shared AST helpers for the rules
# --------------------------------------------------------------------------- #
def attribute_on(node: ast.AST, base: str) -> Optional[str]:
    """The attribute name if ``node`` is ``<base>.<attr>``, else ``None``."""
    if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name) \
            and node.value.id == base:
        return node.attr
    return None


def call_name(node: ast.Call) -> Optional[str]:
    """The called name for ``name(...)`` calls, else ``None``."""
    return node.func.id if isinstance(node.func, ast.Name) else None


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` as a string for pure attribute chains, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None
