"""protocol-completeness: heads, error codes and CLI routes stay mutually complete.

The PR-5 protocol layer is three registries that must agree: the
:class:`~repro.serving.protocol.Head` subclasses, the
:class:`~repro.serving.protocol.HeadRegistry` they are registered in, and
the CLI surface that routes traffic to them — plus the ``ERROR_CODES`` tuple
that every structured error must come from.  Each is trivially easy to
extend and trivially easy to extend *incompletely*: a new head that parses
and executes but is unreachable from the CLI, an ``ERR_*`` constant raised
but never added to the stable-code contract.  Nothing crashes; clients just
meet a server that silently lacks the endpoint or emits an undocumented
code.

This whole-project rule closes the loop syntactically:

* every ``Head`` subclass that declares a wire ``name`` must appear in a
  ``HeadRegistry([...])`` construction or ``.register(...)`` call;
* every ``ERR_*`` constant defined in the protocol module must be a member
  of ``ERROR_CODES``, and every ``ProtocolError(...)`` /
  ``error_response(...)`` call site naming a code (by constant or by string
  literal) must name a member of ``ERROR_CODES``;
* every registered head name must be routable from the CLI — present in the
  ``head_choices`` tuples or the ``COMMAND_HEADS`` map of
  :mod:`repro.experiments.cli`.

Since PR 8 the same completeness contract covers the durability layer: the
write-ahead log's record vocabulary is the ``WAL_OPS`` tuple of
:mod:`repro.serving.durability`, and every journal emission site
(``_journal_op(...)`` / ``_journal_topology(...)`` with a literal op) must
name a member of it — an op outside the vocabulary would be written to disk
today and rejected by ``apply_journal`` at recovery, i.e. a crash that only
manifests after the crash it was meant to survive.

The online-learning layer (:mod:`repro.online`) carries the same pattern for
its declared status vocabularies: every literal ``status=`` at a
``ModelVersion(...)`` construction site must be a member of
``MANIFEST_STATUSES`` (:mod:`repro.online.promotion` — ``record()`` rejects
anything else at runtime, but only on the code path that runs), and every
literal ``status=`` at a ``RetrainReport(...)`` site must be a member of
``RETRAIN_STATUSES`` (:mod:`repro.online.retrain`), so a new retrain outcome
or manifest state cannot ship without being declared.

The rule needs the protocol module, the head definitions and the CLI in one
view, so it runs as a project rule; when the analyzed path set does not
include the protocol module (fixture runs, single-file invocations) it
reports nothing rather than guessing.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.core import Finding, Module, Project, Rule

#: Where the protocol (heads, registry, error codes) lives.
DEFAULT_PROTOCOL_MODULE = "repro/serving/protocol.py"

#: Where the CLI serving routes live.
DEFAULT_CLI_MODULE = "repro/experiments/cli.py"

#: Where the WAL record vocabulary (``WAL_OPS``) lives.
DEFAULT_DURABILITY_MODULE = "repro/serving/durability.py"

#: Journal-emission helpers whose literal first argument is a WAL op.
JOURNAL_EMITTERS = ("_journal_op", "_journal_put", "_journal_topology")

#: Variables in the CLI module whose string contents are serving routes.
ROUTE_VARIABLES = ("head_choices",)
ROUTE_DICTS = ("COMMAND_HEADS",)

#: Declared status vocabularies of the online-learning layer: for each,
#: (module that declares the tuple, tuple name, constructor names whose
#: literal ``status=`` keyword must be a member).
STATUS_VOCABULARIES = (
    ("repro/online/promotion.py", "MANIFEST_STATUSES", ("ModelVersion",)),
    ("repro/online/retrain.py", "RETRAIN_STATUSES", ("RetrainReport",)),
)


class _HeadClass:
    """One Head-derived class as found in the source."""

    def __init__(self, module: Module, node: ast.ClassDef,
                 wire_name: Optional[str]):
        self.module = module
        self.node = node
        self.wire_name = wire_name


class ProtocolCompletenessRule(Rule):
    """Cross-check heads ↔ registry ↔ error codes ↔ CLI routes."""

    rule_id = "protocol-completeness"
    description = ("every Head subclass is registered, every raised error "
                   "code is in ERROR_CODES, every registered head has a CLI "
                   "route")

    def __init__(self, protocol_module: str = DEFAULT_PROTOCOL_MODULE,
                 cli_module: str = DEFAULT_CLI_MODULE,
                 durability_module: str = DEFAULT_DURABILITY_MODULE):
        self.protocol_module = protocol_module
        self.cli_module = cli_module
        self.durability_module = durability_module

    def check_project(self, project: Project) -> Iterable[Finding]:
        protocol = project.find(self.protocol_module)
        if protocol is None:
            return ()
        findings: List[Finding] = []
        head_classes = self._head_classes(project)
        registered = self._registered_heads(project, head_classes)
        self._check_registration(head_classes, registered, findings)
        self._check_error_codes(project, protocol, findings)
        self._check_cli_routes(project, registered, findings)
        self._check_wal_ops(project, findings)
        self._check_status_vocabularies(project, findings)
        return findings

    # ------------------------------------------------------------------ #
    # Head subclasses and their registrations
    # ------------------------------------------------------------------ #
    def _head_classes(self, project: Project) -> Dict[str, _HeadClass]:
        """Every class transitively derived from ``Head``, by class name."""
        classes: Dict[str, Tuple[Module, ast.ClassDef, List[str]]] = {}
        for module in project.modules:
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ClassDef):
                    bases = []
                    for base in node.bases:
                        if isinstance(base, ast.Name):
                            bases.append(base.id)
                        elif isinstance(base, ast.Attribute):
                            bases.append(base.attr)
                    classes[node.name] = (module, node, bases)

        derived: Set[str] = {"Head"}
        changed = True
        while changed:
            changed = False
            for name, (_, _, bases) in classes.items():
                if name not in derived and any(base in derived for base in bases):
                    derived.add(name)
                    changed = True

        heads: Dict[str, _HeadClass] = {}
        for name in derived - {"Head"}:
            module, node, _ = classes[name]
            heads[name] = _HeadClass(module, node, self._class_wire_name(node))
        return heads

    @staticmethod
    def _class_wire_name(node: ast.ClassDef) -> Optional[str]:
        """The class-level ``name = "..."`` wire name, if declared non-empty."""
        for statement in node.body:
            if isinstance(statement, ast.Assign):
                for target in statement.targets:
                    if isinstance(target, ast.Name) and target.id == "name" \
                            and isinstance(statement.value, ast.Constant) \
                            and isinstance(statement.value.value, str) \
                            and statement.value.value:
                        return statement.value.value
            elif isinstance(statement, ast.AnnAssign) \
                    and isinstance(statement.target, ast.Name) \
                    and statement.target.id == "name" \
                    and isinstance(statement.value, ast.Constant) \
                    and isinstance(statement.value.value, str) \
                    and statement.value.value:
                return statement.value.value
        return None

    def _registered_heads(self, project: Project,
                          head_classes: Dict[str, _HeadClass]) -> Dict[str, Tuple[Module, ast.AST]]:
        """Wire names registered in any HeadRegistry, with their call sites."""
        registered: Dict[str, Tuple[Module, ast.AST]] = {}

        def record(expression: ast.AST, module: Module) -> None:
            if not isinstance(expression, ast.Call):
                return
            func = expression.func
            class_name = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else None)
            if class_name is None:
                return
            # name-parameterised heads take the wire name as first argument
            if expression.args and isinstance(expression.args[0], ast.Constant) \
                    and isinstance(expression.args[0].value, str):
                registered.setdefault(expression.args[0].value,
                                      (module, expression))
                return
            head = head_classes.get(class_name)
            if head is not None and head.wire_name is not None:
                registered.setdefault(head.wire_name, (module, expression))

        for module in project.modules:
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if isinstance(func, ast.Name) and func.id == "HeadRegistry":
                    for argument in node.args:
                        if isinstance(argument, (ast.List, ast.Tuple)):
                            for element in argument.elts:
                                record(element, module)
                elif isinstance(func, ast.Attribute) and func.attr == "register":
                    for argument in node.args:
                        record(argument, module)
        return registered

    def _check_registration(self, head_classes: Dict[str, _HeadClass],
                            registered: Dict[str, Tuple[Module, ast.AST]],
                            findings: List[Finding]) -> None:
        for class_name, head in sorted(head_classes.items()):
            if head.wire_name is None:  # abstract / name-parameterised base
                continue
            if head.wire_name not in registered:
                findings.append(Finding(
                    path=head.module.path, line=head.node.lineno,
                    col=head.node.col_offset + 1, rule=self.rule_id,
                    message=f"head class '{class_name}' (wire name "
                            f"'{head.wire_name}') is never registered in a "
                            "HeadRegistry"))

    # ------------------------------------------------------------------ #
    # Error codes
    # ------------------------------------------------------------------ #
    def _check_error_codes(self, project: Project, protocol: Module,
                           findings: List[Finding]) -> None:
        constants: Dict[str, str] = {}
        constant_nodes: Dict[str, ast.AST] = {}
        members: Set[str] = set()
        for node in protocol.tree.body:
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name):
                target = node.targets[0].id
                if target.startswith("ERR_") \
                        and isinstance(node.value, ast.Constant) \
                        and isinstance(node.value.value, str):
                    constants[target] = node.value.value
                    constant_nodes[target] = node
                elif target == "ERROR_CODES" \
                        and isinstance(node.value, (ast.Tuple, ast.List)):
                    for element in node.value.elts:
                        if isinstance(element, ast.Name):
                            members.add(element.id)
        if not members:
            return
        code_values = {constants[name] for name in members if name in constants}

        for name, node in sorted(constant_nodes.items()):
            if name not in members:
                findings.append(Finding(
                    path=protocol.path, line=node.lineno,
                    col=node.col_offset + 1, rule=self.rule_id,
                    message=f"error code constant '{name}' is missing from "
                            "ERROR_CODES"))

        for module in project.modules:
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call) or not node.args:
                    continue
                func = node.func
                callee = func.id if isinstance(func, ast.Name) else (
                    func.attr if isinstance(func, ast.Attribute) else None)
                if callee not in ("ProtocolError", "error_response"):
                    continue
                code = node.args[0]
                if isinstance(code, ast.Name) and code.id.startswith("ERR_"):
                    if code.id not in members:
                        findings.append(Finding(
                            path=module.path, line=node.lineno,
                            col=node.col_offset + 1, rule=self.rule_id,
                            message=f"{callee}() raises '{code.id}' which is "
                                    "not a member of ERROR_CODES"))
                elif isinstance(code, ast.Constant) and isinstance(code.value, str):
                    if code.value not in code_values:
                        findings.append(Finding(
                            path=module.path, line=node.lineno,
                            col=node.col_offset + 1, rule=self.rule_id,
                            message=f"{callee}() raises literal code "
                                    f"'{code.value}' which is not in "
                                    "ERROR_CODES"))

    # ------------------------------------------------------------------ #
    # CLI routes
    # ------------------------------------------------------------------ #
    def _check_cli_routes(self, project: Project,
                          registered: Dict[str, Tuple[Module, ast.AST]],
                          findings: List[Finding]) -> None:
        cli = project.find(self.cli_module)
        if cli is None:
            return
        routes: Set[str] = set()
        for node in ast.walk(cli.tree):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) \
                    else [node.target]
                for target in targets:
                    if not isinstance(target, ast.Name):
                        continue
                    if target.id in ROUTE_VARIABLES:
                        routes.update(self._string_constants(node.value))
                    elif target.id in ROUTE_DICTS \
                            and isinstance(node.value, ast.Dict):
                        for value in node.value.values:
                            routes.update(self._string_constants(value))
        if not routes:
            return
        for name, (module, node) in sorted(registered.items()):
            if name not in routes:
                findings.append(Finding(
                    path=module.path, line=node.lineno,
                    col=node.col_offset + 1, rule=self.rule_id,
                    message=f"registered head '{name}' has no CLI serving "
                            "route (head_choices / COMMAND_HEADS in "
                            f"{self.cli_module})"))

    @staticmethod
    def _string_constants(node: ast.AST) -> Iterable[str]:
        for child in ast.walk(node):
            if isinstance(child, ast.Constant) and isinstance(child.value, str):
                yield child.value

    # ------------------------------------------------------------------ #
    # WAL record vocabulary
    # ------------------------------------------------------------------ #
    def _check_wal_ops(self, project: Project,
                       findings: List[Finding]) -> None:
        """Every literal journal-emission op is a member of ``WAL_OPS``."""
        durability = project.find(self.durability_module)
        if durability is None:
            return
        wal_ops: Set[str] = set()
        for node in durability.tree.body:
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name) \
                    and node.targets[0].id == "WAL_OPS" \
                    and isinstance(node.value, (ast.Tuple, ast.List)):
                wal_ops.update(self._string_constants(node.value))
        if not wal_ops:
            return
        for module in project.modules:
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call) or not node.args:
                    continue
                func = node.func
                if not isinstance(func, ast.Attribute) \
                        or func.attr not in JOURNAL_EMITTERS:
                    continue
                op = node.args[0]
                if isinstance(op, ast.Constant) and isinstance(op.value, str) \
                        and op.value not in wal_ops:
                    findings.append(Finding(
                        path=module.path, line=node.lineno,
                        col=node.col_offset + 1, rule=self.rule_id,
                        message=f"{func.attr}() emits WAL op '{op.value}' "
                                "which is not in WAL_OPS "
                                f"({self.durability_module}); recovery would "
                                "reject the record"))

    # ------------------------------------------------------------------ #
    # Online-learning status vocabularies
    # ------------------------------------------------------------------ #
    def _check_status_vocabularies(self, project: Project,
                                   findings: List[Finding]) -> None:
        """Every literal ``status=`` at a declared constructor is a member
        of its module's status tuple (manifest / retrain vocabularies)."""
        for module_path, tuple_name, constructors in STATUS_VOCABULARIES:
            declaring = project.find(module_path)
            if declaring is None:
                continue
            vocabulary: Set[str] = set()
            for node in declaring.tree.body:
                if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                        and isinstance(node.targets[0], ast.Name) \
                        and node.targets[0].id == tuple_name \
                        and isinstance(node.value, (ast.Tuple, ast.List)):
                    vocabulary.update(self._string_constants(node.value))
            if not vocabulary:
                continue
            for module in project.modules:
                for node in ast.walk(module.tree):
                    if not isinstance(node, ast.Call):
                        continue
                    func = node.func
                    callee = func.id if isinstance(func, ast.Name) else (
                        func.attr if isinstance(func, ast.Attribute) else None)
                    if callee not in constructors:
                        continue
                    for keyword in node.keywords:
                        if keyword.arg != "status":
                            continue
                        value = keyword.value
                        if isinstance(value, ast.Constant) \
                                and isinstance(value.value, str) \
                                and value.value not in vocabulary:
                            findings.append(Finding(
                                path=module.path, line=node.lineno,
                                col=node.col_offset + 1, rule=self.rule_id,
                                message=f"{callee}() uses status "
                                        f"'{value.value}' which is not in "
                                        f"{tuple_name} ({module_path})"))
