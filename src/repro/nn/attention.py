"""Maskable single-head self-attention (Eq. 6-13 of the paper).

SeqFM uses three self-attention heads — static, dynamic and cross — that all
share the same computation: project the input feature matrix into query, key
and value subspaces with view-specific weight matrices, compute scaled dot
product scores, add an additive attention mask, softmax-normalise and take
the weighted sum of values.  This module implements exactly that computation
for a batch of views; the masks themselves are built by
:mod:`repro.core.masks`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.nn import init, kernels
from repro.nn.module import Module, Parameter


class SelfAttention(Module):
    """Single-head scaled dot-product self-attention with an optional mask.

    Parameters
    ----------
    dim:
        Latent dimension ``d``; queries, keys and values all live in R^d, as
        in the paper (W_Q, W_K, W_V ∈ R^{d×d}).
    """

    def __init__(self, dim: int, rng: Optional[np.random.Generator] = None):
        super().__init__()
        if dim <= 0:
            raise ValueError("attention dim must be positive")
        rng = rng if rng is not None else np.random.default_rng()
        self.dim = dim
        self.w_query = Parameter(init.xavier_uniform((dim, dim), rng), name="w_query")
        self.w_key = Parameter(init.xavier_uniform((dim, dim), rng), name="w_key")
        self.w_value = Parameter(init.xavier_uniform((dim, dim), rng), name="w_value")

    def forward(self, features: Tensor, mask: Optional[np.ndarray] = None) -> Tensor:
        """Apply self-attention to ``features`` of shape ``(..., n, d)``.

        ``mask`` is an additive attention mask broadcastable to the score
        matrix ``(..., n, n)``: 0 for allowed pairs, a large negative value
        for blocked pairs (the paper's −∞ entries).
        """
        queries = features @ self.w_query
        keys = features @ self.w_key
        values = features @ self.w_value
        return F.scaled_dot_product_attention(queries, keys, values, mask=mask)

    def attention_weights(self, features: Tensor, mask: Optional[np.ndarray] = None) -> np.ndarray:
        """Return the softmax attention weight matrix (for tests/inspection)."""
        queries = (features @ self.w_query).data
        keys = (features @ self.w_key).data
        return kernels.attention_weights(queries, keys, mask=mask)

    def __repr__(self) -> str:
        return f"SelfAttention(dim={self.dim})"
