"""Optimisers: mini-batch SGD and Adam.

The paper trains every model with the Adam optimiser (Section IV-D,
learning rate 1e-4 in the paper; the reproduction uses a slightly larger rate
because the scaled-down synthetic datasets need fewer steps to converge).
"""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from repro.nn.module import Parameter


class Optimizer:
    """Base optimiser: holds parameters, applies updates, clears gradients."""

    def __init__(self, parameters: Iterable[Parameter], lr: float):
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimiser received no parameters")
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr

    def zero_grad(self) -> None:
        for parameter in self.parameters:
            parameter.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        if weight_decay < 0:
            raise ValueError(f"weight_decay must be non-negative, got {weight_decay}")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for parameter, velocity in zip(self.parameters, self._velocity):
            if parameter.grad is None:
                continue
            gradient = parameter.grad
            if self.weight_decay:
                gradient = gradient + self.weight_decay * parameter.data
            if self.momentum:
                velocity *= self.momentum
                velocity += gradient
                update = velocity
            else:
                update = gradient
            parameter.data -= self.lr * update


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba, 2015) with bias-corrected moments."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters, lr)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError("betas must be in [0, 1)")
        if eps <= 0:
            raise ValueError(f"eps must be positive, got {eps}")
        if weight_decay < 0:
            raise ValueError(f"weight_decay must be non-negative, got {weight_decay}")
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._first_moment = [np.zeros_like(p.data) for p in self.parameters]
        self._second_moment = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1 ** self._step_count
        bias2 = 1.0 - self.beta2 ** self._step_count
        for parameter, m, v in zip(self.parameters, self._first_moment, self._second_moment):
            if parameter.grad is None:
                continue
            gradient = parameter.grad
            if self.weight_decay:
                gradient = gradient + self.weight_decay * parameter.data
            m *= self.beta1
            m += (1.0 - self.beta1) * gradient
            v *= self.beta2
            v += (1.0 - self.beta2) * gradient ** 2
            m_hat = m / bias1
            v_hat = v / bias2
            parameter.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
