"""Fully connected (affine) layer."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.nn import init
from repro.nn.module import Module, Parameter


class Linear(Module):
    """Affine transform ``y = x W + b`` with ``W`` of shape (in, out).

    Parameters
    ----------
    in_features, out_features:
        Input and output dimensionality of the last axis.
    bias:
        Whether to learn an additive bias.
    rng:
        Generator used for Xavier-uniform weight initialisation; pass the
        model-level generator so runs are reproducible.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("Linear dimensions must be positive")
        rng = rng if rng is not None else np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform((in_features, out_features), rng), name="weight")
        self.bias = Parameter(init.zeros((out_features,)), name="bias") if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)

    def __repr__(self) -> str:
        return f"Linear(in={self.in_features}, out={self.out_features}, bias={self.bias is not None})"
