"""Neural-network layer library built on :mod:`repro.autograd`.

Provides the module system (parameters, train/eval modes, state dicts), the
layers the SeqFM architecture is composed of (linear, embedding, layer norm,
dropout, maskable self-attention, residual feed-forward blocks), weight
initialisers, optimisers (SGD, Adam) and the three task losses used in the
paper (BPR, log loss, squared error).
"""

from repro.nn.module import Module, Parameter
from repro.nn.linear import Linear
from repro.nn.embedding import Embedding
from repro.nn.layers import LayerNorm, Dropout, ReLU, Sequential
from repro.nn.attention import SelfAttention
from repro.nn.feedforward import ResidualFeedForward
from repro.nn.losses import BPRLoss, BCEWithLogitsLoss, MSELoss
from repro.nn.optim import SGD, Adam, Optimizer
from repro.nn import init
from repro.nn import kernels

__all__ = [
    "Module",
    "Parameter",
    "Linear",
    "Embedding",
    "LayerNorm",
    "Dropout",
    "ReLU",
    "Sequential",
    "SelfAttention",
    "ResidualFeedForward",
    "BPRLoss",
    "BCEWithLogitsLoss",
    "MSELoss",
    "SGD",
    "Adam",
    "Optimizer",
    "init",
    "kernels",
]
