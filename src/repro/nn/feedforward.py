"""Shared residual feed-forward network (Eq. 15 of the paper).

Each layer computes ``h ← h + ReLU(LN(h) W + b)`` with dropout applied to the
layer output.  The *same* network is shared by the static, dynamic and cross
view representations — sharing is a deliberate design decision of the paper
(Figure 2) and is preserved here; the ablation benchmark also provides a
per-view variant.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autograd.tensor import Tensor
from repro.nn.layers import Dropout, LayerNorm
from repro.nn.linear import Linear
from repro.nn.module import Module


class ResidualFeedForward(Module):
    """l-layer residual feed-forward block with layer norm and dropout.

    Parameters
    ----------
    dim:
        Feature dimension ``d``; every layer maps R^d → R^d as in Eq. 15.
    num_layers:
        Network depth ``l`` (the paper searches l ∈ {1,...,5}).
    dropout:
        Dropout ratio ρ applied to each layer's residual branch.
    use_residual / use_layer_norm:
        Ablation switches for the "Remove RC" / "Remove LN" rows of Table V.
    """

    def __init__(
        self,
        dim: int,
        num_layers: int = 1,
        dropout: float = 0.0,
        use_residual: bool = True,
        use_layer_norm: bool = True,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        if num_layers < 1:
            raise ValueError("ResidualFeedForward requires at least one layer")
        rng = rng if rng is not None else np.random.default_rng()
        self.dim = dim
        self.num_layers = num_layers
        self.use_residual = use_residual
        self.use_layer_norm = use_layer_norm
        self.linears = [Linear(dim, dim, rng=rng) for _ in range(num_layers)]
        self.norms = [LayerNorm(dim) for _ in range(num_layers)]
        self.dropouts = [Dropout(dropout, rng=rng) for _ in range(num_layers)]

    def forward(self, x: Tensor) -> Tensor:
        hidden = x
        for linear, norm, drop in zip(self.linears, self.norms, self.dropouts):
            branch_input = norm(hidden) if self.use_layer_norm else hidden
            branch = drop(linear(branch_input).relu())
            hidden = hidden + branch if self.use_residual else branch
        return hidden

    def __repr__(self) -> str:
        return (
            f"ResidualFeedForward(dim={self.dim}, layers={self.num_layers}, "
            f"residual={self.use_residual}, layer_norm={self.use_layer_norm})"
        )
