"""Weight initialisation schemes.

The paper does not specify initialisation beyond standard practice for
transformer-style models; Xavier/Glorot uniform is used for projection
matrices and scaled normal for embedding tables, matching the defaults of the
frameworks the authors used.
"""

from __future__ import annotations

import numpy as np


def xavier_uniform(shape: tuple, rng: np.random.Generator) -> np.ndarray:
    """Glorot uniform: U(-a, a) with a = sqrt(6 / (fan_in + fan_out))."""
    fan_in, fan_out = _fans(shape)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def xavier_normal(shape: tuple, rng: np.random.Generator) -> np.ndarray:
    """Glorot normal: N(0, 2 / (fan_in + fan_out))."""
    fan_in, fan_out = _fans(shape)
    std = np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def embedding_normal(shape: tuple, rng: np.random.Generator, std: float = 0.05) -> np.ndarray:
    """Small-variance normal initialisation for embedding tables."""
    return rng.normal(0.0, std, size=shape)


def zeros(shape: tuple) -> np.ndarray:
    return np.zeros(shape)


def ones(shape: tuple) -> np.ndarray:
    return np.ones(shape)


def _fans(shape: tuple) -> tuple:
    if len(shape) < 1:
        raise ValueError("initialisation requires at least a 1-D shape")
    if len(shape) == 1:
        return shape[0], shape[0]
    fan_in = int(np.prod(shape[:-1]))
    fan_out = int(shape[-1])
    return fan_in, fan_out
