"""Task losses used by the paper: BPR (ranking), log loss (classification),
squared error (regression).

Each loss is a thin module wrapper over the differentiable functional in
:mod:`repro.autograd.functional`, so they can be swapped through a common
interface by the trainer.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.nn.module import Module


class BPRLoss(Module):
    """Bayesian Personalised Ranking loss (Eq. 21).

    Takes the scores of positive and negative items for the same users and
    maximises the log-probability that the positive item outranks the
    negative one.
    """

    def forward(self, positive_scores: Tensor, negative_scores: Tensor) -> Tensor:
        return F.bpr_loss(positive_scores, negative_scores)


class BCEWithLogitsLoss(Module):
    """Log loss of Eq. (24) computed directly from logits for stability."""

    def forward(self, logits: Tensor, targets: np.ndarray) -> Tensor:
        return F.binary_cross_entropy_with_logits(logits, targets)


class MSELoss(Module):
    """Mean squared error (Eq. 26 averaged over the batch)."""

    def forward(self, predictions: Tensor, targets: np.ndarray) -> Tensor:
        return F.mse_loss(predictions, targets)
