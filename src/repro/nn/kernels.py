"""Pure-NumPy forward kernels shared by training and serving.

The autograd layer (:mod:`repro.autograd.functional`) wraps every operation in
:class:`~repro.autograd.tensor.Tensor` nodes so gradients can flow backwards.
Inference does not need any of that bookkeeping, so the serving engine
(:mod:`repro.serving.engine`) evaluates the model with the plain-array kernels
in this module instead.  Each kernel mirrors its autograd counterpart
*operation for operation* — same order, same constants, same numerical tricks
— so a graph-free forward pass is bitwise identical to
``SeqFM.score``/``Tensor``-based evaluation, not merely close.

Keep the two in lock-step: any change to the math in
:mod:`repro.autograd.functional` must be reflected here (the parity tests in
``tests/test_serving_engine.py`` enforce agreement to 1e-10).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


def softmax(scores: np.ndarray) -> np.ndarray:
    """Softmax along the last axis with max-subtraction for stability.

    Mirrors :func:`repro.autograd.functional.softmax`.
    """
    shifted = scores - scores.max(axis=-1, keepdims=True)
    exps = np.exp(shifted)
    return exps / exps.sum(axis=-1, keepdims=True)


def attention_scores(
    queries: np.ndarray, keys: np.ndarray, mask: Optional[np.ndarray] = None
) -> np.ndarray:
    """Masked, scaled dot-product attention scores ``QKᵀ/√d + M``."""
    d = queries.shape[-1]
    scores = queries @ np.swapaxes(keys, -1, -2) * (1.0 / np.sqrt(d))
    if mask is not None:
        scores = scores + np.asarray(mask, dtype=np.float64)
    return scores


def attention_weights(
    queries: np.ndarray, keys: np.ndarray, mask: Optional[np.ndarray] = None
) -> np.ndarray:
    """Softmax-normalised attention weight matrix (for inference/inspection)."""
    return softmax(attention_scores(queries, keys, mask=mask))


def scaled_dot_product_attention(
    queries: np.ndarray,
    keys: np.ndarray,
    values: np.ndarray,
    mask: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Eq. (6)/(9)/(11): ``softmax(QKᵀ/√d + M)·V`` on plain arrays.

    Mirrors :func:`repro.autograd.functional.scaled_dot_product_attention`.
    """
    return attention_weights(queries, keys, mask=mask) @ values


def project_qkv(
    features: np.ndarray,
    w_query: np.ndarray,
    w_key: np.ndarray,
    w_value: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Project ``features`` into the query/key/value subspaces (Eq. 6).

    The decomposed half of :func:`scaled_dot_product_attention`: callers that
    attend many query sets against one shared feature matrix (candidate
    ranking — C candidates, one history) project the shared rows **once** and
    reuse the resulting K/V with :func:`attend_with_cached_kv` instead of
    re-projecting them per candidate.
    """
    return features @ w_query, features @ w_key, features @ w_value


def attend_with_cached_kv(
    queries: np.ndarray,
    cached_keys: np.ndarray,
    cached_values: np.ndarray,
    mask: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Attention against pre-projected (cached) keys/values.

    Identical math to :func:`scaled_dot_product_attention` — the split into
    :func:`project_qkv` + this function only changes *when* the projections
    happen, never what is computed, so fast-path output stays within parity
    tolerance of the fused kernel.  ``queries``/``cached_keys``/
    ``cached_values`` broadcast over leading batch axes, so one user's cached
    ``(n, d)`` history K/V can serve a ``(C, n, d)`` candidate batch.
    """
    return attention_weights(queries, cached_keys, mask=mask) @ cached_values


def top_k(
    scores: np.ndarray, k: int, mask: Optional[np.ndarray] = None
) -> np.ndarray:
    """Indices of the ``k`` largest entries of a 1-D score vector, best first.

    A partial sort via :func:`np.argpartition` — O(C + k log k) instead of the
    O(C log C) full ``argsort`` — for the serving-side top-K cut of a ranked
    candidate list.  ``mask`` (1.0 = eligible) excludes candidates from the
    result entirely; fewer than ``k`` eligible entries shrink the result
    rather than padding it.  Ties break toward the lower index, matching
    ``np.argsort(-scores, kind="stable")``.
    """
    scores = np.asarray(scores, dtype=np.float64)
    if scores.ndim != 1:
        raise ValueError(f"scores must be 1-D, got shape {scores.shape}")
    if k < 1:
        raise ValueError("k must be at least 1")
    eligible = np.arange(scores.shape[0])
    if mask is not None:
        mask = np.asarray(mask, dtype=np.float64)
        if mask.shape != scores.shape:
            raise ValueError("mask must match the scores shape")
        eligible = eligible[mask > 0]
        scores = scores[mask > 0]
    if eligible.size == 0:
        return np.empty(0, dtype=np.int64)
    k = min(k, eligible.size)
    if k < eligible.size:
        # argpartition alone is not tie-stable at the selection boundary, so
        # take everything strictly above the k-th largest value and fill the
        # remaining slots with the lowest-index entries tied at that value.
        boundary = scores[np.argpartition(-scores, k - 1)[k - 1]]
        above = np.flatnonzero(scores > boundary)
        tied = np.flatnonzero(scores == boundary)[: k - above.size]
        chosen = np.concatenate([above, tied])
    else:
        chosen = np.arange(eligible.size)
    # Order the k survivors by (-score, index): best first, stable on ties.
    order = np.lexsort((eligible[chosen], -scores[chosen]))
    return eligible[chosen[order]].astype(np.int64)


def blocked_topk_matmul(
    query: np.ndarray,
    matrix: np.ndarray,
    k: int,
    block_size: int = 8192,
    row_bias: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Top-``k`` rows of ``matrix`` by inner product with ``query``, blocked.

    Computes ``matrix @ query`` in row blocks of ``block_size`` so the brute
    force scan of a large catalog never materialises more than one block of
    scores at a time, keeping memory flat in the catalog size.  ``row_bias``
    (one entry per matrix row) is added to the scores inside the scan — the
    retrieval use case is per-partition calibration offsets.  Returns
    ``(row_indices, scores)`` best first.  Selection is exact: every true
    top-k row survives its own block's :func:`top_k` cut, and the final merge
    orders by ``(-score, row index)`` — the same result (including the tie
    order of bitwise-equal scores) as ``top_k(matrix @ query + row_bias, k)``
    over the full product, up to BLAS summation-order rounding of the
    products themselves.
    """
    query = np.asarray(query, dtype=np.float64).reshape(-1)
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[1] != query.shape[0]:
        raise ValueError(
            f"matrix must have shape (rows, {query.shape[0]}), got {matrix.shape}"
        )
    if k < 1:
        raise ValueError("k must be at least 1")
    if block_size < 1:
        raise ValueError("block_size must be positive")
    if row_bias is not None:
        row_bias = np.asarray(row_bias, dtype=np.float64).reshape(-1)
        if row_bias.shape[0] != matrix.shape[0]:
            raise ValueError(
                f"row_bias must have one entry per matrix row ({matrix.shape[0]}), "
                f"got {row_bias.shape[0]}"
            )
    rows = matrix.shape[0]
    if rows == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)
    survivor_indices = []
    survivor_scores = []
    # block sweep: O(rows / block_size) iterations to bound scratch memory,
    # not a per-element loop — each iteration is one BLAS matmul
    for start in range(0, rows, block_size):  # repro: allow[kernel-purity]
        block_scores = matrix[start:start + block_size] @ query
        if row_bias is not None:
            block_scores = block_scores + row_bias[start:start + block_size]
        keep = top_k(block_scores, k)
        survivor_indices.append(keep + start)
        survivor_scores.append(block_scores[keep])
    indices = np.concatenate(survivor_indices)
    scores = np.concatenate(survivor_scores)
    order = np.lexsort((indices, -scores))[: min(k, indices.size)]
    return indices[order].astype(np.int64), scores[order]


def kmeans_assign(
    points: np.ndarray, centroids: np.ndarray, block_size: int = 8192
) -> np.ndarray:
    """Nearest-centroid assignment (squared Euclidean), blocked over points.

    The assignment half of a Lloyd iteration, shared by the IVF index build
    and its query-time partition routing.  Distances are computed as
    ``‖c‖² − 2·p·c`` (the point's own norm is constant per row and cannot
    change the argmin) in blocks of ``block_size`` points, so assigning a
    100k-item catalog to hundreds of centroids stays within a few MB of
    scratch.  Ties resolve to the lowest centroid index.
    """
    points = np.asarray(points, dtype=np.float64)
    centroids = np.asarray(centroids, dtype=np.float64)
    if points.ndim != 2 or centroids.ndim != 2 or points.shape[1] != centroids.shape[1]:
        raise ValueError(
            f"points {points.shape} and centroids {centroids.shape} must share "
            "their feature dimension"
        )
    if block_size < 1:
        raise ValueError("block_size must be positive")
    centroid_norms = (centroids * centroids).sum(axis=1)  # (k,)
    assignments = np.empty(points.shape[0], dtype=np.int64)
    # block sweep: bounds the (block, k) distance matrix instead of
    # materialising all n×k distances at once; one BLAS call per iteration
    for start in range(0, points.shape[0], block_size):  # repro: allow[kernel-purity]
        block = points[start:start + block_size]
        distances = centroid_norms[None, :] - 2.0 * (block @ centroids.T)
        assignments[start:start + block.shape[0]] = distances.argmin(axis=1)
    return assignments


def layer_norm(
    x: np.ndarray, scale: np.ndarray, bias: np.ndarray, eps: float = 1e-8
) -> np.ndarray:
    """Layer normalisation over the last axis (Eq. 16).

    Mirrors :func:`repro.autograd.functional.layer_norm`.
    """
    mean = x.mean(axis=-1, keepdims=True)
    centred = x - mean
    variance = (centred * centred).mean(axis=-1, keepdims=True)
    normalised = centred / (variance + eps) ** 0.5
    return normalised * scale + bias


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear unit on plain arrays."""
    return np.maximum(x, 0.0)


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Logistic sigmoid, clipped against overflow.

    Mirrors :meth:`repro.autograd.tensor.Tensor.sigmoid` (same ±60 clip), so
    serving-side probabilities match the classification task head exactly.
    """
    return 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))


def mean_pool(x: np.ndarray, axis: int = -2) -> np.ndarray:
    """Intra-view pooling (Eq. 14): mean of the feature rows in a view."""
    return x.mean(axis=axis)


def masked_mean_pool(x: np.ndarray, valid_mask: np.ndarray, axis: int = -2) -> np.ndarray:
    """Mean over only the valid (non-padding) rows.

    Mirrors :func:`repro.autograd.functional.masked_mean_pool`: rows that are
    entirely padding contribute zero and the divisor is clamped to one.
    """
    mask = np.asarray(valid_mask, dtype=np.float64)[..., None]
    counts = np.maximum(mask.sum(axis=axis), 1.0)
    summed = (x * mask).sum(axis=axis)
    return summed / counts
