"""The module system: parameters, submodule registration, state dicts.

Mirrors the small part of ``torch.nn.Module`` that the reproduction needs:
automatic discovery of parameters and submodules through attribute
assignment, recursive ``train()``/``eval()`` switching (dropout behaves
differently in the two modes), gradient zeroing, and (de)serialisation of all
parameters into a flat dictionary of arrays.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.autograd.tensor import Tensor


class Parameter(Tensor):
    """A :class:`Tensor` that is registered as a trainable model parameter."""

    def __init__(self, data, name: str = ""):
        super().__init__(np.asarray(data, dtype=np.float64), requires_grad=True, name=name)


class Module:
    """Base class for all layers and models.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes in ``__init__``; they are discovered automatically by
    :meth:`parameters`, :meth:`named_parameters` and :meth:`modules`.
    """

    def __init__(self) -> None:
        self.training = True

    # ------------------------------------------------------------------ #
    # Discovery
    # ------------------------------------------------------------------ #
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(qualified_name, parameter)`` pairs, depth-first."""
        for attribute, value in vars(self).items():
            qualified = f"{prefix}{attribute}"
            if isinstance(value, Parameter):
                yield qualified, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{qualified}.")
            elif isinstance(value, (list, tuple)):
                for index, element in enumerate(value):
                    if isinstance(element, Parameter):
                        yield f"{qualified}.{index}", element
                    elif isinstance(element, Module):
                        yield from element.named_parameters(prefix=f"{qualified}.{index}.")

    def parameters(self) -> List[Parameter]:
        """Return all trainable parameters of this module and its children."""
        return [parameter for _, parameter in self.named_parameters()]

    def modules(self) -> Iterator["Module"]:
        """Yield this module and every descendant module."""
        yield self
        for value in vars(self).values():
            if isinstance(value, Module):
                yield from value.modules()
            elif isinstance(value, (list, tuple)):
                for element in value:
                    if isinstance(element, Module):
                        yield from element.modules()

    # ------------------------------------------------------------------ #
    # Mode switching and gradient management
    # ------------------------------------------------------------------ #
    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively (affects dropout)."""
        for module in self.modules():
            module.training = mode
        return self

    def eval(self) -> "Module":
        """Set evaluation mode recursively."""
        return self.train(False)

    def zero_grad(self) -> None:
        """Clear accumulated gradients on every parameter."""
        for parameter in self.parameters():
            parameter.zero_grad()

    def num_parameters(self) -> int:
        """Total number of scalar trainable parameters."""
        return sum(parameter.size for parameter in self.parameters())

    # ------------------------------------------------------------------ #
    # (De)serialisation
    # ------------------------------------------------------------------ #
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Copy every parameter array into a flat name → array mapping."""
        return {name: parameter.data.copy() for name, parameter in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameter values from a mapping produced by :meth:`state_dict`."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)} unexpected={sorted(unexpected)}"
            )
        for name, parameter in own.items():
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != parameter.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: expected {parameter.data.shape}, got {value.shape}"
                )
            parameter.data[...] = value

    # ------------------------------------------------------------------ #
    # Calling
    # ------------------------------------------------------------------ #
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)
