"""Learning-rate schedulers for the optimisers in :mod:`repro.nn.optim`.

The paper trains with a constant Adam learning rate; schedulers are provided
as an optional extension (they are exercised by the ablation benchmarks and
available to users tuning the scaled-down synthetic setups, where a short
warmup noticeably stabilises the attention layers).

All schedulers mutate ``optimizer.lr`` in place when :meth:`step` is called
once per epoch (or per iteration, at the caller's choice).
"""

from __future__ import annotations

import math
from typing import List

from repro.nn.optim import Optimizer


class LRScheduler:
    """Base class: tracks the step count and the optimiser's base rate."""

    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.step_count = 0

    def step(self) -> float:
        """Advance one step and apply the new learning rate; returns it."""
        self.step_count += 1
        new_lr = self.compute_lr(self.step_count)
        self.optimizer.lr = new_lr
        return new_lr

    def compute_lr(self, step: int) -> float:
        raise NotImplementedError

    @property
    def current_lr(self) -> float:
        return self.optimizer.lr


class ConstantLR(LRScheduler):
    """Keeps the learning rate fixed (the paper's setting)."""

    def compute_lr(self, step: int) -> float:
        return self.base_lr


class StepDecayLR(LRScheduler):
    """Multiply the rate by ``gamma`` every ``step_size`` steps."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.5):
        super().__init__(optimizer)
        if step_size < 1:
            raise ValueError("step_size must be positive")
        if not 0.0 < gamma <= 1.0:
            raise ValueError("gamma must be in (0, 1]")
        self.step_size = step_size
        self.gamma = gamma

    def compute_lr(self, step: int) -> float:
        return self.base_lr * self.gamma ** (step // self.step_size)


class CosineAnnealingLR(LRScheduler):
    """Cosine decay from the base rate to ``min_lr`` over ``total_steps``."""

    def __init__(self, optimizer: Optimizer, total_steps: int, min_lr: float = 0.0):
        super().__init__(optimizer)
        if total_steps < 1:
            raise ValueError("total_steps must be positive")
        if min_lr < 0:
            raise ValueError("min_lr must be non-negative")
        self.total_steps = total_steps
        self.min_lr = min_lr

    def compute_lr(self, step: int) -> float:
        progress = min(step, self.total_steps) / self.total_steps
        cosine = 0.5 * (1.0 + math.cos(math.pi * progress))
        return self.min_lr + (self.base_lr - self.min_lr) * cosine


class WarmupLR(LRScheduler):
    """Linear warmup to the base rate, then delegate to an inner schedule.

    With no inner schedule the rate stays at the base value after warmup —
    the common "warmup + constant" recipe for attention models.
    """

    def __init__(self, optimizer: Optimizer, warmup_steps: int,
                 after: LRScheduler = None):
        super().__init__(optimizer)
        if warmup_steps < 0:
            raise ValueError("warmup_steps must be non-negative")
        self.warmup_steps = warmup_steps
        self.after = after

    def compute_lr(self, step: int) -> float:
        if self.warmup_steps and step <= self.warmup_steps:
            return self.base_lr * step / self.warmup_steps
        if self.after is not None:
            return self.after.compute_lr(step - self.warmup_steps)
        return self.base_lr


def lr_history(scheduler: LRScheduler, num_steps: int) -> List[float]:
    """Advance a scheduler ``num_steps`` times and return the rates applied.

    Convenience helper for tests and for plotting schedules.
    """
    return [scheduler.step() for _ in range(num_steps)]
