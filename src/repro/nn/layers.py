"""Common layers: layer normalisation, dropout, activation and containers."""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.nn.module import Module, Parameter


class LayerNorm(Module):
    """Layer normalisation over the last axis (Eq. 16 of the paper).

    Each sample is normalised with its own mean/variance — unlike batch
    normalisation no cross-sample statistics are used, so training and test
    computation are identical.
    """

    def __init__(self, dim: int, eps: float = 1e-8):
        super().__init__()
        if dim <= 0:
            raise ValueError("LayerNorm dim must be positive")
        self.dim = dim
        self.eps = eps
        self.scale = Parameter(np.ones(dim), name="ln_scale")
        self.bias = Parameter(np.zeros(dim), name="ln_bias")

    def forward(self, x: Tensor) -> Tensor:
        return F.layer_norm(x, self.scale, self.bias, eps=self.eps)

    def __repr__(self) -> str:
        return f"LayerNorm(dim={self.dim})"


class Dropout(Module):
    """Inverted dropout with ratio ρ (Section III-F of the paper)."""

    def __init__(self, ratio: float, rng: Optional[np.random.Generator] = None):
        super().__init__()
        if not 0.0 <= ratio < 1.0:
            raise ValueError(f"dropout ratio must be in [0, 1), got {ratio}")
        self.ratio = ratio
        self.rng = rng if rng is not None else np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.ratio, training=self.training, rng=self.rng)

    def __repr__(self) -> str:
        return f"Dropout(ratio={self.ratio})"


class ReLU(Module):
    """Rectified linear unit as a module (for use inside Sequential)."""

    def forward(self, x: Tensor) -> Tensor:
        return F.relu(x)

    def __repr__(self) -> str:
        return "ReLU()"


class Sequential(Module):
    """Run submodules in order, feeding each output into the next."""

    def __init__(self, *layers: Module):
        super().__init__()
        self.layers = list(layers)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x

    def append(self, layer: Module) -> None:
        self.layers.append(layer)

    def __iter__(self) -> Iterable[Module]:
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)

    def __repr__(self) -> str:
        inner = ", ".join(repr(layer) for layer in self.layers)
        return f"Sequential({inner})"
