"""Embedding table with sparse-gradient row lookups.

The embedding layer is the counterpart of the paper's embedding matrices
``M°`` and ``M˙`` (Eq. 5): it maps the index of a non-zero one-hot feature to
its dense d-dimensional representation.  Looking rows up by index is
mathematically identical to the one-hot × matrix product in the paper but
avoids materialising the sparse one-hot vectors.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.nn import init
from repro.nn.module import Module, Parameter


class Embedding(Module):
    """Lookup table mapping integer feature indices to dense vectors.

    Parameters
    ----------
    num_embeddings:
        Vocabulary size (number of distinct sparse features in the view).
    embedding_dim:
        The latent dimension ``d`` of the paper.
    padding_idx:
        Optional index whose embedding is pinned to the zero vector.  The
        dynamic-view padding rows of the paper ("repeatedly add a padding
        vector {0}^{1×m}") map to this index.
    """

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        padding_idx: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
        std: float = 0.05,
    ):
        super().__init__()
        if num_embeddings <= 0 or embedding_dim <= 0:
            raise ValueError("Embedding dimensions must be positive")
        rng = rng if rng is not None else np.random.default_rng()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.padding_idx = padding_idx
        table = init.embedding_normal((num_embeddings, embedding_dim), rng, std=std)
        if padding_idx is not None:
            if not 0 <= padding_idx < num_embeddings:
                raise ValueError("padding_idx out of range")
            table[padding_idx] = 0.0
        self.weight = Parameter(table, name="embedding")

    def forward(self, indices: np.ndarray) -> Tensor:
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size and (indices.min() < 0 or indices.max() >= self.num_embeddings):
            raise IndexError(
                f"embedding index out of range [0, {self.num_embeddings}): "
                f"min={indices.min()}, max={indices.max()}"
            )
        return F.embedding_lookup(self.weight, indices)

    def reset_padding(self) -> None:
        """Re-zero the padding row (call after optimiser steps if desired)."""
        if self.padding_idx is not None:
            self.weight.data[self.padding_idx] = 0.0

    def __repr__(self) -> str:
        return (
            f"Embedding(num={self.num_embeddings}, dim={self.embedding_dim}, "
            f"padding_idx={self.padding_idx})"
        )
