"""Candidate retrieval: embedding index + two-stage retrieve → rank serving.

PR 3 made re-ranking a candidate list cheap; this package makes *finding* the
list cheap.  It turns the repository from a scorer into an end-to-end
recommender: a request arrives with no candidates at all, and the pipeline
answers with the catalog's top-K.

* :class:`~repro.retrieval.index.ItemIndex` — a contiguous
  ``(n_items, d + 1)`` snapshot of each catalog item's static embedding row
  and linear weight, taken from a trained SeqFM checkpoint; saved/loaded as
  ``.npz`` next to the model checkpoint
  (:meth:`repro.serving.registry.ModelRegistry.build_index`).
* :class:`~repro.retrieval.index.ExactIndex` — blocked brute-force top-N
  inner-product search; the correctness oracle.
* :class:`~repro.retrieval.index.IVFIndex` — k-means inverted file with an
  ``n_probe`` recall/latency dial; recall@N is *measured* against the exact
  backend (``recall_at``), parity is exact at ``n_probe = n_partitions``.
* :class:`~repro.retrieval.query.QueryEncoder` — per-user linear surrogate of
  the model's scoring function, least-squares-fitted from a handful of
  exactly-scored probe items; shares one
  :class:`~repro.serving.engine.RankingPlan` with the re-ranker.
* :class:`~repro.retrieval.pipeline.RetrievePipeline` — retrieve → rank:
  index sweep to ``n_retrieve`` candidates, exact fast-path re-rank to top-K.

Wired through every serving layer: ``InferenceEngine.retrieve`` /
``retrieve_then_rank``, the ``MicroBatcher`` recommend head,
``ModelRegistry`` index build/save/load + ``recommend``, the ``recommend``
service head, and the ``build-index`` / ``recommend`` CLI subcommands.
``benchmarks/test_retrieval_throughput.py`` (``make bench-retrieve``)
measures exact vs IVF throughput and recall@100 up to 100k-item catalogs.
"""

from repro.retrieval.index import (
    ExactIndex,
    IVFIndex,
    ItemIndex,
    recall_at,
)
from repro.retrieval.pipeline import (
    DEFAULT_N_RETRIEVE,
    RetrievalResult,
    RetrievePipeline,
)
from repro.retrieval.query import EncodedQuery, QueryEncoder

__all__ = [
    "DEFAULT_N_RETRIEVE",
    "EncodedQuery",
    "ExactIndex",
    "IVFIndex",
    "ItemIndex",
    "QueryEncoder",
    "RetrievalResult",
    "RetrievePipeline",
    "recall_at",
]
