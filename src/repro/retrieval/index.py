"""Item indexes: snapshot a trained model's catalog into a searchable matrix.

The re-ranker (:meth:`repro.serving.engine.InferenceEngine.rank_candidates`)
is fast *per candidate list*, but somebody still has to supply the list — and
scoring every catalog item per request is exactly the linear-in-catalog cost
the two-stage architecture exists to avoid.  :class:`ItemIndex` snapshots the
candidate-dependent leaves of a trained SeqFM — the static embedding row and
static linear weight of each catalog item — into one contiguous
``(n_items, d + 1)`` matrix, so a whole catalog can be swept with matmuls
instead of model evaluations.

Retrieval scores are inner products ``v · [e_i, w_i]`` against an *augmented
query* ``v = [q, 1]`` (see :mod:`repro.retrieval.query`): the trailing ``1``
picks up each item's linear weight, so the bias column rides along in the
same matmul as the embedding similarity.  The index also carries a k-means
**partitioning** of the catalog (built once at snapshot time) that serves two
consumers: the IVF backend's inverted file, and the query encoder's
*per-partition calibration* — one exactly-scored representative item per
partition corrects the cluster-level error a globally linear surrogate cannot
express (``partition_offsets``, applied by both backends at search time).

Two search backends share the contract:

* :class:`ExactIndex` — blocked brute force
  (:func:`repro.nn.kernels.blocked_topk_matmul`); the correctness oracle.
* :class:`IVFIndex` — the inverted file over the index's partitions; queries
  probe the ``n_probe`` partitions whose centroids score highest, trading
  recall for a catalog-sublinear scan.  Recall against :class:`ExactIndex` is
  measured, not assumed (:func:`recall_at`,
  ``benchmarks/test_retrieval_throughput.py``).

Both backends order results by ``(-score, catalog position)``; item ids are
sorted at build time, so at ``n_probe = n_partitions`` the IVF result is
*identical* to the exact one, ties included.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Sequence, Tuple, Union

import numpy as np

from repro.nn import kernels

PathLike = Union[str, Path]

#: npz key carrying the index format version.
_FORMAT_KEY = "__item_index_version__"
_FORMAT_VERSION = 2

#: npz keys of the optional partition block.
_PARTITION_KEYS = ("centroids", "assignments", "representative_positions")


def _lloyd_kmeans(
    points: np.ndarray, k: int, iterations: int, seed: int, block_size: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Lloyd's algorithm; returns ``(centroids, assignments)``.

    Initialisation is a seeded sample of distinct catalog rows.  Empty
    clusters are re-seeded from the points furthest from their current
    centroid.  The *final* assignment can still leave a cluster empty (the
    last reassignment may orphan one, and duplicate points tie toward the
    lowest centroid index no matter where a centroid is re-seeded), so
    callers must tolerate empty clusters —
    :meth:`ItemIndex.build_partitions` compacts them away.
    """
    rng = np.random.default_rng(seed)
    centroids = points[rng.choice(points.shape[0], size=k, replace=False)].copy()
    assignments = kernels.kmeans_assign(points, centroids, block_size=block_size)
    for _ in range(iterations):
        counts = np.bincount(assignments, minlength=k)
        sums = np.stack(
            [
                np.bincount(assignments, weights=points[:, column], minlength=k)
                for column in range(points.shape[1])
            ],
            axis=1,
        )
        populated = counts > 0
        centroids[populated] = sums[populated] / counts[populated, None]
        empty = np.flatnonzero(~populated)
        if empty.size:
            # Re-seed each empty partition from a distinct point among the
            # worst-served ones (largest residual to its current centroid).
            residuals = ((points - centroids[assignments]) ** 2).sum(axis=1)
            worst = np.argsort(-residuals)[: empty.size]
            centroids[empty] = points[worst]
        new_assignments = kernels.kmeans_assign(points, centroids, block_size=block_size)
        if np.array_equal(new_assignments, assignments):
            break
        assignments = new_assignments
    return centroids, assignments


class ItemIndex:
    """A contiguous snapshot of catalog-item representations.

    Attributes
    ----------
    item_ids:
        ``(n_items,)`` int64 static-vocabulary indices of the catalog items,
        sorted ascending (the build sorts; order is part of the tie-break
        contract of the search backends).
    vectors:
        ``(n_items, d + 1)`` float64 matrix: columns ``[:d]`` are the item's
        static embedding row, column ``d`` its static linear weight.
    probe_positions:
        ``(p,)`` int64 positions into ``item_ids``: the probe items the
        query encoder scores exactly to fit its linear query (see
        :class:`repro.retrieval.query.QueryEncoder`).
    centroids / assignments / representative_positions:
        The optional partition block (see :meth:`build_partitions`):
        ``(n_partitions, d + 1)`` k-means centroids, the ``(n_items,)``
        partition of each catalog row, and the position of each partition's
        representative (the member nearest its centroid).  ``None`` until
        built; persisted by :meth:`save`.

    An index is a *snapshot*: rebuilding after a checkpoint reload is the
    caller's job (:meth:`repro.serving.registry.ModelRegistry.build_index`
    does it in one call).
    """

    def __init__(
        self,
        item_ids: np.ndarray,
        vectors: np.ndarray,
        probe_positions: np.ndarray,
        centroids: Optional[np.ndarray] = None,
        assignments: Optional[np.ndarray] = None,
        representative_positions: Optional[np.ndarray] = None,
    ):
        self.item_ids = np.asarray(item_ids, dtype=np.int64).reshape(-1)
        self.vectors = np.asarray(vectors, dtype=np.float64)
        self.probe_positions = np.asarray(probe_positions, dtype=np.int64).reshape(-1)
        if self.vectors.ndim != 2 or self.vectors.shape[0] != self.item_ids.shape[0]:
            raise ValueError(
                f"vectors must have shape (n_items, d + 1), got {self.vectors.shape} "
                f"for {self.item_ids.shape[0]} items"
            )
        if self.vectors.shape[1] < 2:
            raise ValueError("vectors need at least one embedding column plus the weight")
        if self.probe_positions.size and (
            self.probe_positions.min() < 0
            or self.probe_positions.max() >= self.item_ids.shape[0]
        ):
            raise IndexError("probe_positions outside the catalog")
        self.centroids = None if centroids is None else np.asarray(centroids, dtype=np.float64)
        self.assignments = (
            None if assignments is None else np.asarray(assignments, dtype=np.int64)
        )
        self.representative_positions = (
            None
            if representative_positions is None
            else np.asarray(representative_positions, dtype=np.int64)
        )
        if (self.centroids is None) != (self.assignments is None) or (
            (self.centroids is None) != (self.representative_positions is None)
        ):
            raise ValueError(
                "centroids, assignments and representative_positions must be "
                "given together (or all omitted)"
            )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def num_items(self) -> int:
        return self.item_ids.shape[0]

    @property
    def dim(self) -> int:
        """Embedding dimensionality d (the augmented vectors are d + 1 wide)."""
        return self.vectors.shape[1] - 1

    @property
    def embeddings(self) -> np.ndarray:
        """View of the ``(n_items, d)`` embedding columns."""
        return self.vectors[:, :-1]

    @property
    def weights(self) -> np.ndarray:
        """View of the ``(n_items,)`` static linear-weight column."""
        return self.vectors[:, -1]

    @property
    def probe_item_ids(self) -> np.ndarray:
        return self.item_ids[self.probe_positions]

    @property
    def has_partitions(self) -> bool:
        return self.centroids is not None

    @property
    def n_partitions(self) -> int:
        return 0 if self.centroids is None else self.centroids.shape[0]

    def __len__(self) -> int:
        return self.num_items

    def __repr__(self) -> str:
        return (
            f"ItemIndex(items={self.num_items}, d={self.dim}, "
            f"probes={self.probe_positions.shape[0]}, "
            f"partitions={self.n_partitions or None})"
        )

    # ------------------------------------------------------------------ #
    # Build / persistence
    # ------------------------------------------------------------------ #
    @classmethod
    def from_model(
        cls,
        model,
        item_ids: Sequence[int],
        num_probes: Optional[int] = None,
        seed: int = 0,
        partition: bool = True,
        n_partitions: Optional[int] = None,
    ) -> "ItemIndex":
        """Snapshot ``item_ids`` (static-vocabulary indices) out of a SeqFM.

        ``model`` may be a :class:`~repro.core.model.SeqFM` or anything with a
        ``model`` attribute holding one (an
        :class:`~repro.serving.engine.InferenceEngine`).  Ids are validated
        against the static vocabulary, deduplicated and sorted.  ``num_probes``
        defaults to ``min(n_items, max(32, 4 · d))`` — enough rows to
        overdetermine the query encoder's ``d + 1`` unknowns several times
        over; probes are a seeded uniform sample of the catalog.  Unless
        ``partition=False``, the k-means partition block is built immediately
        (:meth:`build_partitions`), enabling per-partition query calibration
        and the IVF backend without a second pass.
        """
        model = getattr(model, "model", model)
        ids = np.unique(np.asarray(list(item_ids), dtype=np.int64).reshape(-1))
        if ids.size == 0:
            raise ValueError("cannot build an index over zero items")
        vocab = model.config.static_vocab_size
        if ids.min() < 0 or ids.max() >= vocab:
            raise IndexError(
                f"item id out of static vocabulary [0, {vocab}): "
                f"min={ids.min()}, max={ids.max()}"
            )
        embeddings = model.static_embedding.weight.data[ids]
        weights = model.static_linear.data[ids]
        vectors = np.concatenate([embeddings, weights[:, None]], axis=1)
        d = embeddings.shape[1]
        if num_probes is None:
            num_probes = min(ids.size, max(32, 4 * d))
        num_probes = max(1, min(int(num_probes), ids.size))
        rng = np.random.default_rng(seed)
        probe_positions = np.sort(rng.choice(ids.size, size=num_probes, replace=False))
        index = cls(item_ids=ids, vectors=vectors, probe_positions=probe_positions)
        if partition:
            index.build_partitions(n_partitions=n_partitions, seed=seed)
        return index

    def build_partitions(
        self,
        n_partitions: Optional[int] = None,
        iterations: int = 8,
        seed: int = 0,
        block_size: int = 8192,
    ) -> "ItemIndex":
        """Cluster the catalog into ``n_partitions`` k-means partitions.

        Defaults to ``⌈√n_items⌉`` partitions.  Also records each partition's
        **representative** — the member nearest its centroid — which the
        query encoder scores exactly to calibrate per-partition offsets.
        An existing partition block is reused when ``n_partitions`` is
        ``None`` (whatever was built — or loaded from disk — wins) or equal
        to its count; pass a different count to force a rebuild.  Returns
        ``self`` for chaining.  Partitions k-means leaves empty are compacted
        away, so the stored block never contains an empty partition (the
        probing arithmetic and the representative calibration require it).
        """
        if self.has_partitions and (
            n_partitions is None or self.n_partitions == int(n_partitions)
        ):
            return self
        if n_partitions is None:
            n_partitions = int(np.ceil(np.sqrt(self.num_items)))
        n_partitions = max(1, min(int(n_partitions), self.num_items))
        centroids, assignments = _lloyd_kmeans(
            self.vectors, n_partitions, iterations, seed, block_size
        )
        counts = np.bincount(assignments, minlength=n_partitions)
        if (counts == 0).any():
            populated = np.flatnonzero(counts > 0)
            remap = np.full(n_partitions, -1, dtype=np.int64)
            remap[populated] = np.arange(populated.size)
            centroids = centroids[populated]
            assignments = remap[assignments]
            n_partitions = populated.size
        representatives = np.empty(n_partitions, dtype=np.int64)
        for partition in range(n_partitions):
            members = np.flatnonzero(assignments == partition)
            residuals = ((self.vectors[members] - centroids[partition]) ** 2).sum(axis=1)
            representatives[partition] = members[residuals.argmin()]
        self.centroids = centroids
        self.assignments = assignments
        self.representative_positions = representatives
        return self

    def save(self, path: PathLike) -> Path:
        """Write the snapshot (partition block included) as compressed ``.npz``.

        The write is atomic (temp file → fsync → rename): a crash mid-save
        can never leave a torn archive where a valid index used to be.
        """
        from repro.core.serialization import atomic_write

        path = Path(path)
        payload = {
            "item_ids": self.item_ids,
            "vectors": self.vectors,
            "probe_positions": self.probe_positions,
            _FORMAT_KEY: np.array([_FORMAT_VERSION], dtype=np.int64),
        }
        if self.has_partitions:
            payload["centroids"] = self.centroids
            payload["assignments"] = self.assignments
            payload["representative_positions"] = self.representative_positions
        with atomic_write(path) as handle:
            np.savez_compressed(handle, **payload)
        return path

    @classmethod
    def load(cls, path: PathLike) -> "ItemIndex":
        """Rebuild an index saved with :meth:`save`."""
        path = Path(path)
        with np.load(path) as archive:
            if _FORMAT_KEY not in archive.files:
                raise ValueError(f"{path} is not an ItemIndex archive")
            version = int(archive[_FORMAT_KEY][0])
            if version > _FORMAT_VERSION:
                raise ValueError(
                    f"{path} has index format v{version}; this build reads "
                    f"≤ v{_FORMAT_VERSION}"
                )
            partition_block = {
                key: archive[key] for key in _PARTITION_KEYS if key in archive.files
            }
            return cls(
                item_ids=archive["item_ids"],
                vectors=archive["vectors"],
                probe_positions=archive["probe_positions"],
                centroids=partition_block.get("centroids"),
                assignments=partition_block.get("assignments"),
                representative_positions=partition_block.get("representative_positions"),
            )


def _top_n_by_score_then_position(
    scores: np.ndarray, positions: np.ndarray, n: int
) -> np.ndarray:
    """Indices of the top-``n`` entries under ``(-score, position)`` order.

    Equivalent to ``np.lexsort((positions, -scores))[:n]`` but partial: an
    O(m) ``argpartition`` finds the score boundary, position ties at the
    boundary are resolved by another partial selection, and only the ≤ n
    survivors pay for a sort.  The full lexsort over every scanned row was
    the single largest cost of an IVF probe at 100k items.
    """
    m = scores.shape[0]
    if n >= m:
        return np.lexsort((positions, -scores))
    boundary = scores[np.argpartition(-scores, n - 1)[n - 1]]
    above = np.flatnonzero(scores > boundary)
    need = n - above.size
    tied = np.flatnonzero(scores == boundary)
    if 0 < need < tied.size:
        tied = tied[np.argpartition(positions[tied], need - 1)[:need]]
    elif need <= 0:
        tied = tied[:0]
    survivors = np.concatenate([above, tied])
    order = survivors[np.lexsort((positions[survivors], -scores[survivors]))]
    return order[:n]


def _validate_query(index: ItemIndex, query: np.ndarray) -> np.ndarray:
    query = np.asarray(query, dtype=np.float64).reshape(-1)
    if query.shape[0] != index.vectors.shape[1]:
        raise ValueError(
            f"query must be the augmented (d + 1,) = ({index.vectors.shape[1]},) "
            f"vector, got shape {query.shape}"
        )
    return query


def _validate_offsets(
    index: ItemIndex, partition_offsets: Optional[np.ndarray]
) -> Optional[np.ndarray]:
    if partition_offsets is None:
        return None
    if not index.has_partitions:
        raise ValueError("partition_offsets given but the index has no partitions")
    offsets = np.asarray(partition_offsets, dtype=np.float64).reshape(-1)
    if offsets.shape[0] != index.n_partitions:
        raise ValueError(
            f"partition_offsets must have one entry per partition "
            f"({index.n_partitions}), got {offsets.shape[0]}"
        )
    return offsets


class ExactIndex:
    """Blocked brute-force search over an :class:`ItemIndex` — the oracle.

    ``search`` computes every item's inner product with the augmented query
    in row blocks (:func:`repro.nn.kernels.blocked_topk_matmul`), so memory
    stays flat in the catalog size while the result is exactly the global
    top-n, ties broken toward the lower catalog position (= lower item id,
    since ids are sorted at build).  ``partition_offsets`` — the query
    encoder's per-partition calibration — enter as a per-row bias inside the
    same blocked scan.
    """

    def __init__(self, index: ItemIndex, block_size: int = 8192):
        if block_size < 1:
            raise ValueError("block_size must be positive")
        self.index = index
        self.block_size = block_size

    def search(
        self,
        query: np.ndarray,
        n: int,
        partition_offsets: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Top-``n`` catalog items by retrieval score: ``(item_ids, scores)``."""
        query = _validate_query(self.index, query)
        offsets = _validate_offsets(self.index, partition_offsets)
        row_bias = None if offsets is None else offsets[self.index.assignments]
        positions, scores = kernels.blocked_topk_matmul(
            query, self.index.vectors, n,
            block_size=self.block_size, row_bias=row_bias,
        )
        return self.index.item_ids[positions], scores

    def __repr__(self) -> str:
        return f"ExactIndex({self.index!r}, block_size={self.block_size})"


class IVFIndex:
    """Inverted-file search over the index's k-means partitions.

    A query ranks the partition centroids and scans only the members of the
    best ``n_probe`` partitions, so the per-query cost is
    ``O(n_partitions · d + (n_probe / n_partitions) · n_items · d)`` instead
    of the exact scan's ``O(n_items · d)``.  Centroid ranking uses the
    centroid inner product plus the query's per-partition calibration offset
    when given — the same score model the members are ranked with.

    The partition block lives on the :class:`ItemIndex` (shared with the
    query encoder's calibration); constructing an ``IVFIndex`` builds it on
    demand via :meth:`ItemIndex.build_partitions`.

    Defaults: ``n_partitions = ⌈√n_items⌉`` and ``n_probe = ⌈n_partitions/4⌉``
    — the operating point the recall tests pin at ≥ 0.95 recall@100 on
    synthetic catalogs.  ``n_probe = n_partitions`` scans every partition and
    returns *exactly* the :class:`ExactIndex` result (parity-tested), so the
    trade-off dial goes all the way to "off".
    """

    def __init__(
        self,
        index: ItemIndex,
        n_partitions: Optional[int] = None,
        n_probe: Optional[int] = None,
        iterations: int = 8,
        seed: int = 0,
        block_size: int = 8192,
    ):
        index.build_partitions(n_partitions=n_partitions, iterations=iterations,
                               seed=seed, block_size=block_size)
        self.index = index
        self.n_partitions = index.n_partitions
        if n_probe is None:
            n_probe = int(np.ceil(self.n_partitions / 4))
        if not (1 <= n_probe <= self.n_partitions):
            raise ValueError(
                f"n_probe must be in [1, {self.n_partitions}], got {n_probe}"
            )
        self.n_probe = int(n_probe)
        self.block_size = block_size
        # Snapshot the partition block: build_partitions *replaces* the
        # index's arrays on a rebuild (it never mutates them in place), so
        # holding references keeps this instance internally consistent even
        # if another consumer later re-partitions the shared ItemIndex with a
        # different count.  (Offsets fitted against a different block are
        # rejected by the length check in search.)
        self._centroids = index.centroids
        self._assignments = index.assignments
        # Inverted file: catalog positions grouped by partition, stored as one
        # ordered array plus offsets (members of partition p are
        # _members[_offsets[p]:_offsets[p + 1]], ascending positions).  The
        # vectors are *copied* into that partition-major order so a probed
        # partition is scanned as a contiguous matmul slice — a per-query
        # fancy-indexed gather of the member rows would cost more than the
        # flops it saves.  (One extra copy of the catalog matrix, accepted.)
        order = np.argsort(self._assignments, kind="stable")
        self._members = order.astype(np.int64)
        counts = np.bincount(self._assignments, minlength=self.n_partitions)
        self._offsets = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
        self._partition_major_vectors = np.ascontiguousarray(index.vectors[self._members])

    @property
    def centroids(self) -> np.ndarray:
        """The centroid block this instance was built against (a snapshot)."""
        return self._centroids

    def search(
        self,
        query: np.ndarray,
        n: int,
        partition_offsets: Optional[np.ndarray] = None,
        n_probe: Optional[int] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Top-``n`` items from the ``n_probe`` best partitions.

        ``n_probe`` overrides the instance default per call (the recall/latency
        dial).  Results are ordered by ``(-score, catalog position)`` — the
        same contract as :meth:`ExactIndex.search`.
        """
        query = _validate_query(self.index, query)
        offsets = None
        if partition_offsets is not None:
            # Validate against *this instance's* partition count, not the
            # index's live block — offsets fitted after a re-partition of the
            # shared index must fail loudly, not silently mis-calibrate.
            offsets = np.asarray(partition_offsets, dtype=np.float64).reshape(-1)
            if offsets.shape[0] != self.n_partitions:
                raise ValueError(
                    f"partition_offsets must have one entry per partition "
                    f"({self.n_partitions}), got {offsets.shape[0]}"
                )
        if n < 1:
            raise ValueError("n must be at least 1")
        probe = self.n_probe if n_probe is None else int(n_probe)
        if not (1 <= probe <= self.n_partitions):
            raise ValueError(f"n_probe must be in [1, {self.n_partitions}], got {probe}")
        centroid_scores = self._centroids @ query
        if offsets is not None:
            centroid_scores = centroid_scores + offsets
        probed = kernels.top_k(centroid_scores, probe)
        position_chunks = []
        score_chunks = []
        for partition in probed:
            lo, hi = self._offsets[partition], self._offsets[partition + 1]
            chunk = self._partition_major_vectors[lo:hi] @ query
            if offsets is not None:
                chunk = chunk + offsets[partition]
            position_chunks.append(self._members[lo:hi])
            score_chunks.append(chunk)
        positions = np.concatenate(position_chunks)
        if positions.size == 0:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)
        scores = np.concatenate(score_chunks)
        order = _top_n_by_score_then_position(scores, positions, n)
        chosen = positions[order]
        return self.index.item_ids[chosen], scores[order]

    def __repr__(self) -> str:
        return (
            f"IVFIndex({self.index!r}, n_partitions={self.n_partitions}, "
            f"n_probe={self.n_probe})"
        )


def recall_at(reference_ids: np.ndarray, retrieved_ids: np.ndarray) -> float:
    """Fraction of ``reference_ids`` present in ``retrieved_ids``.

    The standard recall@N diagnostic: ``reference_ids`` is the exact top-N,
    ``retrieved_ids`` an approximate backend's top-N for the same query.
    """
    reference = np.asarray(reference_ids).reshape(-1)
    if reference.size == 0:
        return 1.0
    hits = np.isin(reference, np.asarray(retrieved_ids).reshape(-1)).sum()
    return float(hits) / float(reference.size)
