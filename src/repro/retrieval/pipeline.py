"""Two-stage retrieve → rank serving pipeline.

The production-recommender shape: a cheap index sweep narrows the catalog to
``n_retrieve`` candidates, then the exact model re-ranks the shortlist.  One
:class:`~repro.serving.engine.RankingPlan` is prepared per request and shared
by *both* stages — the query encoder fits its linear surrogate from it and
the re-ranker broadcasts it across the shortlist — so the model's per-user
work (the n˙²-cost dynamic view, the history K/V) is paid exactly once.

Complexity per request, catalog size N, shortlist C, probes p, partitions
k ≈ √N:

* retrieval — ``O(p + k)`` exact candidate scores (the query fit and the
  per-partition calibration) + one ``O(N · d)`` index sweep (IVF prunes this
  to the probed partitions);
* re-rank — ``O(C)`` exact candidate scores through the fast path.

versus ``O(N)`` exact candidate scores for single-stage ranking — the gap the
retrieval benchmark (``make bench-retrieve``) measures.  With an
:class:`~repro.retrieval.index.ExactIndex` backend and ``n_retrieve ≥ N`` the
pipeline degenerates to exact full-catalog ranking (the 1e-10 parity oracle
in the tests); narrowing ``n_retrieve`` trades that guarantee for speed,
with the shortfall measured as recall, never silently.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

import numpy as np

from repro.retrieval.index import ExactIndex, IVFIndex, ItemIndex
from repro.retrieval.query import EncodedQuery, QueryEncoder
from repro.serving.batcher import RankedCandidates, RecommendRequest
from repro.serving.engine import InferenceEngine
from repro.serving.protocol import (
    ERR_BAD_REQUEST,
    ProtocolError,
    RankedListHead,
    ServeDefaults,
    cache_stats_payload,
    cache_summary,
    parse_history,
    parse_int,
    parse_int_list,
    parse_positive_int,
    parse_topk_cut,
    require_mapping,
)

#: Search backends the pipeline can fan retrieval through.
Searcher = Union[ExactIndex, IVFIndex]

#: Default shortlist size handed to the re-ranker.
DEFAULT_N_RETRIEVE = 500


@dataclass
class RetrievalResult:
    """Stage-one output: the shortlist, before exact re-ranking.

    ``scores`` are *surrogate* scores (the linear fit of
    :class:`~repro.retrieval.query.QueryEncoder`), comparable within one
    query only; ``query`` carries the plan the re-rank stage reuses.
    """

    candidates: np.ndarray
    scores: np.ndarray
    query: EncodedQuery

    def __len__(self) -> int:
        return self.candidates.shape[0]


class RetrievePipeline:
    """Candidate generation fanned into the exact top-K re-ranker.

    Parameters
    ----------
    engine:
        Serving engine of the model the index was built from.
    searcher:
        An :class:`ExactIndex` or :class:`IVFIndex` over that model's catalog
        snapshot.
    n_retrieve:
        Default shortlist size (per-request overridable).
    """

    def __init__(
        self,
        engine: InferenceEngine,
        searcher: Searcher,
        n_retrieve: int = DEFAULT_N_RETRIEVE,
    ):
        if n_retrieve < 1:
            raise ValueError("n_retrieve must be at least 1")
        self.engine = engine
        self.searcher = searcher
        self.n_retrieve = n_retrieve
        self.encoder = QueryEncoder(engine, searcher.index)

    @property
    def index(self) -> ItemIndex:
        return self.searcher.index

    # ------------------------------------------------------------------ #
    # Stages
    # ------------------------------------------------------------------ #
    def retrieve(
        self,
        static_profile: Sequence[int],
        history: Sequence[int] = (),
        n: Optional[int] = None,
        history_mask: Optional[np.ndarray] = None,
        plan=None,
    ) -> RetrievalResult:
        """Stage one: encode the user's query and sweep the index."""
        n = self.n_retrieve if n is None else int(n)
        if n < 1:
            raise ValueError("n must be at least 1")
        query = self.encoder.encode(
            static_profile, history, history_mask=history_mask, plan=plan
        )
        candidates, scores = self.searcher.search(
            query.vector, n, partition_offsets=query.partition_offsets
        )
        return RetrievalResult(candidates=candidates, scores=scores, query=query)

    def retrieve_then_rank(
        self,
        static_profile: Sequence[int],
        k: int,
        history: Sequence[int] = (),
        n_retrieve: Optional[int] = None,
        history_mask: Optional[np.ndarray] = None,
    ) -> RankedCandidates:
        """Both stages: shortlist via the index, exact top-``k`` via the model.

        The plan prepared for the query encoder is handed straight to
        :meth:`~repro.serving.engine.InferenceEngine.rank_topk`, so the
        per-user model work is computed once for the whole request.  Returns
        the same :class:`~repro.serving.batcher.RankedCandidates` shape as the
        single-stage rank head — candidates (static-vocabulary ids) and exact
        model scores, best first.
        """
        if k < 1:
            raise ValueError("k must be at least 1")
        plan = self.engine.prepare_ranking(static_profile, history, history_mask)
        shortlist = self.retrieve(
            static_profile, history, n=n_retrieve, history_mask=history_mask, plan=plan
        )
        if len(shortlist) == 0:
            return RankedCandidates(
                candidates=np.empty(0, dtype=np.int64),
                scores=np.empty(0, dtype=np.float64),
            )
        top, scores = self.engine.rank_topk(
            static_profile, shortlist.candidates, k, plan=plan
        )
        return RankedCandidates(candidates=top, scores=scores)

    def __repr__(self) -> str:
        return (
            f"RetrievePipeline({self.searcher!r}, n_retrieve={self.n_retrieve})"
        )


class RecommendHead(RankedListHead):
    """The candidate-free serving head over :class:`RetrievePipeline`.

    Declared next to the pipeline it drives and registered into the default
    :class:`~repro.serving.protocol.HeadRegistry` — the serving layer knows
    nothing recommend-specific beyond this object.
    """

    name = "recommend"

    def validate_entry(self, entry) -> None:
        if entry.retriever is None:
            raise ProtocolError(
                ERR_BAD_REQUEST,
                f"model {entry.name!r} has no item index attached; build or "
                "load one first (ModelRegistry.build_index / load_index)",
            )

    def parse(self, payload: dict, defaults: ServeDefaults) -> RecommendRequest:
        payload = require_mapping(payload, self.name)
        if "static_indices" not in payload:
            raise ProtocolError(ERR_BAD_REQUEST,
                                "recommendation request is missing 'static_indices'")
        return RecommendRequest(
            static_indices=parse_int_list(payload["static_indices"], "static_indices"),
            history=parse_history(payload, defaults),
            user_id=parse_int(payload.get("user_id", -1), "user_id"),
            k=parse_topk_cut(payload, defaults),
            n_retrieve=parse_positive_int(payload, "n_retrieve",
                                          defaults.n_retrieve),
        )

    def execute(self, batcher, requests) -> list:
        return batcher.recommend_all(requests)

    def batch_stats(self, batcher, entry, cache, results) -> dict:
        return {
            "requests": batcher.stats.requests,
            "items_recommended": batcher.stats.rows_scored,
            "catalog_size": entry.index.num_items if entry.index is not None else 0,
            **cache_stats_payload(cache),
        }

    def describe(self, response: dict) -> str:
        stats = response["stats"]
        return (f"recommended {stats['items_recommended']} items across "
                f"{stats['requests']} requests from a "
                f"{stats['catalog_size']}-item catalog ({cache_summary(stats)})")
