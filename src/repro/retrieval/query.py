"""User-query encoding: turn one user's state into an index-searchable vector.

The exact SeqFM score is *not* an inner product between a user vector and an
item vector — the candidate's embedding passes through softmax attention and
the FFN, so no static item matrix can reproduce it exactly.  Retrieval does
not need it to: candidate generation only has to put the true winners inside
a few-hundred-item shortlist that the exact model then re-ranks.

:class:`QueryEncoder` builds a *calibrated linear surrogate* of the model's
scoring function for one user, empirically rather than analytically:

1. reuse the user's :class:`~repro.serving.engine.RankingPlan` — the same
   candidate-independent pass (dynamic view, history K/V, linear sums) the
   re-ranker needs anyway, so retrieval adds no second per-user model pass;
2. score the index's **probe items** (a spread sample) *and* — when the index
   carries partitions — each partition's **representative item** exactly,
   through one ranking-fast-path call (a few hundred candidates, catalog
   untouched);
3. least-squares fit ``score(i) ≈ q · e_i + w_i + b`` over those exact
   scores, where ``e_i``/``w_i`` are the item's embedding row and linear
   weight already in the index;
4. calibrate a **per-partition offset** — the representative's exact score
   minus its surrogate score.  The global fit captures the model's average
   linear response; the offsets capture the cluster-level nonlinearity (the
   candidate's self-attention response is quadratic in its embedding, so
   whole regions of embedding space score systematically higher or lower
   than any single linear functional can express).

Searching the index with the augmented vector ``[q, 1]`` plus the offsets
ranks the whole catalog by ``q·e_i + w_i + b + offset(partition(i))`` in one
blocked (or IVF-pruned) sweep.  The per-query cost is one fast-path call over
``p + n_partitions`` candidates plus a ``(p + n_partitions) × (d + 1)``
solve — independent of catalog size.

The surrogate is a retrieval heuristic, never a scoring shortcut: the final
ranking always comes from the exact engine
(:meth:`~repro.serving.engine.InferenceEngine.rank_topk`), and end-to-end
exactness/recall are measured in ``tests/test_retrieval.py`` and
``benchmarks/test_retrieval_throughput.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.retrieval.index import ItemIndex
from repro.serving.engine import InferenceEngine, RankingPlan


@dataclass
class EncodedQuery:
    """One user's retrieval query plus the plan it shares with the re-ranker.

    Attributes
    ----------
    vector:
        The augmented ``(d + 1,)`` query ``[q, 1]``; inner products with
        :attr:`ItemIndex.vectors` rows yield surrogate scores (up to
        :attr:`bias`, which is user-constant and cannot change the ranking).
    bias:
        The fitted intercept ``b``; add it to index scores to approximate the
        model score's absolute value (diagnostics only).
    partition_offsets:
        ``(n_partitions,)`` per-partition calibration — pass to
        ``search(..., partition_offsets=...)``; ``None`` when the index has
        no partition block.
    plan:
        The per-user :class:`RankingPlan`, ready to be handed to
        ``rank_candidates``/``rank_topk`` so the re-rank stage skips its own
        ``prepare_ranking`` pass.
    fit_residual:
        RMS error of the calibrated fit over the exactly-scored items — a
        per-query health signal (large residuals mean the surrogate is a poor
        proxy for this user and retrieval fan-out should widen).
    """

    vector: np.ndarray
    bias: float
    partition_offsets: Optional[np.ndarray]
    plan: RankingPlan
    fit_residual: float

    @property
    def dim(self) -> int:
        return self.vector.shape[0] - 1


class QueryEncoder:
    """Fit per-user calibrated linear queries against one :class:`ItemIndex`.

    Parameters
    ----------
    engine:
        The serving engine of the *same* model the index was snapshotted
        from; probe/representative scoring runs through its ranking fast
        path.
    index:
        The item index to encode queries for (its probe items define the
        fitting set; its partition representatives, when present, define the
        calibration set).
    """

    def __init__(self, engine: InferenceEngine, index: ItemIndex):
        if index.dim != engine.config.embed_dim:
            raise ValueError(
                f"index embedding dim {index.dim} does not match the model's "
                f"embed_dim {engine.config.embed_dim}"
            )
        self.engine = engine
        self.index = index

    def encode(
        self,
        static_profile: Sequence[int],
        history: Sequence[int] = (),
        history_mask: Optional[np.ndarray] = None,
        plan: Optional[RankingPlan] = None,
    ) -> EncodedQuery:
        """Build the user's query; reuses ``plan`` when the caller has one."""
        if plan is None:
            plan = self.engine.prepare_ranking(static_profile, history, history_mask)
        index = self.index
        probe_positions = index.probe_positions
        num_probes = probe_positions.shape[0]
        if index.has_partitions:
            positions = np.concatenate(
                [probe_positions, index.representative_positions]
            )
        else:
            positions = probe_positions
        exact_scores = self.engine.rank_candidates(
            plan.static_profile, index.item_ids[positions], plan=plan
        )
        # Fit score ≈ q·e + w + b  ⇔  (score − w) ≈ [e, 1] @ [q; b]
        embeddings = index.embeddings[positions]
        design = np.concatenate(
            [embeddings, np.ones((embeddings.shape[0], 1))], axis=1
        )
        target = exact_scores - index.weights[positions]
        solution, _, _, _ = np.linalg.lstsq(design, target, rcond=None)
        q, bias = solution[:-1], float(solution[-1])
        vector = np.concatenate([q, [1.0]])

        partition_offsets = None
        surrogate = index.vectors[positions] @ vector + bias
        if index.has_partitions:
            # offset_p = exact(rep_p) − surrogate(rep_p): the cluster-level
            # correction the linear functional cannot express.
            rep_exact = exact_scores[num_probes:]
            rep_surrogate = surrogate[num_probes:]
            partition_offsets = rep_exact - rep_surrogate
            calibrated = surrogate + partition_offsets[
                index.assignments[positions]
            ]
            residual = calibrated - exact_scores
        else:
            residual = surrogate - exact_scores
        fit_residual = float(np.sqrt(np.mean(residual**2)))
        return EncodedQuery(
            vector=vector,
            bias=bias,
            partition_offsets=partition_offsets,
            plan=plan,
            fit_residual=fit_residual,
        )

    def __repr__(self) -> str:
        return f"QueryEncoder({self.engine!r}, {self.index!r})"
