"""Baseline models the paper compares against (Section V-B).

Common baselines (all three tasks):
    FM, Wide&Deep, DeepCross, NFM, AFM.
Task-specific additional baselines:
    SASRec and TFM (ranking), DIN and xDeepFM (classification),
    RRN and HOFM (regression).

Every baseline is re-implemented on the same autograd/NN substrate as SeqFM
and exposes the same interface (forward over a
:class:`~repro.data.features.FeatureBatch`, returning one score per
instance), so the task heads, trainer and evaluation protocol are shared.
Sequence-agnostic baselines treat the dynamic history as unordered
set-category features, exactly how the paper feeds them.
"""

from repro.baselines.base import BaselineScorer
from repro.baselines.fm import FM
from repro.baselines.hofm import HOFM
from repro.baselines.wide_deep import WideDeep
from repro.baselines.deepcross import DeepCross
from repro.baselines.nfm import NFM
from repro.baselines.afm import AFM
from repro.baselines.sasrec import SASRec
from repro.baselines.tfm import TFM
from repro.baselines.din import DIN
from repro.baselines.xdeepfm import XDeepFM
from repro.baselines.rrn import RRN
from repro.baselines.deepfm import DeepFM
from repro.baselines.fnn import FNN
from repro.baselines.pnn import PNN

#: The baselines the paper's evaluation section compares against (Table II-IV).
BASELINE_REGISTRY = {
    "FM": FM,
    "HOFM": HOFM,
    "Wide&Deep": WideDeep,
    "DeepCross": DeepCross,
    "NFM": NFM,
    "AFM": AFM,
    "SASRec": SASRec,
    "TFM": TFM,
    "DIN": DIN,
    "xDeepFM": XDeepFM,
    "RRN": RRN,
}

#: Additional FM-family models discussed in the paper's related work
#: (Section VII); available through the same interface for extended studies.
EXTRA_BASELINE_REGISTRY = {
    "DeepFM": DeepFM,
    "FNN": FNN,
    "PNN": PNN,
}

__all__ = [
    "BaselineScorer",
    "FM",
    "HOFM",
    "WideDeep",
    "DeepCross",
    "NFM",
    "AFM",
    "SASRec",
    "TFM",
    "DIN",
    "XDeepFM",
    "RRN",
    "DeepFM",
    "FNN",
    "PNN",
    "BASELINE_REGISTRY",
    "EXTRA_BASELINE_REGISTRY",
]
