"""FNN — the FM-supported neural network (Zhang et al., ECIR 2016).

Cited in the paper's related work as one of the first DNN-based FM variants:
feature embeddings are pre-trained with a plain factorization machine and a
feed-forward network is then trained on top of the (fine-tuned) embeddings.
This implementation reproduces that two-stage structure: :meth:`pretrain`
runs a few FM epochs to initialise the embedding tables, after which the
usual trainer optimises the whole network end-to-end.
"""

from __future__ import annotations

from typing import Sequence

from repro.autograd.tensor import Tensor
from repro.baselines.base import BaselineScorer
from repro.baselines.fm import FM
from repro.data.features import EncodedExample, FeatureBatch
from repro.nn.layers import ReLU, Sequential
from repro.nn.linear import Linear


class FNN(BaselineScorer):
    """MLP over FM-initialised feature embeddings."""

    def __init__(
        self,
        static_vocab_size: int,
        dynamic_vocab_size: int,
        embed_dim: int = 32,
        hidden_dims: tuple = (64, 32),
        seed: int = 0,
    ):
        super().__init__(static_vocab_size, dynamic_vocab_size, embed_dim, seed)
        layers = []
        previous = 3 * embed_dim
        for hidden in hidden_dims:
            layers.append(Linear(previous, hidden, rng=self.rng))
            layers.append(ReLU())
            previous = hidden
        layers.append(Linear(previous, 1, rng=self.rng))
        self.mlp = Sequential(*layers)

    def forward(self, batch: FeatureBatch) -> Tensor:
        static = self.embed_static(batch)
        user_embedding = static[:, 0, :]
        candidate_embedding = static[:, 1, :]
        history_embedding = self.history_mean(batch)
        mlp_input = Tensor.concatenate(
            [user_embedding, candidate_embedding, history_embedding], axis=-1
        )
        return self.linear_term(batch) + self.mlp(mlp_input).squeeze(axis=-1)

    def pretrain(
        self,
        train_examples: Sequence[EncodedExample],
        epochs: int = 2,
        learning_rate: float = 5e-3,
        batch_size: int = 128,
        seed: int = 0,
    ) -> None:
        """Initialise the embedding tables with a short plain-FM training run.

        A throw-away :class:`~repro.baselines.fm.FM` sharing the same
        vocabulary is trained on the squared error of the labels (the
        pre-training objective of the original FNN paper applied to our
        encoded instances) and its embedding and linear tables are copied in.
        """
        from repro.core.tasks import make_task_model
        from repro.data.batching import BatchIterator
        from repro.nn.optim import Adam

        fm = FM(self.static_embedding.num_embeddings, self.dynamic_embedding.num_embeddings,
                embed_dim=self.embed_dim, seed=seed)
        task = make_task_model(fm, "regression")
        optimizer = Adam(fm.parameters(), lr=learning_rate)
        iterator = BatchIterator(train_examples, batch_size=batch_size, seed=seed)
        for _ in range(max(epochs, 0)):
            for batch in iterator:
                optimizer.zero_grad()
                loss = task.loss(batch)
                loss.backward()
                optimizer.step()

        self.static_embedding.weight.data[...] = fm.static_embedding.weight.data
        self.dynamic_embedding.weight.data[...] = fm.dynamic_embedding.weight.data
        self.static_linear.data[...] = fm.static_linear.data
        self.dynamic_linear.data[...] = fm.dynamic_linear.data
        self.global_bias.data[...] = fm.global_bias.data
