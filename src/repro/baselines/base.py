"""Shared scaffolding for every baseline model.

All baselines consume the same :class:`~repro.data.features.FeatureBatch` as
SeqFM: indices of the static features (user + candidate object) and the
padded dynamic history with its validity mask.  This base class owns the
embedding tables, the first-order linear term and a handful of helpers
(masked history mean, per-feature embedding stacks) so each baseline file
only contains its distinctive interaction structure.
"""

from __future__ import annotations

import numpy as np

from repro.autograd.tensor import Tensor, no_grad
from repro.data.features import FeatureBatch
from repro.nn.embedding import Embedding
from repro.nn.module import Module, Parameter


class BaselineScorer(Module):
    """Common state for baseline scorers.

    Parameters
    ----------
    static_vocab_size / dynamic_vocab_size:
        Vocabulary sizes of the static and dynamic feature spaces; use the
        values exposed by :class:`~repro.data.features.FeatureEncoder`.
    embed_dim:
        Latent dimension of the feature embeddings.
    seed:
        Seed of the initialisation generator.
    """

    def __init__(
        self,
        static_vocab_size: int,
        dynamic_vocab_size: int,
        embed_dim: int = 32,
        seed: int = 0,
    ):
        super().__init__()
        if static_vocab_size < 1 or dynamic_vocab_size < 1:
            raise ValueError("vocabulary sizes must be positive")
        if embed_dim < 1:
            raise ValueError("embed_dim must be positive")
        self.embed_dim = embed_dim
        self.rng = np.random.default_rng(seed)
        self.static_embedding = Embedding(static_vocab_size, embed_dim, rng=self.rng)
        self.dynamic_embedding = Embedding(dynamic_vocab_size, embed_dim, padding_idx=0, rng=self.rng)
        self.global_bias = Parameter(np.zeros(1), name="bias")
        self.static_linear = Parameter(np.zeros(static_vocab_size), name="w_static")
        self.dynamic_linear = Parameter(np.zeros(dynamic_vocab_size), name="w_dynamic")

    # ------------------------------------------------------------------ #
    # Shared building blocks
    # ------------------------------------------------------------------ #
    def linear_term(self, batch: FeatureBatch) -> Tensor:
        """First-order term w₀ + Σ wᵢ over the non-zero features."""
        static_weights = self.static_linear.gather_rows(batch.static_indices).sum(axis=-1)
        dynamic_weights = self.dynamic_linear.gather_rows(batch.dynamic_indices)
        dynamic_sum = (dynamic_weights * Tensor(batch.dynamic_mask)).sum(axis=-1)
        return self.global_bias + static_weights + dynamic_sum

    def embed_static(self, batch: FeatureBatch) -> Tensor:
        """(batch, n_static, d) embeddings of the static features."""
        return self.static_embedding(batch.static_indices)

    def embed_dynamic(self, batch: FeatureBatch) -> Tensor:
        """(batch, n_dyn, d) embeddings of the history with padding rows zeroed."""
        embedded = self.dynamic_embedding(batch.dynamic_indices)
        return embedded * Tensor(batch.dynamic_mask[..., None])

    def history_mean(self, batch: FeatureBatch) -> Tensor:
        """(batch, d) masked mean of the history embeddings (set-category view)."""
        embedded = self.embed_dynamic(batch)
        counts = np.maximum(batch.dynamic_mask.sum(axis=-1, keepdims=True), 1.0)
        return embedded.sum(axis=-2) / Tensor(counts)

    def history_sum(self, batch: FeatureBatch) -> Tensor:
        """(batch, d) masked sum of the history embeddings."""
        return self.embed_dynamic(batch).sum(axis=-2)

    def all_feature_embeddings(self, batch: FeatureBatch) -> tuple:
        """Stack static + dynamic feature embeddings as one (batch, n, d) tensor.

        Returns ``(embeddings, valid_mask)`` where ``valid_mask`` marks the
        real (non-padding) rows; the set-category FM family interacts over all
        of these features without regard to order.
        """
        static = self.embed_static(batch)
        dynamic = self.embed_dynamic(batch)
        combined = Tensor.concatenate([static, dynamic], axis=-2)
        static_valid = np.ones(batch.static_indices.shape, dtype=np.float64)
        valid = np.concatenate([static_valid, batch.dynamic_mask], axis=-1)
        return combined, valid

    # ------------------------------------------------------------------ #
    # Inference helper shared with SeqFM's interface
    # ------------------------------------------------------------------ #
    def score(self, batch: FeatureBatch) -> np.ndarray:
        """Inference-mode scores as a plain array (no graph construction)."""
        was_training = self.training
        self.eval()
        try:
            with no_grad():
                scores = self.forward(batch).data
        finally:
            self.train(was_training)
        return scores
