"""Deep Crossing (Shan et al., KDD 2016).

Stacks residual units on top of the concatenated feature embeddings: each
residual unit is a two-layer MLP whose output is added back to its input
(the "residual network blocks upon the concatenation layer" described in the
paper's related-work discussion), followed by a scoring layer.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autograd.tensor import Tensor
from repro.baselines.base import BaselineScorer
from repro.data.features import FeatureBatch
from repro.nn.linear import Linear
from repro.nn.module import Module


class _ResidualUnit(Module):
    """y = x + W₂·relu(W₁·x + b₁) + b₂ with a hidden expansion."""

    def __init__(self, dim: int, hidden_dim: int, rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.expand = Linear(dim, hidden_dim, rng=rng)
        self.project = Linear(hidden_dim, dim, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return x + self.project(self.expand(x).relu()).relu()


class DeepCross(BaselineScorer):
    """Residual-block MLP over the concatenation of feature embeddings."""

    def __init__(
        self,
        static_vocab_size: int,
        dynamic_vocab_size: int,
        embed_dim: int = 32,
        num_residual_units: int = 2,
        hidden_dim: int = 64,
        seed: int = 0,
    ):
        super().__init__(static_vocab_size, dynamic_vocab_size, embed_dim, seed)
        if num_residual_units < 1:
            raise ValueError("num_residual_units must be positive")
        input_dim = 3 * embed_dim  # user + candidate + pooled history
        self.residual_units = [
            _ResidualUnit(input_dim, hidden_dim, rng=self.rng) for _ in range(num_residual_units)
        ]
        self.scoring = Linear(input_dim, 1, rng=self.rng)

    def forward(self, batch: FeatureBatch) -> Tensor:
        static = self.embed_static(batch)
        user_embedding = static[:, 0, :]
        candidate_embedding = static[:, 1, :]
        history_embedding = self.history_mean(batch)
        hidden = Tensor.concatenate(
            [user_embedding, candidate_embedding, history_embedding], axis=-1
        )
        for unit in self.residual_units:
            hidden = unit(hidden)
        deep_score = self.scoring(hidden).squeeze(axis=-1)
        return self.linear_term(batch) + deep_score
