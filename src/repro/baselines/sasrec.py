"""SASRec: Self-Attentive Sequential Recommendation (Kang & McAuley, ICDM 2018).

A causal self-attention block (with learned position embeddings) encodes the
user's history; the representation at the most recent position is matched
against the candidate item's embedding by inner product.  SASRec is a purely
sequential model: it does not use the user identity beyond the history, which
is exactly why the paper observes it degrading on sparser datasets.
"""

from __future__ import annotations

import numpy as np

from repro.autograd.tensor import Tensor
from repro.baselines.base import BaselineScorer
from repro.core import masks as mask_lib
from repro.data.features import FeatureBatch
from repro.nn import init
from repro.nn.attention import SelfAttention
from repro.nn.feedforward import ResidualFeedForward
from repro.nn.module import Parameter


class SASRec(BaselineScorer):
    """Causal self-attention over the history, scored against the candidate."""

    def __init__(
        self,
        static_vocab_size: int,
        dynamic_vocab_size: int,
        embed_dim: int = 32,
        max_seq_len: int = 20,
        dropout: float = 0.2,
        seed: int = 0,
    ):
        super().__init__(static_vocab_size, dynamic_vocab_size, embed_dim, seed)
        self.max_seq_len = max_seq_len
        self.position_embedding = Parameter(
            init.embedding_normal((max_seq_len, embed_dim), self.rng), name="positions"
        )
        self.attention = SelfAttention(embed_dim, rng=self.rng)
        self.feed_forward = ResidualFeedForward(embed_dim, num_layers=1, dropout=dropout, rng=self.rng)

    def forward(self, batch: FeatureBatch) -> Tensor:
        seq_len = batch.dynamic_indices.shape[1]
        if seq_len > self.max_seq_len:
            raise ValueError(
                f"sequence length {seq_len} exceeds the model's max_seq_len {self.max_seq_len}"
            )
        history = self.embed_dynamic(batch)                        # (batch, n, d)
        positions = self.position_embedding[-seq_len:, :]          # align to the most recent slots
        history = history + positions.expand_dims(0)

        causal = mask_lib.causal_mask(seq_len)[None, :, :]
        padding = mask_lib.padding_key_mask(batch.dynamic_mask)
        attention_mask = mask_lib.combine_masks(causal, padding)

        encoded = self.attention(history, mask=attention_mask)
        encoded = self.feed_forward(encoded)
        latest = encoded[:, -1, :]                                  # representation of "now"

        # The candidate item lives in the dynamic vocabulary (shift by +1 for padding).
        candidate_indices = self._candidate_dynamic_indices(batch)
        candidate_embedding = self.dynamic_embedding(candidate_indices)
        score = (latest * candidate_embedding).sum(axis=-1)
        return score + self.linear_term(batch)

    def _candidate_dynamic_indices(self, batch: FeatureBatch) -> np.ndarray:
        """Map the candidate's static index back to its dynamic-vocabulary index.

        The encoder lays the static vocabulary out as [users | objects] and the
        dynamic vocabulary as [padding | objects] in the same object order, so
        the candidate's dynamic index is ``static_index - num_users + 1``.
        """
        num_users = self.static_embedding.num_embeddings - (self.dynamic_embedding.num_embeddings - 1)
        return batch.static_indices[:, 1] - num_users + 1
