"""Higher-Order Factorization Machine (Blondel et al., NIPS 2016).

Adds a third-order interaction term on top of the plain FM using the degree-3
ANOVA kernel, computed per latent dimension with Newton's identities:

``A₃ = (p₁³ − 3·p₁·p₂ + 2·p₃) / 6``

where ``p_k = Σᵢ v_{if}^k`` are the power sums of the feature embeddings.
This is the time-efficient kernel formulation HOFM is known for, with a
separate embedding table for the third-order factors.
"""

from __future__ import annotations

import numpy as np

from repro.autograd.tensor import Tensor
from repro.baselines.base import BaselineScorer
from repro.data.features import FeatureBatch
from repro.nn.embedding import Embedding


class HOFM(BaselineScorer):
    """Factorization machine with second- and third-order ANOVA kernels."""

    def __init__(
        self,
        static_vocab_size: int,
        dynamic_vocab_size: int,
        embed_dim: int = 32,
        third_order_dim: int = 16,
        seed: int = 0,
    ):
        super().__init__(static_vocab_size, dynamic_vocab_size, embed_dim, seed)
        if third_order_dim < 1:
            raise ValueError("third_order_dim must be positive")
        self.third_order_dim = third_order_dim
        self.static_embedding3 = Embedding(static_vocab_size, third_order_dim, rng=self.rng)
        self.dynamic_embedding3 = Embedding(
            dynamic_vocab_size, third_order_dim, padding_idx=0, rng=self.rng
        )

    def forward(self, batch: FeatureBatch) -> Tensor:
        return self.linear_term(batch) + self._second_order(batch) + self._third_order(batch)

    def _second_order(self, batch: FeatureBatch) -> Tensor:
        embeddings, valid = self.all_feature_embeddings(batch)
        masked = embeddings * Tensor(valid[..., None])
        p1 = masked.sum(axis=-2)
        p2 = (masked * masked).sum(axis=-2)
        return (p1 * p1 - p2).sum(axis=-1) * 0.5

    def _third_order(self, batch: FeatureBatch) -> Tensor:
        static = self.static_embedding3(batch.static_indices)
        dynamic = self.dynamic_embedding3(batch.dynamic_indices) * Tensor(batch.dynamic_mask[..., None])
        combined = Tensor.concatenate([static, dynamic], axis=-2)
        static_valid = np.ones(batch.static_indices.shape, dtype=np.float64)
        valid = np.concatenate([static_valid, batch.dynamic_mask], axis=-1)
        masked = combined * Tensor(valid[..., None])

        p1 = masked.sum(axis=-2)
        p2 = (masked * masked).sum(axis=-2)
        p3 = (masked * masked * masked).sum(axis=-2)
        anova3 = (p1 * p1 * p1 - p1 * p2 * 3.0 + p3 * 2.0) * (1.0 / 6.0)
        return anova3.sum(axis=-1)
