"""Translation-based Factorization Machine (Pasricha & McAuley, RecSys 2018).

TFM models sequential recommendation as a translation in embedding space: the
embedding of the *most recent* item, translated by a user-specific vector,
should land close to the embedding of the next item.  The score of a
candidate is the negative squared Euclidean distance between the translated
point and the candidate embedding, plus first-order bias terms.  As the SeqFM
paper points out, TFM only looks at the last item of the dynamic sequence —
which is exactly the limitation the dynamic view of SeqFM removes.
"""

from __future__ import annotations

import numpy as np

from repro.autograd.tensor import Tensor
from repro.baselines.base import BaselineScorer
from repro.data.features import FeatureBatch
from repro.nn.embedding import Embedding


class TFM(BaselineScorer):
    """Last-item translation model with FM-style linear terms."""

    def __init__(
        self,
        static_vocab_size: int,
        dynamic_vocab_size: int,
        embed_dim: int = 32,
        num_users: int = None,
        seed: int = 0,
    ):
        super().__init__(static_vocab_size, dynamic_vocab_size, embed_dim, seed)
        # The user translation table needs the user count; by the encoder's
        # layout it equals static_vocab − (dynamic_vocab − 1).
        inferred_users = static_vocab_size - (dynamic_vocab_size - 1)
        self.num_users = num_users if num_users is not None else max(inferred_users, 1)
        self.user_translation = Embedding(self.num_users, embed_dim, rng=self.rng, std=0.01)

    def forward(self, batch: FeatureBatch) -> Tensor:
        last_item = self._last_item_embedding(batch)                  # (batch, d)
        user_indices = batch.static_indices[:, 0]
        translation = self.user_translation(user_indices)             # (batch, d)

        candidate_indices = self._candidate_dynamic_indices(batch)
        candidate_embedding = self.dynamic_embedding(candidate_indices)

        translated = last_item + translation
        difference = translated - candidate_embedding
        distance = (difference * difference).sum(axis=-1)
        return self.linear_term(batch) - distance

    def _last_item_embedding(self, batch: FeatureBatch) -> Tensor:
        """Embedding of the most recent real history item.

        Histories are left-padded, so the last column is the most recent event
        whenever the history is non-empty; users with an empty history fall
        back to the (zero) padding embedding, i.e. pure-translation scoring.
        """
        last_indices = batch.dynamic_indices[:, -1]
        return self.dynamic_embedding(last_indices)

    def _candidate_dynamic_indices(self, batch: FeatureBatch) -> np.ndarray:
        num_users = self.static_embedding.num_embeddings - (self.dynamic_embedding.num_embeddings - 1)
        return batch.static_indices[:, 1] - num_users + 1
