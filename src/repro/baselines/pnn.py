"""PNN — Product-based Neural Network (Qu et al., ICDM 2016).

Cited in the paper's related work: between the embedding layer and the DNN,
PNN inserts a *product layer* whose units are inner products (IPNN) or outer
products (OPNN) of pairs of field embeddings, concatenated with the raw
field embeddings.  This implementation provides the inner-product variant
over the three fields used throughout the baseline suite (user, candidate,
pooled history).
"""

from __future__ import annotations

import numpy as np

from repro.autograd.tensor import Tensor
from repro.baselines.base import BaselineScorer
from repro.data.features import FeatureBatch
from repro.nn.layers import ReLU, Sequential
from repro.nn.linear import Linear


class PNN(BaselineScorer):
    """Inner-product PNN over [user, candidate, history] field embeddings."""

    def __init__(
        self,
        static_vocab_size: int,
        dynamic_vocab_size: int,
        embed_dim: int = 32,
        hidden_dims: tuple = (64, 32),
        seed: int = 0,
    ):
        super().__init__(static_vocab_size, dynamic_vocab_size, embed_dim, seed)
        self.num_fields = 3
        num_pairs = self.num_fields * (self.num_fields - 1) // 2
        layers = []
        previous = self.num_fields * embed_dim + num_pairs
        for hidden in hidden_dims:
            layers.append(Linear(previous, hidden, rng=self.rng))
            layers.append(ReLU())
            previous = hidden
        layers.append(Linear(previous, 1, rng=self.rng))
        self.mlp = Sequential(*layers)

    def forward(self, batch: FeatureBatch) -> Tensor:
        fields = self._field_embeddings(batch)                          # (batch, 3, d)
        flat = fields.reshape(fields.shape[0], self.num_fields * self.embed_dim)

        # Inner products of every field pair form the product layer.
        row_index, col_index = np.triu_indices(self.num_fields, k=1)
        left = fields[:, row_index, :]
        right = fields[:, col_index, :]
        inner_products = (left * right).sum(axis=-1)                    # (batch, num_pairs)

        mlp_input = Tensor.concatenate([flat, inner_products], axis=-1)
        return self.linear_term(batch) + self.mlp(mlp_input).squeeze(axis=-1)

    def _field_embeddings(self, batch: FeatureBatch) -> Tensor:
        static = self.embed_static(batch)
        history = self.history_mean(batch).expand_dims(1)
        return Tensor.concatenate([static, history], axis=1)
