"""Plain Factorization Machine (Rendle, ICDM 2010) — Eq. 2 of the paper.

Second-order interactions over all non-zero features (static + set-category
history) computed with the standard sum-of-squares identity:

``Σ_{i<j} ⟨vᵢ, vⱼ⟩ = ½ Σ_f [ (Σᵢ v_{if})² − Σᵢ v_{if}² ]``

which is O(n·d) instead of O(n²·d).
"""

from __future__ import annotations

from repro.autograd.tensor import Tensor
from repro.baselines.base import BaselineScorer
from repro.data.features import FeatureBatch


class FM(BaselineScorer):
    """Second-order factorization machine over set-category features."""

    def forward(self, batch: FeatureBatch) -> Tensor:
        embeddings, valid = self.all_feature_embeddings(batch)
        masked = embeddings * Tensor(valid[..., None])
        sum_of_embeddings = masked.sum(axis=-2)            # (batch, d)
        sum_of_squares = (masked * masked).sum(axis=-2)    # (batch, d)
        pairwise = (sum_of_embeddings * sum_of_embeddings - sum_of_squares).sum(axis=-1) * 0.5
        return self.linear_term(batch) + pairwise
