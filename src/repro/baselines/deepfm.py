"""DeepFM (Guo et al., IJCAI 2017).

A hybrid "wide & deep" FM variant discussed in the paper's related work: the
FM component (first-order + second-order interactions over the shared
embeddings) and a DNN component over the concatenated field embeddings are
trained jointly and summed into the prediction.  Unlike Wide&Deep the wide
part is a full FM rather than a plain linear model, and both parts share the
same embedding tables.
"""

from __future__ import annotations

from repro.autograd.tensor import Tensor
from repro.baselines.base import BaselineScorer
from repro.data.features import FeatureBatch
from repro.nn.layers import ReLU, Sequential
from repro.nn.linear import Linear


class DeepFM(BaselineScorer):
    """FM component + DNN component over shared embeddings."""

    def __init__(
        self,
        static_vocab_size: int,
        dynamic_vocab_size: int,
        embed_dim: int = 32,
        hidden_dims: tuple = (64, 32),
        seed: int = 0,
    ):
        super().__init__(static_vocab_size, dynamic_vocab_size, embed_dim, seed)
        layers = []
        previous = 3 * embed_dim  # user + candidate + pooled history fields
        for hidden in hidden_dims:
            layers.append(Linear(previous, hidden, rng=self.rng))
            layers.append(ReLU())
            previous = hidden
        layers.append(Linear(previous, 1, rng=self.rng))
        self.dnn = Sequential(*layers)

    def forward(self, batch: FeatureBatch) -> Tensor:
        return self.linear_term(batch) + self._fm_component(batch) + self._deep_component(batch)

    def _fm_component(self, batch: FeatureBatch) -> Tensor:
        embeddings, valid = self.all_feature_embeddings(batch)
        masked = embeddings * Tensor(valid[..., None])
        sum_of_embeddings = masked.sum(axis=-2)
        sum_of_squares = (masked * masked).sum(axis=-2)
        return (sum_of_embeddings * sum_of_embeddings - sum_of_squares).sum(axis=-1) * 0.5

    def _deep_component(self, batch: FeatureBatch) -> Tensor:
        static = self.embed_static(batch)
        user_embedding = static[:, 0, :]
        candidate_embedding = static[:, 1, :]
        history_embedding = self.history_mean(batch)
        deep_input = Tensor.concatenate(
            [user_embedding, candidate_embedding, history_embedding], axis=-1
        )
        return self.dnn(deep_input).squeeze(axis=-1)
