"""Wide&Deep (Cheng et al., DLRS 2016).

The wide component is the first-order linear term over the raw sparse
features; the deep component is a multi-layer perceptron over the
concatenation of the user embedding, the candidate-object embedding and the
mean-pooled history embedding (the standard way of feeding set-category
features to the deep tower).  The two components are summed into the final
score, as in the original paper.
"""

from __future__ import annotations

from repro.autograd.tensor import Tensor
from repro.baselines.base import BaselineScorer
from repro.data.features import FeatureBatch
from repro.nn.layers import ReLU, Sequential
from repro.nn.linear import Linear


class WideDeep(BaselineScorer):
    """Wide (linear) + Deep (MLP over concatenated embeddings) model."""

    def __init__(
        self,
        static_vocab_size: int,
        dynamic_vocab_size: int,
        embed_dim: int = 32,
        hidden_dims: tuple = (64, 32),
        seed: int = 0,
    ):
        super().__init__(static_vocab_size, dynamic_vocab_size, embed_dim, seed)
        input_dim = 3 * embed_dim  # user + candidate + pooled history
        layers = []
        previous = input_dim
        for hidden in hidden_dims:
            layers.append(Linear(previous, hidden, rng=self.rng))
            layers.append(ReLU())
            previous = hidden
        layers.append(Linear(previous, 1, rng=self.rng))
        self.deep_tower = Sequential(*layers)

    def forward(self, batch: FeatureBatch) -> Tensor:
        static = self.embed_static(batch)                       # (batch, 2, d)
        user_embedding = static[:, 0, :]
        candidate_embedding = static[:, 1, :]
        history_embedding = self.history_mean(batch)
        deep_input = Tensor.concatenate(
            [user_embedding, candidate_embedding, history_embedding], axis=-1
        )
        deep_score = self.deep_tower(deep_input).squeeze(axis=-1)
        return self.linear_term(batch) + deep_score
