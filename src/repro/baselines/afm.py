"""Attentional Factorization Machine (Xiao et al., IJCAI 2017).

Every pair of non-zero features contributes the element-wise product of its
embeddings; a small attention network scores each pair, the scores are
softmax-normalised over the valid pairs, and the attended sum is projected to
the prediction with a weight vector p.  First-order linear terms are added as
in the plain FM.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.baselines.base import BaselineScorer
from repro.core.masks import NEG_INF
from repro.data.features import FeatureBatch
from repro.nn import init
from repro.nn.linear import Linear
from repro.nn.module import Parameter


class AFM(BaselineScorer):
    """FM with pairwise attention over the interaction terms."""

    def __init__(
        self,
        static_vocab_size: int,
        dynamic_vocab_size: int,
        embed_dim: int = 32,
        attention_dim: int = 16,
        seed: int = 0,
    ):
        super().__init__(static_vocab_size, dynamic_vocab_size, embed_dim, seed)
        if attention_dim < 1:
            raise ValueError("attention_dim must be positive")
        self.attention_mlp = Linear(embed_dim, attention_dim, rng=self.rng)
        self.attention_vector = Parameter(
            init.xavier_uniform((attention_dim,), self.rng), name="attention_vector"
        )
        self.projection = Parameter(init.xavier_uniform((embed_dim,), self.rng), name="p")

    def forward(self, batch: FeatureBatch) -> Tensor:
        embeddings, valid = self.all_feature_embeddings(batch)  # (batch, n, d)
        num_features = embeddings.shape[-2]
        row_index, col_index = np.triu_indices(num_features, k=1)

        left = embeddings[:, row_index, :]    # (batch, num_pairs, d)
        right = embeddings[:, col_index, :]
        pairwise = left * right

        # A pair is valid only when both of its features are real (not padding).
        pair_valid = valid[:, row_index] * valid[:, col_index]      # (batch, num_pairs)

        attention_hidden = self.attention_mlp(pairwise).relu()      # (batch, num_pairs, a)
        attention_scores = attention_hidden @ self.attention_vector  # (batch, num_pairs)
        attention_scores = attention_scores + Tensor(np.where(pair_valid > 0, 0.0, NEG_INF))
        attention_weights = F.softmax(attention_scores, axis=-1)

        attended = (pairwise * attention_weights.expand_dims(-1)).sum(axis=-2)  # (batch, d)
        interaction_score = attended @ self.projection
        return self.linear_term(batch) + interaction_score
