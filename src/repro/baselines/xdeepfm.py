"""xDeepFM (Lian et al., KDD 2018).

Combines three components:

* the first-order linear term,
* a Compressed Interaction Network (CIN) that builds explicit vector-wise
  feature interactions layer by layer — layer k computes outer products
  between the k-th order interaction maps and the raw field embeddings and
  compresses them with learned weights,
* a plain DNN over the concatenated field embeddings (implicit interactions).

Fields here are: user, candidate object and the pooled history — the same
field granularity the other deep baselines use, so comparisons are apples to
apples on the shared substrate.
"""

from __future__ import annotations

from typing import List

from repro.autograd.tensor import Tensor
from repro.baselines.base import BaselineScorer
from repro.data.features import FeatureBatch
from repro.nn import init
from repro.nn.layers import ReLU, Sequential
from repro.nn.linear import Linear
from repro.nn.module import Parameter


class XDeepFM(BaselineScorer):
    """CIN + DNN + linear model over [user, candidate, history] fields."""

    def __init__(
        self,
        static_vocab_size: int,
        dynamic_vocab_size: int,
        embed_dim: int = 32,
        cin_layer_sizes: tuple = (8, 8),
        hidden_dims: tuple = (64, 32),
        seed: int = 0,
    ):
        super().__init__(static_vocab_size, dynamic_vocab_size, embed_dim, seed)
        self.num_fields = 3
        self.cin_layer_sizes = tuple(cin_layer_sizes)

        # CIN weights: layer k maps (previous_maps × num_fields) products to
        # cin_layer_sizes[k] feature maps.
        self.cin_weights: List[Parameter] = []
        previous_maps = self.num_fields
        for layer_index, layer_size in enumerate(self.cin_layer_sizes):
            weight = Parameter(
                init.xavier_uniform((previous_maps * self.num_fields, layer_size), self.rng),
                name=f"cin_{layer_index}",
            )
            self.cin_weights.append(weight)
            previous_maps = layer_size
        total_cin_maps = sum(self.cin_layer_sizes)
        self.cin_output = Linear(total_cin_maps, 1, rng=self.rng)

        layers = []
        previous = self.num_fields * embed_dim
        for hidden in hidden_dims:
            layers.append(Linear(previous, hidden, rng=self.rng))
            layers.append(ReLU())
            previous = hidden
        layers.append(Linear(previous, 1, rng=self.rng))
        self.dnn = Sequential(*layers)

    def forward(self, batch: FeatureBatch) -> Tensor:
        fields = self._field_embeddings(batch)                         # (batch, fields, d)
        cin_score = self._cin(fields)
        flat = fields.reshape(fields.shape[0], self.num_fields * self.embed_dim)
        dnn_score = self.dnn(flat).squeeze(axis=-1)
        return self.linear_term(batch) + cin_score + dnn_score

    # ------------------------------------------------------------------ #
    # Components
    # ------------------------------------------------------------------ #
    def _field_embeddings(self, batch: FeatureBatch) -> Tensor:
        static = self.embed_static(batch)                              # (batch, 2, d)
        history = self.history_mean(batch).expand_dims(1)              # (batch, 1, d)
        return Tensor.concatenate([static, history], axis=1)           # (batch, 3, d)

    def _cin(self, fields: Tensor) -> Tensor:
        """Compressed interaction network over the field embeddings."""
        batch_size = fields.shape[0]
        base = fields                                                  # (batch, m, d)
        current = fields
        pooled_layers = []
        for weight, layer_size in zip(self.cin_weights, self.cin_layer_sizes):
            # Outer product along the embedding dimension:
            #   z[b, i, j, :] = current[b, i, :] * base[b, j, :]
            z = current.expand_dims(2) * base.expand_dims(1)           # (batch, h_prev, m, d)
            h_prev = current.shape[1]
            z = z.reshape(batch_size, h_prev * self.num_fields, self.embed_dim)
            # Compress the interaction maps with learned weights.
            next_maps = z.swapaxes(1, 2) @ weight                      # (batch, d, layer_size)
            current = next_maps.swapaxes(1, 2)                         # (batch, layer_size, d)
            pooled_layers.append(current.sum(axis=-1))                 # (batch, layer_size)
        pooled = Tensor.concatenate(pooled_layers, axis=-1)
        return self.cin_output(pooled).squeeze(axis=-1)
