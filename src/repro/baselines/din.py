"""Deep Interest Network (Zhou et al., KDD 2018).

DIN represents the user's interest w.r.t. a *specific* candidate item: an
activation unit scores every history item against the candidate (from the
concatenation of the two embeddings and their element-wise product), the
history is pooled with those activation weights, and an MLP over
[user, candidate, activated history] produces the prediction.  Unlike
self-attention models DIN does not model the order of the history — the
weights depend only on candidate/history similarity — which is why the SeqFM
paper lists it as a strong but sequence-unaware CTR baseline.
"""

from __future__ import annotations

from repro.autograd.tensor import Tensor
from repro.baselines.base import BaselineScorer
from repro.data.features import FeatureBatch
from repro.nn.layers import ReLU, Sequential
from repro.nn.linear import Linear


class DIN(BaselineScorer):
    """Candidate-conditioned attention pooling over the history + MLP."""

    def __init__(
        self,
        static_vocab_size: int,
        dynamic_vocab_size: int,
        embed_dim: int = 32,
        activation_hidden: int = 32,
        hidden_dims: tuple = (64, 32),
        seed: int = 0,
    ):
        super().__init__(static_vocab_size, dynamic_vocab_size, embed_dim, seed)
        self.activation_unit = Sequential(
            Linear(3 * embed_dim, activation_hidden, rng=self.rng),
            ReLU(),
            Linear(activation_hidden, 1, rng=self.rng),
        )
        layers = []
        previous = 3 * embed_dim
        for hidden in hidden_dims:
            layers.append(Linear(previous, hidden, rng=self.rng))
            layers.append(ReLU())
            previous = hidden
        layers.append(Linear(previous, 1, rng=self.rng))
        self.prediction_mlp = Sequential(*layers)

    def forward(self, batch: FeatureBatch) -> Tensor:
        static = self.embed_static(batch)
        user_embedding = static[:, 0, :]
        candidate_embedding = static[:, 1, :]
        history = self.embed_dynamic(batch)                           # (batch, n, d)
        seq_len = history.shape[1]

        candidate_tiled = candidate_embedding.expand_dims(1)          # (batch, 1, d)
        candidate_broadcast = Tensor.concatenate([candidate_tiled] * seq_len, axis=1)
        activation_input = Tensor.concatenate(
            [history, candidate_broadcast, history * candidate_broadcast], axis=-1
        )
        activation_weights = self.activation_unit(activation_input).squeeze(axis=-1)  # (batch, n)
        # DIN uses un-normalised activation weights; padding positions are zeroed.
        activation_weights = activation_weights * Tensor(batch.dynamic_mask)
        interest = (history * activation_weights.expand_dims(-1)).sum(axis=-2)        # (batch, d)

        mlp_input = Tensor.concatenate([user_embedding, candidate_embedding, interest], axis=-1)
        deep_score = self.prediction_mlp(mlp_input).squeeze(axis=-1)
        return self.linear_term(batch) + deep_score
