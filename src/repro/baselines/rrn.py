"""Recurrent Recommender Network (Wu et al., WSDM 2017).

RRN models the *temporal dynamics* of rating behaviour with a recurrent
network over the user's rated-item sequence; the recurrent state is combined
with stationary user/item latent factors to predict the rating.  This
reproduction uses a single-layer GRU over the history embeddings (the
original uses an LSTM; the gating behaviour relevant to the comparison —
carrying long-range sequential state — is the same) and predicts

``ŷ = ⟨u, v⟩ + w·[h_T ; v] + linear terms``

where h_T is the final recurrent state.
"""

from __future__ import annotations

import numpy as np

from repro.autograd.tensor import Tensor
from repro.baselines.base import BaselineScorer
from repro.data.features import FeatureBatch
from repro.nn.linear import Linear
from repro.nn.module import Module


class _GRUCell(Module):
    """Minimal GRU cell: update/reset gates + candidate state."""

    def __init__(self, input_dim: int, hidden_dim: int, rng: np.random.Generator):
        super().__init__()
        self.update_gate = Linear(input_dim + hidden_dim, hidden_dim, rng=rng)
        self.reset_gate = Linear(input_dim + hidden_dim, hidden_dim, rng=rng)
        self.candidate = Linear(input_dim + hidden_dim, hidden_dim, rng=rng)

    def forward(self, x: Tensor, hidden: Tensor) -> Tensor:
        combined = Tensor.concatenate([x, hidden], axis=-1)
        update = self.update_gate(combined).sigmoid()
        reset = self.reset_gate(combined).sigmoid()
        candidate_input = Tensor.concatenate([x, hidden * reset], axis=-1)
        candidate = self.candidate(candidate_input).tanh()
        return hidden * update + candidate * (1.0 - update)


class RRN(BaselineScorer):
    """GRU over the rated-item history plus stationary latent factors."""

    def __init__(
        self,
        static_vocab_size: int,
        dynamic_vocab_size: int,
        embed_dim: int = 32,
        hidden_dim: int = 32,
        seed: int = 0,
    ):
        super().__init__(static_vocab_size, dynamic_vocab_size, embed_dim, seed)
        self.hidden_dim = hidden_dim
        self.cell = _GRUCell(embed_dim, hidden_dim, self.rng)
        self.output_layer = Linear(hidden_dim + embed_dim, 1, rng=self.rng)

    def forward(self, batch: FeatureBatch) -> Tensor:
        static = self.embed_static(batch)
        user_embedding = static[:, 0, :]
        candidate_embedding = static[:, 1, :]
        history = self.embed_dynamic(batch)                           # (batch, n, d)
        mask = batch.dynamic_mask                                     # (batch, n)
        batch_size, seq_len = mask.shape

        hidden = Tensor(np.zeros((batch_size, self.hidden_dim)))
        for step in range(seq_len):
            step_input = history[:, step, :]
            step_mask = Tensor(mask[:, step][:, None])
            updated = self.cell(step_input, hidden)
            # Keep the previous state on padded steps so left-padding is a no-op.
            hidden = updated * step_mask + hidden * (1.0 - step_mask)

        stationary = (user_embedding * candidate_embedding).sum(axis=-1)
        dynamic_score = self.output_layer(
            Tensor.concatenate([hidden, candidate_embedding], axis=-1)
        ).squeeze(axis=-1)
        return self.linear_term(batch) + stationary + dynamic_score
