"""Neural Factorization Machine (He & Chua, SIGIR 2017).

Replaces the FM's inner-product interaction with a *bi-interaction pooling*
layer — the element-wise counterpart of the sum-of-squares identity —

``f_BI(x) = ½ [ (Σᵢ xᵢvᵢ)² − Σᵢ (xᵢvᵢ)² ]  ∈ R^d``

followed by a small MLP ("hidden layers") and a projection to the scalar
prediction, plus the usual first-order linear term.
"""

from __future__ import annotations

from repro.autograd.tensor import Tensor
from repro.baselines.base import BaselineScorer
from repro.data.features import FeatureBatch
from repro.nn.layers import Dropout, ReLU, Sequential
from repro.nn.linear import Linear


class NFM(BaselineScorer):
    """FM with bi-interaction pooling and an MLP on top."""

    def __init__(
        self,
        static_vocab_size: int,
        dynamic_vocab_size: int,
        embed_dim: int = 32,
        hidden_dims: tuple = (64,),
        dropout: float = 0.2,
        seed: int = 0,
    ):
        super().__init__(static_vocab_size, dynamic_vocab_size, embed_dim, seed)
        layers = []
        previous = embed_dim
        for hidden in hidden_dims:
            layers.append(Linear(previous, hidden, rng=self.rng))
            layers.append(ReLU())
            layers.append(Dropout(dropout, rng=self.rng))
            previous = hidden
        layers.append(Linear(previous, 1, rng=self.rng))
        self.hidden_layers = Sequential(*layers)

    def forward(self, batch: FeatureBatch) -> Tensor:
        embeddings, valid = self.all_feature_embeddings(batch)
        masked = embeddings * Tensor(valid[..., None])
        sum_of_embeddings = masked.sum(axis=-2)
        sum_of_squares = (masked * masked).sum(axis=-2)
        bi_interaction = (sum_of_embeddings * sum_of_embeddings - sum_of_squares) * 0.5
        deep_score = self.hidden_layers(bi_interaction).squeeze(axis=-1)
        return self.linear_term(batch) + deep_score
