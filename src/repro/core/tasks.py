"""Task heads: ranking, classification and regression (Section IV).

Each task wrapper binds a *scorer* — any module mapping a
:class:`~repro.data.features.FeatureBatch` to a score tensor, i.e. SeqFM or
any of the baselines — to the paper's task-specific loss:

* ranking  → Bayesian Personalised Ranking loss over (positive, negative)
  candidate pairs (Eq. 21);
* classification → sigmoid output with log loss over observed positives and
  sampled negatives (Eq. 23-24);
* regression → squared error against the ground-truth rating (Eq. 26).

The ``SeqFM*`` aliases construct the SeqFM scorer directly from a config so
that ``SeqFMRanker(config)`` reads like the paper.

At inference time the serving layer mirrors these heads one-to-one:
:class:`repro.serving.registry.ModelRegistry` exposes ``rank`` / ``classify``
/ ``regress`` endpoints whose outputs match :meth:`TaskModel.predict` and
:meth:`ClassificationTask.predict_probability` exactly, without building an
autograd graph.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.core.config import SeqFMConfig
from repro.core.model import SeqFM
from repro.data.features import FeatureBatch
from repro.nn import kernels
from repro.nn.module import Module


def _check_fused_shape(fused_batch: FeatureBatch, num_positives: int,
                       negatives_per_positive: int) -> None:
    expected = num_positives * (1 + negatives_per_positive)
    if num_positives < 1 or negatives_per_positive < 1:
        raise ValueError("fused loss needs at least one positive and one negative draw")
    if len(fused_batch) != expected:
        raise ValueError(
            f"fused batch has {len(fused_batch)} rows; expected "
            f"{num_positives} positives x (1 + {negatives_per_positive}) = {expected}"
        )


class TaskModel(Module):
    """Common base: wraps a scorer module and exposes prediction helpers."""

    task: str = ""

    def __init__(self, scorer: Module):
        super().__init__()
        self.scorer = scorer

    def forward(self, batch: FeatureBatch) -> Tensor:
        return self.scorer(batch)

    def predict(self, batch: FeatureBatch) -> np.ndarray:
        """Inference-mode raw scores (eval mode, gradients discarded)."""
        return self.scorer.score(batch)

    def loss(self, batch: FeatureBatch, negative_batch: Optional[FeatureBatch] = None) -> Tensor:
        raise NotImplementedError

    def fused_loss(self, fused_batch: FeatureBatch, num_positives: int,
                   negatives_per_positive: int) -> Tensor:
        """Loss over a fused (positive + all negative draws) batch.

        ``fused_batch`` is laid out by
        :meth:`repro.data.features.FeatureBatch.with_candidates`: the first
        ``num_positives`` rows are the positives, followed by
        ``negatives_per_positive`` draw-major blocks of negatives (row
        ``num_positives + d*num_positives + i`` pairs with positive ``i``).
        One forward/backward pass over the fused batch replaces the
        ``negatives_per_positive`` separate passes of the looped trainer; the
        value equals the looped average of per-draw losses exactly (up to
        floating-point summation order).
        """
        raise NotImplementedError(f"{type(self).__name__} does not define a fused loss")


class RankingTask(TaskModel):
    """BPR-optimised ranking (next-POI recommendation, Section IV-A)."""

    task = "ranking"

    def loss(self, batch: FeatureBatch, negative_batch: Optional[FeatureBatch] = None) -> Tensor:
        if negative_batch is None:
            raise ValueError("ranking loss requires a negative candidate batch")
        positive_scores = self.forward(batch)
        negative_scores = self.forward(negative_batch)
        return F.bpr_loss(positive_scores, negative_scores)

    def fused_loss(self, fused_batch: FeatureBatch, num_positives: int,
                   negatives_per_positive: int) -> Tensor:
        """Pairwise BPR over every (positive, draw) pair in one pass.

        The looped trainer averages ``k`` per-draw BPR means, each over ``B``
        pairs — identical to the mean over all ``k·B`` pairs computed here.
        """
        _check_fused_shape(fused_batch, num_positives, negatives_per_positive)
        scores = self.forward(fused_batch)
        positive_scores = scores[:num_positives]
        negative_scores = scores[num_positives:].reshape(
            negatives_per_positive, num_positives
        )
        # (B,) broadcast against (k, B): every draw pairs with its positive.
        return F.bpr_loss(positive_scores, negative_scores)


class ClassificationTask(TaskModel):
    """Sigmoid + log-loss classification (CTR prediction, Section IV-B)."""

    task = "classification"

    def loss(self, batch: FeatureBatch, negative_batch: Optional[FeatureBatch] = None) -> Tensor:
        logits = self.forward(batch)
        labels = batch.labels
        if negative_batch is not None:
            negative_logits = self.forward(negative_batch)
            logits = Tensor.concatenate([logits, negative_logits], axis=0)
            labels = np.concatenate([labels, np.zeros(len(negative_batch))])
        return F.binary_cross_entropy_with_logits(logits, labels)

    def fused_loss(self, fused_batch: FeatureBatch, num_positives: int,
                   negatives_per_positive: int) -> Tensor:
        """Per-row log loss over the fused block, weighted to match the loop.

        The looped trainer averages ``k`` per-draw means, each over the ``2B``
        rows ``[positives; draw_d]`` — so every positive row is counted once
        per draw while each negative row appears in exactly one draw.  The
        equivalent single-pass weighting is ``1/(2B)`` per positive row and
        ``1/(2Bk)`` per negative row.
        """
        _check_fused_shape(fused_batch, num_positives, negatives_per_positive)
        logits = self.forward(fused_batch)
        num_negatives = num_positives * negatives_per_positive
        per_example = F.softplus(logits) - Tensor(fused_batch.labels) * logits
        weights = np.concatenate([
            np.full(num_positives, 1.0 / (2 * num_positives)),
            np.full(num_negatives, 1.0 / (2 * num_positives * negatives_per_positive)),
        ])
        return (per_example * Tensor(weights)).sum()

    def predict_probability(self, batch: FeatureBatch) -> np.ndarray:
        """σ(ŷ) ∈ (0, 1): the click probability of Eq. 23."""
        return kernels.sigmoid(self.predict(batch))


class RegressionTask(TaskModel):
    """Squared-error regression (rating prediction, Section IV-C)."""

    task = "regression"

    def loss(self, batch: FeatureBatch, negative_batch: Optional[FeatureBatch] = None) -> Tensor:
        if negative_batch is not None:
            raise ValueError("regression does not use negative sampling (paper §IV-C)")
        predictions = self.forward(batch)
        return F.mse_loss(predictions, batch.labels)


class SeqFMRanker(RankingTask):
    """SeqFM bound to the BPR ranking loss."""

    def __init__(self, config: SeqFMConfig):
        super().__init__(SeqFM(config))
        self.config = config


class SeqFMClassifier(ClassificationTask):
    """SeqFM bound to the sigmoid/log-loss classification head."""

    def __init__(self, config: SeqFMConfig):
        super().__init__(SeqFM(config))
        self.config = config


class SeqFMRegressor(RegressionTask):
    """SeqFM bound to the squared-error regression head."""

    def __init__(self, config: SeqFMConfig):
        super().__init__(SeqFM(config))
        self.config = config


_TASK_WRAPPERS = {
    "ranking": RankingTask,
    "classification": ClassificationTask,
    "regression": RegressionTask,
}


def make_task_model(scorer: Module, task: str) -> TaskModel:
    """Wrap any scorer (SeqFM or a baseline) with the requested task head."""
    if task not in _TASK_WRAPPERS:
        raise ValueError(f"unknown task {task!r}; expected one of {sorted(_TASK_WRAPPERS)}")
    return _TASK_WRAPPERS[task](scorer)
