"""Mini-batch Adam training loop shared by SeqFM and every baseline.

The trainer implements the optimisation strategy of Section IV-D: Adam with
mini-batches, task-specific losses, negative sampling for the ranking and
classification tasks, and iteration until the loss converges (bounded by a
maximum epoch count).  Optional per-epoch validation with early stopping is
provided for the experiment harness.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.core.tasks import TaskModel
from repro.data.batching import BatchIterator
from repro.data.features import EncodedExample, FeatureBatch, FeatureEncoder
from repro.data.sampling import NegativeSampler
from repro.nn.optim import Adam


@dataclass
class TrainerConfig:
    """Knobs of the training loop.

    Attributes
    ----------
    epochs:
        Maximum number of passes over the training instances.
    batch_size:
        Mini-batch size (paper: 512; scaled-down default 128).
    learning_rate:
        Adam learning rate (paper: 1e-4 on the full-size datasets; the
        reproduction defaults to 5e-3 which converges within a few epochs on
        the scaled-down synthetic data).
    negatives_per_positive:
        Number of sampled negatives per positive training instance for the
        ranking / classification tasks (paper: 5).
    convergence_tolerance:
        Stop when the absolute relative change of the epoch loss falls below
        this.
    fused_negatives:
        Train through the fused fast path: positive and all sampled negatives
        collated into one ``batch*(1+k)``-row forward/backward pass per step
        (default).  Disable to fall back to one forward/backward pass per
        negative draw.  Both paths draw identical negatives and optimise the
        same objective; with dropout disabled their losses are equal up to
        summation order, while with dropout active they realise different
        (equally valid) dropout masks — the fused pass draws one mask per
        step where the looped pass redraws per forward.
    divergence_tolerance:
        Relative per-epoch loss *worsening* that counts as a divergence step.
        Deliberately percent-level — far above ``convergence_tolerance`` — so
        ordinary stochastic epoch-loss noise (fresh negative draws, reshuffled
        batches) near a plateau is never mistaken for divergence.
    divergence_patience:
        Stop (recording ``stop_reason='diverged'``) after this many
        *consecutive* epochs whose loss worsened by more than
        ``divergence_tolerance``.  ``0`` disables divergence stopping.
    seed:
        Seed controlling shuffling and negative sampling inside the loop.
    verbose:
        Print one line per epoch.
    """

    epochs: int = 10
    batch_size: int = 128
    learning_rate: float = 5e-3
    negatives_per_positive: int = 2
    convergence_tolerance: float = 1e-4
    fused_negatives: bool = True
    divergence_tolerance: float = 0.05
    divergence_patience: int = 3
    seed: int = 0
    verbose: bool = False


@dataclass
class TrainingResult:
    """What :meth:`Trainer.fit` returns.

    Attributes
    ----------
    epoch_losses:
        Mean training loss per epoch, in order.
    train_seconds:
        Wall-clock time spent inside the optimisation loop.
    epochs_run:
        Number of epochs actually executed (early convergence may stop sooner).
    validation_history:
        Metric dictionaries produced by the validation callback, one per epoch
        (empty when no callback was supplied).
    stop_reason:
        Why the loop ended: ``"converged"`` (relative loss change below the
        convergence tolerance), ``"diverged"`` (loss worsened beyond the
        divergence tolerance for ``divergence_patience`` consecutive epochs)
        or ``"max_epochs"``.
    """

    epoch_losses: List[float] = field(default_factory=list)
    train_seconds: float = 0.0
    epochs_run: int = 0
    validation_history: List[Dict[str, float]] = field(default_factory=list)
    stop_reason: str = "max_epochs"

    @property
    def final_loss(self) -> float:
        return self.epoch_losses[-1] if self.epoch_losses else float("nan")


class Trainer:
    """Task-aware training loop.

    Parameters
    ----------
    task_model:
        A :class:`~repro.core.tasks.TaskModel` wrapping SeqFM or a baseline.
    encoder:
        The feature encoder (needed to swap candidate objects when building
        negative batches).
    sampler:
        Negative sampler over the training log; required for the ranking and
        classification tasks, unused for regression.
    config:
        :class:`TrainerConfig` instance.
    """

    def __init__(
        self,
        task_model: TaskModel,
        encoder: FeatureEncoder,
        sampler: Optional[NegativeSampler] = None,
        config: Optional[TrainerConfig] = None,
    ):
        self.task_model = task_model
        self.encoder = encoder
        self.sampler = sampler
        self.config = config or TrainerConfig()
        if task_model.task in ("ranking", "classification") and sampler is None:
            raise ValueError(f"{task_model.task} training requires a negative sampler")
        self.optimizer = Adam(task_model.parameters(), lr=self.config.learning_rate)

    # ------------------------------------------------------------------ #
    # Fitting
    # ------------------------------------------------------------------ #
    def fit(
        self,
        train_examples: Sequence[EncodedExample],
        validation_callback: Optional[Callable[[TaskModel], Dict[str, float]]] = None,
    ) -> TrainingResult:
        """Run the optimisation loop and return its :class:`TrainingResult`."""
        if len(train_examples) == 0:
            raise ValueError("Trainer.fit received no training examples")
        iterator = BatchIterator(
            train_examples,
            batch_size=self.config.batch_size,
            shuffle=True,
            seed=self.config.seed,
        )
        self._initialise_output_bias(train_examples)
        result = TrainingResult()
        start_time = time.perf_counter()
        previous_loss = None
        divergence_streak = 0

        for epoch in range(self.config.epochs):
            self.task_model.train()
            epoch_loss = self._run_epoch(iterator)
            result.epoch_losses.append(epoch_loss)
            result.epochs_run = epoch + 1

            if validation_callback is not None:
                self.task_model.eval()
                result.validation_history.append(validation_callback(self.task_model))

            if self.config.verbose:
                print(f"epoch {epoch + 1}/{self.config.epochs}: loss={epoch_loss:.5f}")

            if previous_loss is not None and previous_loss != 0:
                relative_improvement = (previous_loss - epoch_loss) / abs(previous_loss)
                if abs(relative_improvement) < self.config.convergence_tolerance:
                    result.stop_reason = "converged"
                    break
                if relative_improvement < -self.config.divergence_tolerance:
                    divergence_streak += 1
                    if (self.config.divergence_patience
                            and divergence_streak >= self.config.divergence_patience):
                        result.stop_reason = "diverged"
                        break
                else:
                    divergence_streak = 0
            previous_loss = epoch_loss

        result.train_seconds = time.perf_counter() - start_time
        self.task_model.eval()
        return result

    def _initialise_output_bias(self, train_examples: Sequence[EncodedExample]) -> None:
        """Warm-start the scorer's global bias at the mean training label.

        For the regression task the targets are centred far from zero (ratings
        live in [1, 5]); starting the global bias at the label mean removes the
        many optimisation steps every model would otherwise spend just learning
        the offset.  Applied identically to SeqFM and all baselines, so the
        comparison stays fair.
        """
        if self.task_model.task != "regression":
            return
        scorer = getattr(self.task_model, "scorer", None)
        bias = getattr(scorer, "global_bias", None)
        if bias is None:
            return
        labels = np.array([example.label for example in train_examples], dtype=np.float64)
        if labels.size:
            bias.data[...] = labels.mean()

    # ------------------------------------------------------------------ #
    # One epoch
    # ------------------------------------------------------------------ #
    def _run_epoch(self, iterator: BatchIterator) -> float:
        total_loss = 0.0
        total_batches = 0
        for batch in iterator:
            loss_value = self._train_step(batch)
            total_loss += loss_value
            total_batches += 1
        return total_loss / max(total_batches, 1)

    def _train_step(self, batch: FeatureBatch) -> float:
        task = self.task_model.task
        self.optimizer.zero_grad()

        if task == "regression":
            loss = self.task_model.loss(batch)
        else:
            loss = self._loss_with_negatives(batch, task)

        loss.backward()
        self.optimizer.step()
        return float(loss.item())

    def _loss_with_negatives(self, batch: FeatureBatch, task: str):
        """Average task loss over ``negatives_per_positive`` negative draws.

        The negatives are always drawn the same way (one :meth:`sample_batch`
        call per draw, so both paths consume the sampler's generator
        identically); what differs is the execution strategy:

        * **fused** (default) — all draws are collated with the positives into
          one ``batch*(1+k)``-row :class:`FeatureBatch` and pushed through a
          single forward/backward pass (:meth:`TaskModel.fused_loss`);
        * **looped** — one forward/backward per draw, averaged.

        With a deterministic forward (dropout off) both produce the same loss
        value up to floating-point summation order; with dropout they differ
        only in mask realisation (see :class:`TrainerConfig`).
        """
        num_draws = self.config.negatives_per_positive
        if num_draws < 1:
            raise ValueError("negatives_per_positive must be at least 1 for "
                             f"{task} training")
        if self.config.fused_negatives:
            negatives = np.stack([
                self.sampler.sample_batch(batch.user_ids, batch.object_ids)
                for _ in range(num_draws)
            ])
            fused = batch.with_candidates(self.encoder, negatives)
            return self.task_model.fused_loss(fused, len(batch), num_draws)

        losses = []
        for _ in range(num_draws):
            negative_objects = self.sampler.sample_batch(batch.user_ids, batch.object_ids)
            negative_batch = batch.with_candidate(self.encoder, negative_objects)
            losses.append(self.task_model.loss(batch, negative_batch))
        if len(losses) == 1:
            return losses[0]
        total = losses[0]
        for extra in losses[1:]:
            total = total + extra
        return total * (1.0 / len(losses))
