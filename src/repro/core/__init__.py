"""The paper's primary contribution: the Sequence-Aware Factorization Machine.

Public API
----------
* :class:`~repro.core.config.SeqFMConfig` — hyper-parameters (d, l, n˙, ρ, ...)
  and the ablation switches used by Table V.
* :class:`~repro.core.model.SeqFM` — the multi-view self-attentive
  factorisation model (Eq. 3-19).
* :class:`~repro.core.tasks.SeqFMRanker`, :class:`~repro.core.tasks.SeqFMClassifier`,
  :class:`~repro.core.tasks.SeqFMRegressor` — task wrappers binding SeqFM to
  the BPR / log / squared-error losses of Section IV.
* :class:`~repro.core.trainer.Trainer` / :class:`~repro.core.trainer.TrainingResult`
  — the mini-batch Adam training loop shared by SeqFM and every baseline.
* :func:`~repro.core.grid_search.grid_search` — the hyper-parameter search
  procedure of Section IV-D.
"""

from repro.core.config import SeqFMConfig
from repro.core.masks import causal_mask, cross_view_mask, padding_key_mask, NEG_INF
from repro.core.model import SeqFM
from repro.core.tasks import SeqFMRanker, SeqFMClassifier, SeqFMRegressor, make_task_model
from repro.core.trainer import Trainer, TrainerConfig, TrainingResult
from repro.core.grid_search import grid_search, GridSearchResult

__all__ = [
    "SeqFMConfig",
    "SeqFM",
    "causal_mask",
    "cross_view_mask",
    "padding_key_mask",
    "NEG_INF",
    "SeqFMRanker",
    "SeqFMClassifier",
    "SeqFMRegressor",
    "make_task_model",
    "Trainer",
    "TrainerConfig",
    "TrainingResult",
    "grid_search",
    "GridSearchResult",
]
