"""Checkpointing: save and restore trained models and experiment results.

Models are stored as a single ``.npz`` archive containing every parameter
array plus a JSON-encoded configuration, so a checkpoint is self-describing:
:func:`load_seqfm` rebuilds the exact architecture before loading the
weights.  Baselines (and arbitrary modules) can be round-tripped with the
weight-only helpers as long as the caller reconstructs the module first.

Experiment results (ResultTable objects) are exported to JSON so benchmark
runs can be archived and compared across commits.
"""

from __future__ import annotations

import contextlib
import dataclasses
import json
import os
from pathlib import Path
from typing import IO, Iterator, Union

import numpy as np

from repro.core.config import SeqFMConfig
from repro.core.model import SeqFM
from repro.experiments.reporting import ResultTable
from repro.nn.module import Module

PathLike = Union[str, Path]

_CONFIG_KEY = "__seqfm_config_json__"


# --------------------------------------------------------------------------- #
# Atomic on-disk writes
# --------------------------------------------------------------------------- #
@contextlib.contextmanager
def atomic_write(path: PathLike, mode: str = "wb") -> Iterator[IO]:
    """Write ``path`` atomically: temp file → flush+fsync → rename.

    A crash at any point leaves either the previous contents or the complete
    new ones — never a torn file.  The temp file lives next to the target
    (``os.replace`` must not cross filesystems) and is removed on failure;
    after the rename the parent directory is fsynced so the new directory
    entry itself is durable.  All checkpoint, index and snapshot writers go
    through this helper.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp_path = path.parent / f".{path.name}.tmp.{os.getpid()}"
    try:
        with open(tmp_path, mode) as handle:
            yield handle
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp_path)
        raise
    _fsync_directory(path.parent)


def _fsync_directory(directory: Path) -> None:
    """Make a directory entry durable (no-op where dirs cannot be opened)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # e.g. Windows — rename durability is best-effort there
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def atomic_write_text(path: PathLike, text: str) -> None:
    """Atomically replace ``path`` with ``text`` (UTF-8)."""
    with atomic_write(path, "w") as handle:
        handle.write(text)


# --------------------------------------------------------------------------- #
# Weight-only (module-agnostic) helpers
# --------------------------------------------------------------------------- #
def save_weights(module: Module, path: PathLike) -> None:
    """Save every parameter of ``module`` into a compressed ``.npz`` archive."""
    path = Path(path)
    state = module.state_dict()
    # savez appends ".npz" to bare paths, so hand it an open handle instead:
    # the archive lands in the temp file and is renamed into place whole.
    with atomic_write(path) as handle:
        np.savez_compressed(handle, **state)


def load_weights(module: Module, path: PathLike) -> None:
    """Load parameters saved with :func:`save_weights` into ``module``."""
    path = Path(path)
    with np.load(path) as archive:
        state = {name: archive[name] for name in archive.files if name != _CONFIG_KEY}
    module.load_state_dict(state)


# --------------------------------------------------------------------------- #
# Self-describing SeqFM checkpoints
# --------------------------------------------------------------------------- #
def save_seqfm(model: SeqFM, path: PathLike) -> None:
    """Save a SeqFM model together with its configuration."""
    path = Path(path)
    state = model.state_dict()
    config_json = json.dumps(dataclasses.asdict(model.config))
    state[_CONFIG_KEY] = np.frombuffer(config_json.encode("utf-8"), dtype=np.uint8)
    with atomic_write(path) as handle:
        np.savez_compressed(handle, **state)


def load_seqfm(path: PathLike) -> SeqFM:
    """Rebuild a SeqFM model from a checkpoint written by :func:`save_seqfm`."""
    path = Path(path)
    with np.load(path) as archive:
        if _CONFIG_KEY not in archive.files:
            raise ValueError(f"{path} is not a SeqFM checkpoint (missing embedded config)")
        config_json = bytes(archive[_CONFIG_KEY].tolist()).decode("utf-8")
        state = {name: archive[name] for name in archive.files if name != _CONFIG_KEY}
    config = SeqFMConfig(**json.loads(config_json))
    model = SeqFM(config)
    model.load_state_dict(state)
    return model


# --------------------------------------------------------------------------- #
# Experiment result export
# --------------------------------------------------------------------------- #
def save_result_table(table: ResultTable, path: PathLike) -> None:
    """Export a ResultTable (title, columns, rows, metadata) as JSON."""
    payload = {
        "title": table.title,
        "columns": list(table.columns),
        "rows": table.as_dict(),
        "metadata": _jsonable(table.metadata),
    }
    atomic_write_text(path, json.dumps(payload, indent=2, sort_keys=True))


def load_result_table(path: PathLike) -> ResultTable:
    """Load a ResultTable exported by :func:`save_result_table`."""
    payload = json.loads(Path(path).read_text())
    table = ResultTable(title=payload["title"], columns=list(payload["columns"]),
                        metadata=payload.get("metadata", {}))
    for name, values in payload["rows"].items():
        table.add_row(name, values)
    return table


def _jsonable(value):
    """Best-effort conversion of metadata values into JSON-serialisable types."""
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)
