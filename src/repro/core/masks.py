"""Attention masks for the dynamic and cross views (Eq. 10 and Eq. 13).

The paper's masks contain 0 for allowed feature interactions and −∞ for
blocked ones; this implementation uses a large negative constant so that the
softmax stays numerically well-defined even on rows where every column is
blocked (which can happen for fully-padded sequences) — the resulting uniform
attention over an all-padding row contributes nothing because padding
embeddings are pinned to zero and padded positions are excluded from the
intra-view pooling.
"""

from __future__ import annotations

import numpy as np

#: Finite stand-in for the paper's −∞ mask entries.
NEG_INF = -1e9


def causal_mask(seq_len: int) -> np.ndarray:
    """Dynamic-view mask M˙ (Eq. 10): position i may attend to j only if j ≤ i."""
    if seq_len < 1:
        raise ValueError("seq_len must be positive")
    mask = np.full((seq_len, seq_len), NEG_INF, dtype=np.float64)
    mask[np.tril_indices(seq_len)] = 0.0
    return mask


def cross_view_mask(num_static: int, seq_len: int) -> np.ndarray:
    """Cross-view mask M* (Eq. 13).

    Rows/columns 0..num_static-1 are static features, the rest dynamic.  Entry
    (i, j) is 0 only when exactly one of i, j is static — the mask blocks all
    within-category interactions and keeps only static↔dynamic ones.
    """
    if num_static < 1 or seq_len < 1:
        raise ValueError("view sizes must be positive")
    total = num_static + seq_len
    is_static = np.arange(total) < num_static
    allowed = is_static[:, None] != is_static[None, :]
    mask = np.where(allowed, 0.0, NEG_INF)
    return mask.astype(np.float64)


def padding_key_mask(valid_mask: np.ndarray) -> np.ndarray:
    """Additive mask that blocks attention *to* padded sequence positions.

    ``valid_mask`` has shape (batch, seq_len) with 1 for real events; the
    returned mask has shape (batch, 1, seq_len) and is added to the attention
    scores so queries cannot attend to padding keys.  The paper handles
    padding by zero embeddings; explicitly masking the keys additionally keeps
    the softmax mass on real events, which matters for short histories.
    """
    valid = np.asarray(valid_mask, dtype=np.float64)
    if valid.ndim != 2:
        raise ValueError("valid_mask must have shape (batch, seq_len)")
    return np.where(valid[:, None, :] > 0, 0.0, NEG_INF)


def combine_masks(*masks: np.ndarray) -> np.ndarray:
    """Sum additive masks with broadcasting, clipping to the NEG_INF floor."""
    combined = masks[0]
    for mask in masks[1:]:
        combined = combined + mask
    return np.maximum(combined, NEG_INF)
