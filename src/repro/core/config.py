"""SeqFM hyper-parameters and ablation switches.

The defaults follow the paper's unified setting (Section V-D):
``{d = 64, l = 1, n˙ = 20, ρ = 0.6}``.  The reproduction's experiment harness
uses a smaller default latent dimension (d = 32) because the synthetic
datasets are two orders of magnitude smaller than the originals; the paper's
own sensitivity analysis (Figure 3) shows d ≥ 32 is already in the plateau.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class SeqFMConfig:
    """Hyper-parameters of the SeqFM architecture.

    Attributes
    ----------
    static_vocab_size / dynamic_vocab_size:
        Sizes m° and m˙ of the two sparse feature vocabularies (the dynamic
        vocabulary includes the padding feature at index 0).
    num_static_features:
        n° — number of non-zero static features per instance (user +
        candidate object in the paper's three applications).
    max_seq_len:
        n˙ — dynamic sequence length after truncation/padding.
    embed_dim:
        d — the latent (factorisation) dimension.
    ffn_layers:
        l — depth of the shared residual feed-forward network.
    dropout:
        ρ — dropout ratio of the feed-forward layers.
    use_static_view / use_dynamic_view / use_cross_view:
        Ablation switches for the "Remove SV/DV/CV" rows of Table V.
    use_residual / use_layer_norm:
        Ablation switches for the "Remove RC/LN" rows of Table V.
    share_ffn:
        Whether the three views share one residual FFN (the paper's design);
        ``False`` gives each view its own network (extra ablation).
    pooling:
        ``"mean"`` (Eq. 14) or ``"last"`` (read out the final sequence
        position instead of averaging) — extra ablation.
    seed:
        Seed for parameter initialisation and dropout masks.
    """

    static_vocab_size: int
    dynamic_vocab_size: int
    num_static_features: int = 2
    max_seq_len: int = 20
    embed_dim: int = 32
    ffn_layers: int = 1
    dropout: float = 0.6
    use_static_view: bool = True
    use_dynamic_view: bool = True
    use_cross_view: bool = True
    use_residual: bool = True
    use_layer_norm: bool = True
    share_ffn: bool = True
    pooling: str = "mean"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.static_vocab_size < 1 or self.dynamic_vocab_size < 1:
            raise ValueError("vocabulary sizes must be positive")
        if self.num_static_features < 1:
            raise ValueError("num_static_features must be positive")
        if self.max_seq_len < 1:
            raise ValueError("max_seq_len must be positive")
        if self.embed_dim < 1:
            raise ValueError("embed_dim must be positive")
        if self.ffn_layers < 1:
            raise ValueError("ffn_layers must be positive")
        if not 0.0 <= self.dropout < 1.0:
            raise ValueError("dropout must be in [0, 1)")
        if self.pooling not in ("mean", "last"):
            raise ValueError("pooling must be 'mean' or 'last'")
        if not (self.use_static_view or self.use_dynamic_view or self.use_cross_view):
            raise ValueError("at least one view must remain enabled")

    def num_views(self) -> int:
        """Number of active views (determines the aggregated dimension 3d)."""
        return sum([self.use_static_view, self.use_dynamic_view, self.use_cross_view])

    def with_overrides(self, **kwargs) -> "SeqFMConfig":
        """Return a copy with some fields replaced (used by grid search)."""
        return replace(self, **kwargs)
