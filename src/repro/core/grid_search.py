"""Grid search over SeqFM hyper-parameters (Section IV-D).

The paper tunes d ∈ {8,...,128}, l ∈ {1,...,5}, n˙ ∈ {10,...,50} and
ρ ∈ {0.5,...,0.9} with grid search on the validation record of each user.
:func:`grid_search` implements that procedure generically: it receives a
model-building callable and an evaluation callable and exhaustively scores
every combination of the supplied grid.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Sequence, Tuple


@dataclass
class GridSearchResult:
    """Outcome of :func:`grid_search`.

    Attributes
    ----------
    best_params:
        The hyper-parameter combination with the best validation metric.
    best_score:
        Its validation metric.
    trials:
        Every (params, score) pair evaluated, in evaluation order.
    """

    best_params: Dict[str, object]
    best_score: float
    trials: List[Tuple[Dict[str, object], float]] = field(default_factory=list)


def grid_search(
    param_grid: Mapping[str, Sequence[object]],
    evaluate: Callable[[Dict[str, object]], float],
    maximise: bool = True,
) -> GridSearchResult:
    """Exhaustively evaluate every combination of ``param_grid``.

    Parameters
    ----------
    param_grid:
        Mapping from hyper-parameter name to the values to try, e.g.
        ``{"embed_dim": [8, 16, 32], "ffn_layers": [1, 2]}``.
    evaluate:
        Callable receiving one combination (a dict) and returning the
        validation metric for a model trained with it.
    maximise:
        ``True`` for metrics where larger is better (HR, NDCG, AUC),
        ``False`` for error metrics (RMSE, MAE, RRSE).
    """
    if not param_grid:
        raise ValueError("param_grid must contain at least one hyper-parameter")
    names = sorted(param_grid)
    for name in names:
        if not param_grid[name]:
            raise ValueError(f"hyper-parameter {name!r} has no candidate values")

    trials: List[Tuple[Dict[str, object], float]] = []
    best_params: Dict[str, object] = {}
    best_score = -float("inf") if maximise else float("inf")

    for combination in itertools.product(*(param_grid[name] for name in names)):
        params = dict(zip(names, combination))
        score = float(evaluate(params))
        trials.append((params, score))
        improved = score > best_score if maximise else score < best_score
        if improved:
            best_score = score
            best_params = params

    return GridSearchResult(best_params=best_params, best_score=best_score, trials=trials)
