"""Interpretation utilities: inspect what SeqFM's attention heads attend to.

The multi-view self-attention scheme is the paper's core idea; these helpers
expose the learned attention weights so users can *see* the sequential and
cross-view structure the model has picked up — e.g. which history items the
dynamic view weighs most when scoring a candidate, or which static↔dynamic
pairs dominate the cross view.  They are read-only: no gradients, no
mutation of the model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.autograd.tensor import no_grad
from repro.core import masks as mask_lib
from repro.core.model import SeqFM
from repro.data.features import FeatureBatch


@dataclass
class AttentionMaps:
    """Attention weight matrices of one instance, per view.

    Attributes
    ----------
    static:
        (n°, n°) attention weights of the static view (or ``None`` if the view
        is disabled in the model's configuration).
    dynamic:
        (n˙, n˙) causally masked attention weights of the dynamic view.
    cross:
        (n°+n˙, n°+n˙) attention weights of the cross view.
    dynamic_valid:
        Boolean mask of the real (non-padding) dynamic positions.
    """

    static: Optional[np.ndarray]
    dynamic: Optional[np.ndarray]
    cross: Optional[np.ndarray]
    dynamic_valid: np.ndarray


def attention_maps(model: SeqFM, batch: FeatureBatch, index: int = 0) -> AttentionMaps:
    """Extract the per-view attention weights for one instance of a batch."""
    if not 0 <= index < len(batch):
        raise IndexError(f"index {index} out of range for a batch of {len(batch)}")

    with no_grad():
        static_embedded = model.static_embedding(batch.static_indices[index:index + 1])
        dynamic_embedded = model.dynamic_embedding(batch.dynamic_indices[index:index + 1])
        valid = batch.dynamic_mask[index:index + 1]
        seq_len = dynamic_embedded.shape[-2]
        num_static = static_embedded.shape[-2]

        static_weights = None
        if model.static_view is not None:
            static_weights = model.static_view.attention.attention_weights(static_embedded)[0]

        dynamic_weights = None
        if model.dynamic_view is not None:
            causal = mask_lib.causal_mask(seq_len)[None]
            padding = mask_lib.padding_key_mask(valid)
            dynamic_weights = model.dynamic_view.attention.attention_weights(
                dynamic_embedded, mask=mask_lib.combine_masks(causal, padding)
            )[0]

        cross_weights = None
        if model.cross_view is not None:
            from repro.autograd.tensor import Tensor
            combined = Tensor.concatenate([static_embedded, dynamic_embedded], axis=-2)
            static_valid = np.ones((1, num_static))
            combined_valid = np.concatenate([static_valid, valid], axis=1)
            padding = mask_lib.padding_key_mask(combined_valid)
            if model.cross_view.full_attention:
                attention_mask = padding
            else:
                cross = mask_lib.cross_view_mask(num_static, seq_len)[None]
                attention_mask = mask_lib.combine_masks(cross, padding)
            cross_weights = model.cross_view.attention.attention_weights(
                combined, mask=attention_mask
            )[0]

    return AttentionMaps(
        static=static_weights,
        dynamic=dynamic_weights,
        cross=cross_weights,
        dynamic_valid=batch.dynamic_mask[index] > 0,
    )


def top_history_influences(model: SeqFM, batch: FeatureBatch, index: int = 0,
                           top_k: int = 3) -> List[Dict[str, float]]:
    """Rank the history positions by how much the dynamic view attends to them.

    The influence of position j is the average attention weight it receives
    from all *valid* later (or equal) positions — a simple summary of the
    causal attention matrix that answers "which past events drive this
    user's representation?".
    """
    maps = attention_maps(model, batch, index=index)
    if maps.dynamic is None:
        raise ValueError("the model has no dynamic view to interpret")
    valid = maps.dynamic_valid
    weights = maps.dynamic
    influences = []
    for position in np.where(valid)[0]:
        receivers = np.where(valid)[0]
        receivers = receivers[receivers >= position]
        influence = float(weights[receivers, position].mean()) if receivers.size else 0.0
        influences.append({
            "position": int(position),
            "dynamic_index": int(batch.dynamic_indices[index, position]),
            "influence": influence,
        })
    influences.sort(key=lambda item: item["influence"], reverse=True)
    return influences[:top_k]


def view_contributions(model: SeqFM, batch: FeatureBatch) -> Dict[str, np.ndarray]:
    """Per-view contribution of each instance to the final score.

    Decomposes ⟨p, h_agg⟩ into the partial dot products of each view's slice of
    the projection vector — a direct answer to "how much of the score came from
    the static / dynamic / cross view?" for every instance in the batch.
    """
    with no_grad():
        static_embedded = model.static_embedding(batch.static_indices)
        dynamic_embedded = model.dynamic_embedding(batch.dynamic_indices)

        pooled = []
        names = []
        if model.static_view is not None:
            pooled.append(model.static_view(static_embedded))
            names.append("static")
        if model.dynamic_view is not None:
            pooled.append(model.dynamic_view(dynamic_embedded, batch.dynamic_mask))
            names.append("dynamic")
        if model.cross_view is not None:
            pooled.append(model.cross_view(static_embedded, dynamic_embedded, batch.dynamic_mask))
            names.append("cross")

        refined = [model._apply_ffn(view, i) for i, view in enumerate(pooled)]

        contributions: Dict[str, np.ndarray] = {}
        d = model.config.embed_dim
        for i, (name, representation) in enumerate(zip(names, refined)):
            projection_slice = model.projection.data[i * d:(i + 1) * d]
            contributions[name] = representation.data @ projection_slice
    return contributions
