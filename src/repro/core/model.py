"""The Sequence-Aware Factorization Machine (Eq. 3-19 of the paper).

The model consumes a :class:`~repro.data.features.FeatureBatch` — the indices
of the non-zero static features, the padded dynamic sequence and its validity
mask — and emits one raw score per instance:

``ŷ = w₀ + Σ linear-weights of non-zero features + ⟨p, h_agg⟩``

where ``h_agg`` is the concatenation of the static-, dynamic- and cross-view
representations after the shared residual feed-forward network.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.autograd.tensor import Tensor, no_grad
from repro.core.config import SeqFMConfig
from repro.core.views import CrossView, DynamicView, StaticView
from repro.data.features import FeatureBatch
from repro.nn import init
from repro.nn.embedding import Embedding
from repro.nn.feedforward import ResidualFeedForward
from repro.nn.module import Module, Parameter


class SeqFM(Module):
    """Multi-view self-attentive factorisation machine.

    Parameters
    ----------
    config:
        Architecture hyper-parameters and ablation switches; see
        :class:`~repro.core.config.SeqFMConfig`.
    """

    def __init__(self, config: SeqFMConfig):
        super().__init__()
        self.config = config
        rng = np.random.default_rng(config.seed)
        d = config.embed_dim

        # --- Embedding layer (Eq. 5) -----------------------------------
        self.static_embedding = Embedding(config.static_vocab_size, d, rng=rng)
        self.dynamic_embedding = Embedding(
            config.dynamic_vocab_size, d, padding_idx=0, rng=rng
        )

        # --- Linear term (first two terms of Eq. 4) ---------------------
        self.global_bias = Parameter(np.zeros(1), name="w0")
        self.static_linear = Parameter(np.zeros(config.static_vocab_size), name="w_static")
        self.dynamic_linear = Parameter(np.zeros(config.dynamic_vocab_size), name="w_dynamic")

        # --- Multi-view self-attention (Eq. 6-13) -----------------------
        self.static_view = StaticView(d, rng=rng) if config.use_static_view else None
        self.dynamic_view = (
            DynamicView(d, pooling=config.pooling, rng=rng) if config.use_dynamic_view else None
        )
        self.cross_view = CrossView(d, rng=rng) if config.use_cross_view else None

        # --- Shared residual feed-forward network (Eq. 15) --------------
        def build_ffn() -> ResidualFeedForward:
            return ResidualFeedForward(
                d,
                num_layers=config.ffn_layers,
                dropout=config.dropout,
                use_residual=config.use_residual,
                use_layer_norm=config.use_layer_norm,
                rng=rng,
            )

        if config.share_ffn:
            self.shared_ffn = build_ffn()
            self.view_ffns = None
        else:
            self.shared_ffn = None
            self.view_ffns = [build_ffn() for _ in range(config.num_views())]

        # --- Output projection (Eq. 18) ----------------------------------
        aggregated_dim = config.num_views() * d
        self.projection = Parameter(
            init.xavier_uniform((aggregated_dim,), rng), name="projection"
        )

    # ------------------------------------------------------------------ #
    # Forward
    # ------------------------------------------------------------------ #
    def forward(self, batch: FeatureBatch) -> Tensor:
        """Score every instance in the batch; returns a Tensor of shape (batch,)."""
        linear_term = self._linear_term(batch)
        interaction_term = self._interaction_term(batch)
        return linear_term + interaction_term

    def score(self, batch: FeatureBatch) -> np.ndarray:
        """Inference-mode scores as a plain array.

        Evaluates through the autograd layer in eval mode under ``no_grad``
        (dropout off, no backward bookkeeping kept).  For serving-volume
        traffic prefer :class:`repro.serving.engine.InferenceEngine`, which
        runs the same math graph-free on the weight arrays and returns
        identical scores.
        """
        was_training = self.training
        self.eval()
        try:
            with no_grad():
                scores = self.forward(batch).data
        finally:
            self.train(was_training)
        return scores

    # ------------------------------------------------------------------ #
    # Components
    # ------------------------------------------------------------------ #
    def _linear_term(self, batch: FeatureBatch) -> Tensor:
        """w₀ + Σᵢ wᵢ xᵢ over the non-zero static and dynamic features (Eq. 4).

        Like :meth:`_interaction_term`, the history-only dynamic sum of a
        candidate-fused batch (``dynamic_tile > 1``) is computed once per
        group and gathered out to all rows.
        """
        rows = batch.static_indices.shape[0]
        tile = getattr(batch, "dynamic_tile", 1) or 1
        base = rows // tile if tile > 1 and rows % tile == 0 else rows

        static_weights = self.static_linear.gather_rows(batch.static_indices).sum(axis=-1)
        dynamic_weights = self.dynamic_linear.gather_rows(batch.dynamic_indices[:base])
        masked_dynamic = dynamic_weights * Tensor(batch.dynamic_mask[:base])
        dynamic_sum = masked_dynamic.sum(axis=-1)
        if base < rows:
            dynamic_sum = dynamic_sum.gather_rows(np.tile(np.arange(base), rows // base))
        return self.global_bias + static_weights + dynamic_sum

    def _interaction_term(self, batch: FeatureBatch) -> Tensor:
        """f(G°, G˙): the multi-view self-attentive factorisation (Eq. 5-18).

        When the batch is candidate-fused (``dynamic_tile > 1``, see
        :meth:`~repro.data.features.FeatureBatch.with_candidates`) the dynamic
        arrays are vertical copies of their first ``batch/tile`` rows, so the
        dynamic view — the n˙²-cost attention that only depends on the history
        — is computed once per group and its refined representation gathered
        back out to all rows; gradients scatter-add through the gather, which
        is exactly the sum the tiled computation would produce.  The static
        and cross views depend on the candidate and always run on every row.
        """
        rows = batch.static_indices.shape[0]
        tile = getattr(batch, "dynamic_tile", 1) or 1
        base = rows // tile if tile > 1 and rows % tile == 0 else rows
        tile_map = np.tile(np.arange(base), rows // base) if base < rows else None

        static_embedded = self.static_embedding(batch.static_indices)
        dynamic_embedded = self.dynamic_embedding(batch.dynamic_indices[:base])

        # (pooled representation, needs re-tiling to all rows after the FFN)
        pooled_views: List[tuple] = []
        if self.static_view is not None:
            pooled_views.append((self.static_view(static_embedded), False))
        if self.dynamic_view is not None:
            pooled_views.append(
                (self.dynamic_view(dynamic_embedded, batch.dynamic_mask[:base]),
                 tile_map is not None)
            )
        if self.cross_view is not None:
            dynamic_full = (
                dynamic_embedded.gather_rows(tile_map) if tile_map is not None
                else dynamic_embedded
            )
            pooled_views.append(
                (self.cross_view(static_embedded, dynamic_full, batch.dynamic_mask), False)
            )

        refined: List[Tensor] = []
        for index, (view, deduped) in enumerate(pooled_views):
            out = self._apply_ffn(view, index)
            refined.append(out.gather_rows(tile_map) if deduped else out)
        aggregated = Tensor.concatenate(refined, axis=-1)  # (batch, num_views * d)
        return aggregated @ self.projection

    def _apply_ffn(self, pooled: Tensor, view_index: int) -> Tensor:
        if self.shared_ffn is not None:
            return self.shared_ffn(pooled)
        return self.view_ffns[view_index](pooled)

    # ------------------------------------------------------------------ #
    # Introspection helpers used by tests and the complexity benchmark
    # ------------------------------------------------------------------ #
    def view_representations(self, batch: FeatureBatch) -> List[np.ndarray]:
        """Return the pooled (pre-FFN) representation of each active view."""
        with no_grad():
            static_embedded = self.static_embedding(batch.static_indices)
            dynamic_embedded = self.dynamic_embedding(batch.dynamic_indices)
            views: List[np.ndarray] = []
            if self.static_view is not None:
                views.append(self.static_view(static_embedded).data)
            if self.dynamic_view is not None:
                views.append(self.dynamic_view(dynamic_embedded, batch.dynamic_mask).data)
            if self.cross_view is not None:
                views.append(
                    self.cross_view(static_embedded, dynamic_embedded, batch.dynamic_mask).data
                )
        return views

    def __repr__(self) -> str:
        return (
            f"SeqFM(d={self.config.embed_dim}, l={self.config.ffn_layers}, "
            f"n_dyn={self.config.max_seq_len}, dropout={self.config.dropout}, "
            f"views={self.config.num_views()}, params={self.num_parameters()})"
        )
