"""The three attention views of SeqFM (Sections III-B, III-C, III-D).

Each view applies a single self-attention head to a feature matrix and
compresses the result with intra-view pooling (Eq. 14):

* :class:`StaticView` — unmasked attention over the n° static features.
* :class:`DynamicView` — causally masked attention over the n˙-step dynamic
  sequence, with padding keys additionally blocked.
* :class:`CrossView` — attention over the vertical concatenation [E°; E˙]
  where the mask only allows static↔dynamic interactions.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.core import masks as mask_lib
from repro.nn.attention import SelfAttention
from repro.nn.module import Module


# --------------------------------------------------------------------------- #
# Mask assembly shared by the autograd views below and the graph-free serving
# engine (repro.serving.engine) — keep a single source of truth for which
# feature pairs each view may attend to.
# --------------------------------------------------------------------------- #
def dynamic_attention_mask(seq_len: int, valid_mask: np.ndarray) -> np.ndarray:
    """Per-batch mask of the dynamic view: causal + padding keys (Eq. 10)."""
    causal = mask_lib.causal_mask(seq_len)[None, :, :]
    padding = mask_lib.padding_key_mask(valid_mask)
    return mask_lib.combine_masks(causal, padding)


def cross_valid_mask(num_static: int, valid_mask: np.ndarray) -> np.ndarray:
    """Validity of the concatenated [E°; E˙] rows: statics always valid."""
    batch = np.asarray(valid_mask).shape[0]
    static_valid = np.ones((batch, num_static), dtype=np.float64)
    return np.concatenate([static_valid, np.asarray(valid_mask, dtype=np.float64)], axis=1)


def cross_attention_mask(
    num_static: int,
    seq_len: int,
    combined_valid: np.ndarray,
    full_attention: bool = False,
) -> np.ndarray:
    """Per-batch mask of the cross view (Eq. 13): cross-only + padding keys.

    ``full_attention`` drops the cross-only restriction (ablation variant) and
    keeps just the padding mask.
    """
    padding = mask_lib.padding_key_mask(combined_valid)
    if full_attention:
        return padding
    cross = mask_lib.cross_view_mask(num_static, seq_len)[None, :, :]
    return mask_lib.combine_masks(cross, padding)


class StaticView(Module):
    """Self-attention over static feature embeddings (Eq. 6-8) + pooling."""

    def __init__(self, dim: int, rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.attention = SelfAttention(dim, rng=rng)

    def forward(self, static_embeddings: Tensor) -> Tensor:
        """``static_embeddings``: (batch, n_static, d) → pooled (batch, d)."""
        interactions = self.attention(static_embeddings)
        return F.mean_pool(interactions, axis=-2)


class DynamicView(Module):
    """Causally masked self-attention over the dynamic sequence (Eq. 9-10)."""

    def __init__(self, dim: int, pooling: str = "mean", rng: Optional[np.random.Generator] = None):
        super().__init__()
        if pooling not in ("mean", "last"):
            raise ValueError("pooling must be 'mean' or 'last'")
        self.attention = SelfAttention(dim, rng=rng)
        self.pooling = pooling

    def forward(self, dynamic_embeddings: Tensor, valid_mask: np.ndarray) -> Tensor:
        """``dynamic_embeddings``: (batch, n_dyn, d); ``valid_mask``: (batch, n_dyn)."""
        seq_len = dynamic_embeddings.shape[-2]
        attention_mask = dynamic_attention_mask(seq_len, valid_mask)
        interactions = self.attention(dynamic_embeddings, mask=attention_mask)
        if self.pooling == "last":
            return interactions[:, -1, :]
        return F.masked_mean_pool(interactions, valid_mask, axis=-2)


class CrossView(Module):
    """Masked self-attention over [E°; E˙] keeping only cross interactions (Eq. 11-13)."""

    def __init__(self, dim: int, full_attention: bool = False,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.attention = SelfAttention(dim, rng=rng)
        # ``full_attention`` disables the cross-only mask (ablation variant).
        self.full_attention = full_attention

    def forward(
        self,
        static_embeddings: Tensor,
        dynamic_embeddings: Tensor,
        valid_mask: np.ndarray,
    ) -> Tensor:
        num_static = static_embeddings.shape[-2]
        seq_len = dynamic_embeddings.shape[-2]
        combined = Tensor.concatenate([static_embeddings, dynamic_embeddings], axis=-2)

        # Static positions are always valid; dynamic positions follow the mask.
        combined_valid = cross_valid_mask(num_static, valid_mask)
        attention_mask = cross_attention_mask(
            num_static, seq_len, combined_valid, full_attention=self.full_attention
        )

        interactions = self.attention(combined, mask=attention_mask)
        return F.masked_mean_pool(interactions, combined_valid, axis=-2)
