"""Regression metrics: MAE and RRSE (Eq. 28 of the paper)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np


@dataclass
class RegressionMetrics:
    mae: float
    rrse: float
    num_cases: int = 0

    def as_dict(self) -> Dict[str, float]:
        return {"MAE": self.mae, "RRSE": self.rrse}


def mean_absolute_error(targets: np.ndarray, predictions: np.ndarray) -> float:
    """MAE = mean |ŷ - y|."""
    targets = np.asarray(targets, dtype=np.float64)
    predictions = np.asarray(predictions, dtype=np.float64)
    if targets.shape != predictions.shape:
        raise ValueError("targets and predictions must have the same shape")
    return float(np.mean(np.abs(predictions - targets)))


def root_relative_squared_error(targets: np.ndarray, predictions: np.ndarray) -> float:
    """RRSE = sqrt( Σ(ŷ-y)² / Σ(y-ȳ)² ) — squared error relative to predicting the mean.

    The paper's Eq. 28 writes the denominator as ``|S| · VAR`` which equals the
    total squared deviation from the test-set mean used here.
    """
    targets = np.asarray(targets, dtype=np.float64)
    predictions = np.asarray(predictions, dtype=np.float64)
    if targets.shape != predictions.shape:
        raise ValueError("targets and predictions must have the same shape")
    total_squared_error = np.sum((predictions - targets) ** 2)
    total_variance = np.sum((targets - targets.mean()) ** 2)
    if total_variance == 0:
        # Constant test targets: any non-zero error is infinitely worse than
        # the mean predictor; a perfect prediction scores 0.
        return 0.0 if total_squared_error == 0 else float("inf")
    return float(np.sqrt(total_squared_error / total_variance))


def evaluate_regression(targets: np.ndarray, predictions: np.ndarray) -> RegressionMetrics:
    """MAE + RRSE over a set of held-out ratings."""
    return RegressionMetrics(
        mae=mean_absolute_error(targets, predictions),
        rrse=root_relative_squared_error(targets, predictions),
        num_cases=int(np.asarray(targets).size),
    )
