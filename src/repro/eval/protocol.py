"""The leave-one-out evaluation protocol drivers (paper §V-C).

Given a trained task model, the protocol builds test batches from the held-out
interaction of each user (the user's *training-time* history supplies the
dynamic sequence) and computes the task's metrics:

* **ranking** — the ground-truth object and J sampled unseen objects are
  scored with an identical (user, history) context and ranked;
* **classification** — each positive test record is paired with one sampled
  negative and AUC/RMSE are computed over the predicted probabilities;
* **regression** — the held-out rating is predicted directly and MAE/RRSE
  are reported.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.tasks import TaskModel
from repro.data.features import EncodedExample, FeatureBatch, FeatureEncoder
from repro.data.sampling import NegativeSampler
from repro.data.split import LeaveOneOutSplit
from repro.eval.classification import ClassificationMetrics, evaluate_classification
from repro.eval.ranking import RankingMetrics, evaluate_ranking
from repro.eval.regression import RegressionMetrics, evaluate_regression


class EvaluationProtocol:
    """Builds held-out evaluation batches and computes task metrics.

    Parameters
    ----------
    encoder:
        The feature encoder fitted on the dataset.
    sampler:
        Negative sampler whose seen-sets cover the *full* log (train and
        held-out interactions), so evaluation negatives are truly unseen.
    num_ranking_negatives:
        J of the paper (1000 there; scaled to the synthetic object universe
        here — the default 100 keeps the task difficulty comparable relative
        to the catalogue size).
    cutoffs:
        K values for HR@K / NDCG@K.
    seed:
        Seed for the per-case candidate sampling.
    """

    def __init__(
        self,
        encoder: FeatureEncoder,
        sampler: Optional[NegativeSampler] = None,
        num_ranking_negatives: int = 100,
        cutoffs: Sequence[int] = (5, 10, 20),
        seed: int = 0,
    ):
        self.encoder = encoder
        self.sampler = sampler
        self.num_ranking_negatives = num_ranking_negatives
        self.cutoffs = tuple(cutoffs)
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------ #
    # Ranking
    # ------------------------------------------------------------------ #
    def evaluate_ranking_task(
        self,
        model: TaskModel,
        split: LeaveOneOutSplit,
        use_validation: bool = False,
        max_users: Optional[int] = None,
    ) -> RankingMetrics:
        """HR@K / NDCG@K over each user's held-out record."""
        if self.sampler is None:
            raise ValueError("ranking evaluation requires a negative sampler")
        heldout = split.validation if use_validation else split.test
        score_lists: List[np.ndarray] = []
        positions: List[int] = []

        users = sorted(heldout)
        if max_users is not None:
            users = users[:max_users]

        for user_id in users:
            event = heldout[user_id]
            history = split.history.get(user_id, [])
            if not history:
                continue
            try:
                candidates = self.sampler.evaluation_candidates(
                    user_id, event.object_id, self.num_ranking_negatives
                )
                examples = [
                    self.encoder.encode(user_id, int(candidate), history)
                    for candidate in candidates
                ]
            except KeyError:
                # User or object fell out of the encoder vocabulary.
                continue
            batch = FeatureBatch.from_examples(examples)
            scores = model.predict(batch)
            score_lists.append(scores)
            positions.append(0)  # ground truth is always placed first

        return evaluate_ranking(score_lists, positions, cutoffs=self.cutoffs)

    # ------------------------------------------------------------------ #
    # Classification
    # ------------------------------------------------------------------ #
    def evaluate_classification_task(
        self,
        model: TaskModel,
        split: LeaveOneOutSplit,
        use_validation: bool = False,
        max_users: Optional[int] = None,
    ) -> ClassificationMetrics:
        """AUC / RMSE with one sampled negative per positive test record."""
        if self.sampler is None:
            raise ValueError("classification evaluation requires a negative sampler")
        heldout = split.validation if use_validation else split.test
        examples: List[EncodedExample] = []
        labels: List[float] = []

        users = sorted(heldout)
        if max_users is not None:
            users = users[:max_users]

        for user_id in users:
            event = heldout[user_id]
            history = split.history.get(user_id, [])
            if not history:
                continue
            try:
                positive = self.encoder.encode(user_id, event.object_id, history, label=1.0)
                negative_object = int(self.sampler.sample_for_user(user_id, 1)[0])
                negative = self.encoder.encode(user_id, negative_object, history, label=0.0)
            except KeyError:
                continue
            examples.extend([positive, negative])
            labels.extend([1.0, 0.0])

        batch = FeatureBatch.from_examples(examples)
        logits = model.predict(batch)
        probabilities = 1.0 / (1.0 + np.exp(-np.clip(logits, -60.0, 60.0)))
        return evaluate_classification(np.array(labels), probabilities)

    # ------------------------------------------------------------------ #
    # Regression
    # ------------------------------------------------------------------ #
    def evaluate_regression_task(
        self,
        model: TaskModel,
        split: LeaveOneOutSplit,
        use_validation: bool = False,
        max_users: Optional[int] = None,
    ) -> RegressionMetrics:
        """MAE / RRSE over the held-out ratings."""
        heldout = split.validation if use_validation else split.test
        examples: List[EncodedExample] = []
        targets: List[float] = []

        users = sorted(heldout)
        if max_users is not None:
            users = users[:max_users]

        for user_id in users:
            event = heldout[user_id]
            history = split.history.get(user_id, [])
            if not history or event.rating is None:
                continue
            try:
                example = self.encoder.encode(user_id, event.object_id, history, label=event.rating)
            except KeyError:
                continue
            examples.append(example)
            targets.append(float(event.rating))

        batch = FeatureBatch.from_examples(examples)
        predictions = model.predict(batch)
        return evaluate_regression(np.array(targets), predictions)

    # ------------------------------------------------------------------ #
    # Dispatch
    # ------------------------------------------------------------------ #
    def evaluate(
        self,
        model: TaskModel,
        split: LeaveOneOutSplit,
        task: str,
        use_validation: bool = False,
        max_users: Optional[int] = None,
    ) -> Dict[str, float]:
        """Run the protocol matching ``task`` and return a flat metric dict."""
        if task == "ranking":
            return self.evaluate_ranking_task(model, split, use_validation, max_users).as_dict()
        if task == "classification":
            return self.evaluate_classification_task(model, split, use_validation, max_users).as_dict()
        if task == "regression":
            return self.evaluate_regression_task(model, split, use_validation, max_users).as_dict()
        raise ValueError(f"unknown task {task!r}")
