"""Ranking metrics: HR@K and NDCG@K (Eq. 27 of the paper).

For each test case the ground-truth object is mixed with J sampled negatives;
HR@K measures whether the ground truth appears in the top-K of the ranked
candidate list, and NDCG@K additionally rewards ranking it close to the top
with the usual ``1 / log2(rank + 1)`` discount.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence

import numpy as np


@dataclass
class RankingMetrics:
    """HR@K / NDCG@K for a set of cut-offs, plus the number of test cases."""

    hr: Dict[int, float] = field(default_factory=dict)
    ndcg: Dict[int, float] = field(default_factory=dict)
    num_cases: int = 0

    def as_dict(self) -> Dict[str, float]:
        flat: Dict[str, float] = {}
        for k, value in sorted(self.hr.items()):
            flat[f"HR@{k}"] = value
        for k, value in sorted(self.ndcg.items()):
            flat[f"NDCG@{k}"] = value
        return flat


def _ground_truth_rank(scores: np.ndarray, ground_truth_position: int) -> int:
    """1-based rank of the ground-truth candidate.

    Ties are broken pessimistically (candidates with equal score rank ahead of
    the ground truth), which avoids over-crediting degenerate constant scorers.
    """
    scores = np.asarray(scores, dtype=np.float64)
    target_score = scores[ground_truth_position]
    better = np.sum(scores > target_score)
    equal_before = np.sum(scores[:ground_truth_position] == target_score)
    return int(better + equal_before + 1)


def hit_ratio_at_k(scores: np.ndarray, ground_truth_position: int, k: int) -> float:
    """1.0 when the ground truth ranks within the top-K candidates, else 0.0."""
    if k < 1:
        raise ValueError("k must be positive")
    return 1.0 if _ground_truth_rank(scores, ground_truth_position) <= k else 0.0


def ndcg_at_k(scores: np.ndarray, ground_truth_position: int, k: int) -> float:
    """NDCG@K with a single relevant item: ``1 / log2(rank + 1)`` if rank ≤ K."""
    if k < 1:
        raise ValueError("k must be positive")
    rank = _ground_truth_rank(scores, ground_truth_position)
    if rank > k:
        return 0.0
    return float(1.0 / np.log2(rank + 1))


def evaluate_ranking(
    score_lists: Sequence[np.ndarray],
    ground_truth_positions: Sequence[int],
    cutoffs: Sequence[int] = (5, 10, 20),
) -> RankingMetrics:
    """Aggregate HR@K and NDCG@K over many test cases.

    Parameters
    ----------
    score_lists:
        One score array per test case, covering the ground truth and its J
        sampled negatives.
    ground_truth_positions:
        Index of the ground-truth candidate within each score array.
    cutoffs:
        The K values to report (paper: 5, 10, 20).
    """
    if len(score_lists) != len(ground_truth_positions):
        raise ValueError("score_lists and ground_truth_positions must align")
    metrics = RankingMetrics(num_cases=len(score_lists))
    if not score_lists:
        metrics.hr = {k: 0.0 for k in cutoffs}
        metrics.ndcg = {k: 0.0 for k in cutoffs}
        return metrics

    for k in cutoffs:
        hits = []
        gains = []
        for scores, position in zip(score_lists, ground_truth_positions):
            hits.append(hit_ratio_at_k(scores, position, k))
            gains.append(ndcg_at_k(scores, position, k))
        metrics.hr[k] = float(np.mean(hits))
        metrics.ndcg[k] = float(np.mean(gains))
    return metrics
