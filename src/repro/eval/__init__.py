"""Evaluation metrics and the paper's leave-one-out protocols (Section V-C).

* ranking — HR@K and NDCG@K over the ground truth plus J sampled negatives;
* classification — AUC and RMSE over positives and one sampled negative each;
* regression — MAE and RRSE over the held-out ratings.
"""

from repro.eval.ranking import hit_ratio_at_k, ndcg_at_k, evaluate_ranking, RankingMetrics
from repro.eval.classification import (
    auc_score,
    rmse_score,
    evaluate_classification,
    ClassificationMetrics,
)
from repro.eval.regression import (
    mean_absolute_error,
    root_relative_squared_error,
    evaluate_regression,
    RegressionMetrics,
)
from repro.eval.protocol import EvaluationProtocol

__all__ = [
    "hit_ratio_at_k",
    "ndcg_at_k",
    "evaluate_ranking",
    "RankingMetrics",
    "auc_score",
    "rmse_score",
    "evaluate_classification",
    "ClassificationMetrics",
    "mean_absolute_error",
    "root_relative_squared_error",
    "evaluate_regression",
    "RegressionMetrics",
    "EvaluationProtocol",
]
