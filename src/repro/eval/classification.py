"""Classification metrics: AUC and RMSE (paper §V-C).

AUC is computed exactly (Mann-Whitney statistic over all positive/negative
pairs via rank sums); RMSE is taken between the predicted click probability
and the binary label, matching how the FM literature the paper cites reports
it for CTR models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np
from scipy import stats


@dataclass
class ClassificationMetrics:
    auc: float
    rmse: float
    num_cases: int = 0

    def as_dict(self) -> Dict[str, float]:
        return {"AUC": self.auc, "RMSE": self.rmse}


def auc_score(labels: np.ndarray, scores: np.ndarray) -> float:
    """Area under the ROC curve via the rank-sum (Mann-Whitney U) formulation.

    Tied scores receive average ranks, the exact convention of the usual
    trapezoidal ROC computation.
    """
    labels = np.asarray(labels, dtype=np.float64)
    scores = np.asarray(scores, dtype=np.float64)
    if labels.shape != scores.shape:
        raise ValueError("labels and scores must have the same shape")
    positives = labels > 0.5
    num_positive = int(positives.sum())
    num_negative = int(labels.size - num_positive)
    if num_positive == 0 or num_negative == 0:
        raise ValueError("AUC requires at least one positive and one negative example")
    ranks = stats.rankdata(scores)
    positive_rank_sum = ranks[positives].sum()
    u_statistic = positive_rank_sum - num_positive * (num_positive + 1) / 2.0
    return float(u_statistic / (num_positive * num_negative))


def rmse_score(labels: np.ndarray, probabilities: np.ndarray) -> float:
    """Root mean squared error between predicted probabilities and labels."""
    labels = np.asarray(labels, dtype=np.float64)
    probabilities = np.asarray(probabilities, dtype=np.float64)
    if labels.shape != probabilities.shape:
        raise ValueError("labels and probabilities must have the same shape")
    return float(np.sqrt(np.mean((probabilities - labels) ** 2)))


def evaluate_classification(labels: np.ndarray, probabilities: np.ndarray) -> ClassificationMetrics:
    """AUC + RMSE over a set of labelled predictions."""
    return ClassificationMetrics(
        auc=auc_score(labels, probabilities),
        rmse=rmse_score(labels, probabilities),
        num_cases=int(np.asarray(labels).size),
    )
