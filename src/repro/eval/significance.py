"""Statistical significance testing for model comparisons.

The paper reports point estimates; when comparing models on the scaled-down
synthetic datasets the differences can be within noise, so this module
provides the standard tools for deciding whether a gap is meaningful:

* :func:`bootstrap_confidence_interval` — percentile bootstrap CI of a metric
  computed from per-case scores;
* :func:`paired_bootstrap_test` — paired bootstrap comparison of two models
  evaluated on the *same* test cases (the recommended test for per-user
  metrics such as HR@K / NDCG@K / absolute error);
* :func:`sign_test` — a distribution-free fallback based on win counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np


@dataclass(frozen=True)
class BootstrapInterval:
    """A point estimate with a percentile-bootstrap confidence interval."""

    estimate: float
    lower: float
    upper: float
    confidence: float

    def contains(self, value: float) -> bool:
        return self.lower <= value <= self.upper


@dataclass(frozen=True)
class PairedComparison:
    """Result of a paired bootstrap comparison between two models.

    Attributes
    ----------
    mean_difference:
        Mean of (model A − model B) over the test cases.
    p_value:
        Two-sided bootstrap p-value for the null hypothesis of no difference.
    significant:
        Whether ``p_value`` is below the requested alpha.
    """

    mean_difference: float
    p_value: float
    alpha: float
    num_cases: int

    @property
    def significant(self) -> bool:
        return self.p_value < self.alpha


def bootstrap_confidence_interval(
    per_case_scores: Sequence[float],
    statistic: Callable[[np.ndarray], float] = np.mean,
    confidence: float = 0.95,
    num_resamples: int = 2000,
    seed: int = 0,
) -> BootstrapInterval:
    """Percentile bootstrap CI for an aggregate of per-case scores.

    Parameters
    ----------
    per_case_scores:
        One score per test case (e.g. the per-user hit indicator for HR@10).
    statistic:
        Aggregation applied to each resample (defaults to the mean).
    confidence:
        Interval coverage, e.g. 0.95.
    num_resamples:
        Number of bootstrap resamples.
    seed:
        Seed of the resampling generator.
    """
    scores = np.asarray(per_case_scores, dtype=np.float64)
    if scores.size == 0:
        raise ValueError("cannot bootstrap an empty score list")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    rng = np.random.default_rng(seed)
    estimates = np.empty(num_resamples)
    for index in range(num_resamples):
        resample = scores[rng.integers(0, scores.size, size=scores.size)]
        estimates[index] = statistic(resample)
    tail = (1.0 - confidence) / 2.0
    return BootstrapInterval(
        estimate=float(statistic(scores)),
        lower=float(np.quantile(estimates, tail)),
        upper=float(np.quantile(estimates, 1.0 - tail)),
        confidence=confidence,
    )


def paired_bootstrap_test(
    scores_a: Sequence[float],
    scores_b: Sequence[float],
    alpha: float = 0.05,
    num_resamples: int = 2000,
    seed: int = 0,
) -> PairedComparison:
    """Paired bootstrap test on per-case scores of two models.

    The null hypothesis is that the expected per-case difference is zero; the
    p-value is the two-sided bootstrap probability of the mean difference
    crossing zero.
    """
    a = np.asarray(scores_a, dtype=np.float64)
    b = np.asarray(scores_b, dtype=np.float64)
    if a.shape != b.shape or a.size == 0:
        raise ValueError("paired test requires two equal-length, non-empty score lists")
    differences = a - b
    observed = float(differences.mean())
    rng = np.random.default_rng(seed)
    count_opposite = 0
    for _ in range(num_resamples):
        resample = differences[rng.integers(0, differences.size, size=differences.size)]
        mean = resample.mean()
        if (observed >= 0 and mean <= 0) or (observed <= 0 and mean >= 0):
            count_opposite += 1
    p_value = min(1.0, 2.0 * count_opposite / num_resamples)
    return PairedComparison(mean_difference=observed, p_value=p_value,
                            alpha=alpha, num_cases=int(a.size))


def sign_test(
    scores_a: Sequence[float],
    scores_b: Sequence[float],
    alpha: float = 0.05,
) -> PairedComparison:
    """Two-sided sign test: counts cases where model A beats model B.

    Ties are dropped, as is standard.  The exact binomial p-value is computed
    with the regularised incomplete beta function via scipy.
    """
    from scipy import stats

    a = np.asarray(scores_a, dtype=np.float64)
    b = np.asarray(scores_b, dtype=np.float64)
    if a.shape != b.shape or a.size == 0:
        raise ValueError("sign test requires two equal-length, non-empty score lists")
    wins_a = int(np.sum(a > b))
    wins_b = int(np.sum(b > a))
    decisive = wins_a + wins_b
    if decisive == 0:
        return PairedComparison(mean_difference=0.0, p_value=1.0, alpha=alpha, num_cases=int(a.size))
    result = stats.binomtest(wins_a, decisive, p=0.5, alternative="two-sided")
    return PairedComparison(
        mean_difference=float((a - b).mean()),
        p_value=float(result.pvalue),
        alpha=alpha,
        num_cases=int(a.size),
    )


def per_case_hit_scores(score_lists: Sequence[np.ndarray],
                        ground_truth_positions: Sequence[int],
                        k: int) -> np.ndarray:
    """Per-case HR@K indicators, the input format the paired tests expect."""
    from repro.eval.ranking import hit_ratio_at_k

    return np.array([
        hit_ratio_at_k(scores, position, k)
        for scores, position in zip(score_lists, ground_truth_positions)
    ])
