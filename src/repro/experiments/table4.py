"""Table IV — regression task (rating prediction).

Trains SeqFM and the regression baselines (FM, Wide&Deep, DeepCross, NFM,
AFM, RRN, HOFM) on the Beauty-like and Toys-like rating datasets with the
squared-error loss and reports MAE / RRSE on the held-out ratings.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.experiments import reference
from repro.experiments.registry import build_context
from repro.experiments.reporting import ResultTable, compare_to_paper
from repro.experiments.runners import train_and_evaluate

REGRESSION_DATASETS = ("beauty", "toys")
REGRESSION_MODELS = ("FM", "Wide&Deep", "DeepCross", "NFM", "AFM", "RRN", "HOFM", "SeqFM")
REGRESSION_COLUMNS = ["MAE", "RRSE"]


def run_table4(
    datasets: Sequence[str] = REGRESSION_DATASETS,
    models: Sequence[str] = REGRESSION_MODELS,
    scale: str = "quick",
    seed: int = 0,
) -> Dict[str, ResultTable]:
    """Regenerate Table IV; returns one ResultTable per dataset."""
    tables: Dict[str, ResultTable] = {}
    for dataset in datasets:
        context = build_context(dataset, scale=scale)
        table = ResultTable(
            title=f"Table IV — rating regression on {dataset} (scale={scale})",
            columns=REGRESSION_COLUMNS,
        )
        for model_name in models:
            metrics = train_and_evaluate(context, model_name, seed=seed)
            table.add_row(model_name, {column: metrics[column] for column in REGRESSION_COLUMNS})
        table.metadata["paper"] = reference.TABLE4_REGRESSION.get(dataset, {})
        table.metadata["dataset_statistics"] = context.log.statistics()
        tables[dataset] = table
    return tables


def main() -> None:
    tables = run_table4()
    for dataset, table in tables.items():
        print(table)
        print()
        print(compare_to_paper(table, reference.TABLE4_REGRESSION[dataset]))
        print()


if __name__ == "__main__":
    main()
