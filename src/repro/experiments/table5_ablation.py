"""Table V — ablation test with different model architectures.

Evaluates degraded SeqFM variants (one per removed component) on one dataset
per task, mirroring Table V of the paper:

* ``Remove SV`` — no static view;
* ``Remove DV`` — no dynamic view;
* ``Remove CV`` — no cross view;
* ``Remove RC`` — no residual connections in the feed-forward network;
* ``Remove LN`` — no layer normalisation.

Two extra variants cover design choices called out in DESIGN.md §6:
``Separate FFN`` (per-view feed-forward networks instead of the shared one)
and ``Last pooling`` (read out the final sequence position instead of the
intra-view mean).
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.experiments import reference
from repro.experiments.registry import build_context
from repro.experiments.reporting import ResultTable
from repro.experiments.runners import train_and_evaluate

#: Architecture name → SeqFMConfig overrides.
ABLATION_VARIANTS: Dict[str, Dict[str, object]] = {
    "Default": {},
    "Remove SV": {"use_static_view": False},
    "Remove DV": {"use_dynamic_view": False},
    "Remove CV": {"use_cross_view": False},
    "Remove RC": {"use_residual": False},
    "Remove LN": {"use_layer_norm": False},
    "Separate FFN": {"share_ffn": False},
    "Last pooling": {"pooling": "last"},
}

#: The metric reported per task, as in the paper's Table V.
ABLATION_METRIC = {"ranking": "HR@10", "classification": "AUC", "regression": "MAE"}

DEFAULT_DATASETS = ("gowalla", "trivago", "beauty")


def run_table5(
    datasets: Sequence[str] = DEFAULT_DATASETS,
    variants: Sequence[str] = tuple(ABLATION_VARIANTS),
    scale: str = "quick",
    seed: int = 0,
) -> ResultTable:
    """Regenerate Table V: rows are architectures, columns are datasets."""
    contexts = {dataset: build_context(dataset, scale=scale) for dataset in datasets}
    columns = list(datasets)
    table = ResultTable(
        title=f"Table V — ablation test (scale={scale}); "
              "metric: HR@10 (ranking), AUC (classification), MAE (regression)",
        columns=columns,
    )
    for variant in variants:
        overrides = ABLATION_VARIANTS[variant]
        row: Dict[str, float] = {}
        for dataset in datasets:
            context = contexts[dataset]
            metric_name = ABLATION_METRIC[context.task]
            metrics = train_and_evaluate(context, "SeqFM", seed=seed, **overrides)
            row[dataset] = metrics[metric_name]
        table.add_row(variant, row)
    table.metadata["paper"] = reference.TABLE5_ABLATION
    table.metadata["metric_per_dataset"] = {
        dataset: ABLATION_METRIC[contexts[dataset].task] for dataset in datasets
    }
    return table


def main() -> None:
    table = run_table5()
    print(table)
    print()
    print("Paper reference (HR@10 / AUC / MAE on the same datasets):")
    for variant, values in reference.TABLE5_ABLATION.items():
        row = "  ".join(f"{d}={values[d]:.3f}" for d in ("gowalla", "trivago", "beauty"))
        print(f"  {variant:12s} {row}")


if __name__ == "__main__":
    main()
