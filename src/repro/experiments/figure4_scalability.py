"""Figure 4 — training time of SeqFM w.r.t. varied data proportions.

The paper trains SeqFM on {0.2, 0.4, 0.6, 0.8, 1.0} of the Trivago training
data and shows that training time grows approximately linearly with data
size.  This runner measures the wall-clock training time at each proportion
on the Trivago-like dataset and fits a least-squares line so the linearity
claim (Section III-I / VI-D) can be checked quantitatively.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from repro.core.trainer import Trainer
from repro.data.split import proportion_subset
from repro.experiments.registry import build_context
from repro.experiments.runners import build_model


@dataclass
class ScalabilityResult:
    """Training time per data proportion plus a linear fit."""

    dataset: str
    proportions: List[float] = field(default_factory=list)
    train_seconds: List[float] = field(default_factory=list)
    num_examples: List[int] = field(default_factory=list)
    linear_r_squared: float = 0.0

    def as_dict(self) -> Dict[float, float]:
        return dict(zip(self.proportions, self.train_seconds))

    def fit_line(self) -> None:
        """Least-squares fit of time vs. proportion; stores R² of the fit."""
        x = np.asarray(self.proportions, dtype=np.float64)
        y = np.asarray(self.train_seconds, dtype=np.float64)
        if len(x) < 2 or np.allclose(y, y[0]):
            self.linear_r_squared = 1.0
            return
        slope, intercept = np.polyfit(x, y, 1)
        predicted = slope * x + intercept
        residual = np.sum((y - predicted) ** 2)
        total = np.sum((y - y.mean()) ** 2)
        self.linear_r_squared = float(1.0 - residual / total) if total > 0 else 1.0


def run_figure4(
    dataset: str = "trivago",
    proportions: Sequence[float] = (0.2, 0.4, 0.6, 0.8, 1.0),
    scale: str = "quick",
    epochs: int = 1,
    seed: int = 0,
) -> ScalabilityResult:
    """Measure SeqFM training time at increasing training-data proportions."""
    context = build_context(dataset, scale=scale)
    result = ScalabilityResult(dataset=dataset)

    for proportion in proportions:
        subset_log = proportion_subset(context.split.train, proportion)
        subset_examples = context.encoder.encode_training_instances(subset_log)
        if not subset_examples:
            continue
        task_model = build_model(context, "SeqFM", seed=seed)
        trainer = Trainer(
            task_model,
            context.encoder,
            sampler=context.sampler if context.task != "regression" else None,
            config=context.trainer_config(epochs=epochs, convergence_tolerance=0.0),
        )
        training = trainer.fit(subset_examples)
        result.proportions.append(float(proportion))
        result.train_seconds.append(training.train_seconds)
        result.num_examples.append(len(subset_examples))

    result.fit_line()
    return result


def main() -> None:
    result = run_figure4()
    print(f"Figure 4 — SeqFM training time on {result.dataset} (1 epoch per point)")
    for proportion, seconds, count in zip(result.proportions, result.train_seconds, result.num_examples):
        print(f"  proportion={proportion:.1f}  examples={count:5d}  time={seconds:7.2f}s")
    print(f"  linear fit R^2 = {result.linear_r_squared:.4f}")


if __name__ == "__main__":
    main()
