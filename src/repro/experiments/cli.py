"""Command-line interface for the experiment harness and the serving runtime.

Regenerate any table or figure of the paper from the shell::

    python -m repro.experiments.cli table2 --scale quick
    python -m repro.experiments.cli table5 --datasets gowalla beauty
    python -m repro.experiments.cli figure4 --output results/figure4.json
    python -m repro.experiments.cli all --scale small --output-dir results/

``--output`` / ``--output-dir`` export the regenerated tables as JSON via
:mod:`repro.core.serialization` so runs can be archived and diffed.

Train a model on any registered dataset and write a checkpoint the serving
runtime loads directly (the train → serve loop)::

    python -m repro.experiments.cli train \
        --dataset gowalla --scale quick --checkpoint ckpt.npz

Serve a trained checkpoint (see :mod:`repro.serving`; the ``serve`` loop
speaks the versioned envelope protocol of :mod:`repro.serving.protocol` —
per-line head/model routing, the stateful ``update`` head, structured
errors — and auto-upgrades bare pre-envelope payloads)::

    python -m repro.experiments.cli predict-batch \
        --checkpoint ckpt.npz --requests requests.json --head classify
    python -m repro.experiments.cli serve --checkpoint ckpt.npz < requests.jsonl

Rank candidate lists through the candidate-deduplicated fast path::

    python -m repro.experiments.cli rank-topk \
        --checkpoint ckpt.npz --requests ranking.json --k 10

Two-stage retrieval (see :mod:`repro.retrieval`): snapshot the catalog into
an item index once, then answer candidate-free requests with the
retrieve → rank pipeline::

    python -m repro.experiments.cli build-index \
        --checkpoint ckpt.npz --item-range 40 90 --output items.npz
    python -m repro.experiments.cli recommend \
        --checkpoint ckpt.npz --index items.npz --requests users.json --k 10

Close the loop (see :mod:`repro.online`): retrain incrementally off the
write-ahead log a durable serve loop produced — warm-start from the active
checkpoint, fit only the new log segment, gate on held-out metrics and
promote a versioned ``model@vN`` checkpoint (or audit the rejection)::

    python -m repro.experiments.cli retrain \
        --dataset gowalla --checkpoint ckpt.npz --wal state/
    python -m repro.experiments.cli retrain \
        --dataset gowalla --checkpoint ckpt.npz --wal state/ --dry-run
    python -m repro.experiments.cli status --wal state/
"""

from __future__ import annotations

import argparse
import json
import sys
import zipfile
from pathlib import Path
from typing import Dict, List, Optional

from repro.experiments import (
    reference,
    run_figure3,
    run_figure4,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
)
from repro.experiments.reporting import ResultTable, compare_to_paper

EXPERIMENTS = ("table1", "table2", "table3", "table4", "table5", "figure3", "figure4")

#: Serving subcommands, dispatched before the experiment parser (they take a
#: different option set than the table/figure runners).
SERVING_COMMANDS = ("serve", "predict-batch", "rank-topk", "recommend")

#: Training subcommand, likewise dispatched before the experiment parser.
TRAIN_COMMAND = "train"

#: Offline index build subcommand (two-stage retrieval).
BUILD_INDEX_COMMAND = "build-index"

#: Offline durability inspection subcommand (snapshot + WAL state on disk).
STATUS_COMMAND = "status"

#: Online-learning subcommand: one incremental, eval-gated retrain cycle.
RETRAIN_COMMAND = "retrain"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the tables and figures of the SeqFM paper (ICDE 2020).",
        epilog="Training/serving subcommands (separate option sets): "
               "'train', 'serve', 'predict-batch', 'rank-topk', 'recommend', "
               "'build-index', 'status' and 'retrain' — run e.g. "
               "'python -m repro.experiments.cli train --help'.",
    )
    parser.add_argument("experiment", choices=EXPERIMENTS + ("all",),
                        help="which artefact to regenerate")
    parser.add_argument("--scale", default="quick", choices=("quick", "small", "full"),
                        help="dataset / training size (default: quick)")
    parser.add_argument("--datasets", nargs="*", default=None,
                        help="restrict to specific datasets (defaults to the paper's choice)")
    parser.add_argument("--seed", type=int, default=0, help="training seed")
    parser.add_argument("--output", type=Path, default=None,
                        help="write the result of a single experiment as JSON")
    parser.add_argument("--output-dir", type=Path, default=None,
                        help="directory for JSON exports when running 'all'")
    return parser


def _print_tables(tables: Dict[str, ResultTable], paper: Dict[str, dict]) -> None:
    for dataset, table in tables.items():
        print(table)
        if dataset in paper:
            print()
            print(compare_to_paper(table, paper[dataset]))
        print()


def _export(table: ResultTable, path: Path) -> None:
    from repro.core.serialization import save_result_table

    save_result_table(table, path)
    print(f"wrote {path}")


def run_experiment(name: str, scale: str, datasets: Optional[List[str]], seed: int,
                   output: Optional[Path] = None) -> None:
    """Run one experiment, print its result and optionally export it."""
    if name == "table1":
        table = run_table1(datasets=tuple(datasets) if datasets else
                           ("gowalla", "foursquare", "trivago", "taobao", "beauty", "toys"),
                           scale=scale)
        print(table)
        if output:
            _export(table, output)
        return

    if name in ("table2", "table3", "table4"):
        runner = {"table2": run_table2, "table3": run_table3, "table4": run_table4}[name]
        paper = {"table2": reference.TABLE2_RANKING,
                 "table3": reference.TABLE3_CLASSIFICATION,
                 "table4": reference.TABLE4_REGRESSION}[name]
        kwargs = {"scale": scale, "seed": seed}
        if datasets:
            kwargs["datasets"] = tuple(datasets)
        tables = runner(**kwargs)
        _print_tables(tables, paper)
        if output:
            for dataset, table in tables.items():
                _export(table, output.with_name(f"{output.stem}_{dataset}{output.suffix or '.json'}"))
        return

    if name == "table5":
        kwargs = {"scale": scale, "seed": seed}
        if datasets:
            kwargs["datasets"] = tuple(datasets)
        table = run_table5(**kwargs)
        print(table)
        if output:
            _export(table, output)
        return

    if name == "figure3":
        kwargs = {"scale": scale, "seed": seed}
        if datasets:
            kwargs["datasets"] = tuple(datasets)
        series_list = run_figure3(**kwargs)
        payload = []
        for series in series_list:
            print(f"{series.dataset} [{series.metric}] vs {series.hyperparameter}: "
                  f"{series.as_dict()}  best={series.best_value()}")
            payload.append({
                "dataset": series.dataset, "task": series.task,
                "hyperparameter": series.hyperparameter, "metric": series.metric,
                "values": [str(v) for v in series.values], "scores": series.scores,
            })
        if output:
            output.parent.mkdir(parents=True, exist_ok=True)
            output.write_text(json.dumps(payload, indent=2))
            print(f"wrote {output}")
        return

    if name == "figure4":
        result = run_figure4(scale=scale, seed=seed)
        print(f"Figure 4 — training time on {result.dataset}")
        for proportion, seconds, count in zip(result.proportions, result.train_seconds,
                                              result.num_examples):
            print(f"  proportion={proportion:.1f}  examples={count:5d}  time={seconds:7.2f}s")
        print(f"  linear fit R^2 = {result.linear_r_squared:.4f}")
        if output:
            output.parent.mkdir(parents=True, exist_ok=True)
            output.write_text(json.dumps({
                "dataset": result.dataset,
                "proportions": result.proportions,
                "train_seconds": result.train_seconds,
                "num_examples": result.num_examples,
                "linear_r_squared": result.linear_r_squared,
            }, indent=2))
            print(f"wrote {output}")
        return

    raise ValueError(f"unknown experiment {name!r}")


def build_train_parser() -> argparse.ArgumentParser:
    """Parser for the ``train`` subcommand."""
    from repro.experiments.registry import SCALES, dataset_names

    parser = argparse.ArgumentParser(
        prog="repro-experiments train",
        description="Train SeqFM on a registered dataset and write a serving checkpoint.",
    )
    parser.add_argument("--dataset", required=True, choices=dataset_names(),
                        help="registered dataset (its task head is implied)")
    parser.add_argument("--scale", default="quick", choices=sorted(SCALES),
                        help="dataset / training size (default: quick)")
    parser.add_argument("--checkpoint", type=Path, required=True,
                        help="where to write the trained SeqFM checkpoint (.npz)")
    parser.add_argument("--epochs", type=int, default=None,
                        help="override the scale's epoch budget")
    parser.add_argument("--batch-size", type=int, default=None,
                        help="override the scale's mini-batch size")
    parser.add_argument("--learning-rate", type=float, default=None,
                        help="override the scale's Adam learning rate")
    parser.add_argument("--negatives", type=int, default=None,
                        help="negatives per positive (ranking/classification)")
    parser.add_argument("--seed", type=int, default=0, help="model / training seed")
    parser.add_argument("--looped-negatives", action="store_true",
                        help="use the slow per-draw training path instead of the "
                             "fused fast path (debugging / comparison only)")
    return parser


def run_train(argv: List[str]) -> int:
    """Train on a registered dataset, report progress, write the checkpoint."""
    from repro.core.serialization import save_seqfm
    from repro.experiments.registry import build_context

    args = build_train_parser().parse_args(argv)
    context = build_context(args.dataset, scale=args.scale)
    print(f"dataset={context.dataset} task={context.task} scale={args.scale} "
          f"examples={len(context.train_examples)}")

    overrides = {"verbose": True, "fused_negatives": not args.looped_negatives,
                 "seed": args.seed}
    for name, value in (("epochs", args.epochs), ("batch_size", args.batch_size),
                        ("learning_rate", args.learning_rate),
                        ("negatives_per_positive", args.negatives)):
        if value is not None:
            overrides[name] = value
    trainer_config = context.trainer_config(**overrides)

    from repro.experiments.runners import build_model, train_model

    task_model = build_model(context, "SeqFM", seed=args.seed)
    result = train_model(context, task_model, trainer_config)
    print(f"stopped after {result.epochs_run} epochs ({result.stop_reason}); "
          f"final loss {result.final_loss:.5f} in {result.train_seconds:.1f}s")

    # Final held-out metrics — the same protocol (and seeding) the retrain
    # gate scores with, so this block is directly comparable to later
    # 'retrain' gate output.
    from repro.online.gate import EvalGate

    metrics = EvalGate(context.encoder, context.log, context.split,
                       context.task).score(task_model)
    print("== held-out metrics ==")
    print(json.dumps({key: float(value) for key, value in metrics.items()},
                     indent=2, sort_keys=True))

    save_seqfm(task_model.scorer, args.checkpoint)
    print(f"wrote {args.checkpoint}")
    head = {"ranking": "rank", "classification": "classify", "regression": "regress"}[context.task]
    print(f"serve it:  python -m repro.experiments.cli predict-batch "
          f"--checkpoint {args.checkpoint} --requests requests.json --head {head}")
    return 0


#: Subcommands that *are* heads (no ``--head`` option; the command name is
#: the head dispatched through the HeadRegistry).
COMMAND_HEADS = {"rank-topk": "rank-topk", "recommend": "recommend"}


def build_serving_parser(command: str) -> argparse.ArgumentParser:
    """Parser for the ``serve`` / ``predict-batch`` subcommands."""
    parser = argparse.ArgumentParser(
        prog=f"repro-experiments {command}",
        description="Serve a trained SeqFM checkpoint (see repro.serving).",
    )
    parser.add_argument("--checkpoint", type=Path, required=True,
                        help="SeqFM checkpoint written by repro.core.serialization.save_seqfm")
    # rank-topk and recommend *are* heads; no head to choose
    if command not in COMMAND_HEADS:
        head_choices = ("score", "rank", "classify", "regress")
        if command == "serve":
            head_choices += ("rank-topk", "recommend", "update", "status")
        parser.add_argument("--head", default="score", choices=head_choices,
                            help="default head for requests that do not route "
                                 "themselves via a v1 envelope (default: raw "
                                 "scores)" if command == "serve" else
                                 "task endpoint to evaluate (default: raw scores)")
    parser.add_argument("--max-batch-size", type=int, default=256,
                        help="micro-batcher flush threshold (default: 256)")
    parser.add_argument("--cache-capacity", type=int, default=4096,
                        help="user-sequence LRU capacity (default: 4096)")
    parser.add_argument("--cache-ttl", type=float, default=None,
                        help="seconds before a stored user sequence expires "
                             "(default: never; bounds update-head state "
                             "staleness)")
    if command == "serve":
        parser.add_argument("--workers", type=int, default=None,
                            help="serve through the concurrent runtime with "
                                 "this many workers (default: serial loop)")
        parser.add_argument("--max-inflight", type=int, default=None,
                            help="admission-control budget: requests in flight "
                                 "before new lines are rejected with a "
                                 "structured 'overloaded' error (default: "
                                 "32 x workers)")
        parser.add_argument("--shards", type=int, default=1,
                            help="consistent-hash shards of the user-sequence "
                                 "store, each independently locked "
                                 "(default: 1, unsharded)")
        parser.add_argument("--worker-timeout", type=float, default=None,
                            help="per-request deadline in seconds; expired "
                                 "requests get a structured 'timeout' error "
                                 "(default: none)")
        parser.add_argument("--coalesce", action="store_true",
                            help="merge consecutive same-(model, head) lines "
                                 "into shared micro-batches (scoring heads "
                                 "trade byte-for-byte parity with the serial "
                                 "loop for throughput)")
        parser.add_argument("--wal", type=Path, default=None,
                            help="durability directory: write-ahead log every "
                                 "store mutation there, recovering any prior "
                                 "snapshot + WAL on startup (inspect offline "
                                 "with the 'status' subcommand)")
        parser.add_argument("--fsync-every", type=int, default=256,
                            help="WAL appends per fsync batch (default: 256; "
                                 "1 = fsync every record)")
        parser.add_argument("--retries", type=int, default=0,
                            help="retry retryable worker failures this many "
                                 "times (jittered exponential backoff) before "
                                 "a structured 'retryable' error; requires "
                                 "--workers (default: 0)")
    if command in ("serve", "rank-topk", "recommend"):
        parser.add_argument("--k", type=int, default=None,
                            help="default top-K cut for ranking/recommendation "
                                 "requests without their own 'k'")
    if command in ("serve", "recommend"):
        parser.add_argument("--index", type=Path, default=None,
                            required=(command == "recommend"),
                            help="ItemIndex archive written by build-index "
                                 "(required for the recommend head)")
        parser.add_argument("--index-backend", default="exact", choices=("exact", "ivf"),
                            help="search backend over the item index (default: exact)")
        parser.add_argument("--partitions", type=int, default=None,
                            help="IVF partition count (default: ceil(sqrt(n_items)))")
        parser.add_argument("--n-probe", type=int, default=None,
                            help="IVF partitions probed per query "
                                 "(default: ceil(partitions / 4))")
        parser.add_argument("--n-retrieve", type=int, default=None,
                            help="retrieval fan-out handed to the re-ranker "
                                 "(default: 500)")
    if command in ("predict-batch", "rank-topk", "recommend"):
        parser.add_argument("--requests", type=Path, required=True,
                            help="JSON file holding a list of request objects")
        parser.add_argument("--output", type=Path, default=None,
                            help="write the response payload as JSON (default: stdout)")
    return parser


def _attach_index_from_args(registry, args) -> Optional[str]:
    """Load and attach ``--index`` per the CLI options; returns an error string."""
    if not hasattr(args, "index"):  # command without index options
        return None
    if args.index is None:
        # Index-tuning flags without an index would be silently dead — reject
        # them so the operator never believes IVF tuning is in effect.
        dangling = [option for option, value in
                    (("--index-backend", args.index_backend != "exact"),
                     ("--partitions", args.partitions is not None),
                     ("--n-probe", args.n_probe is not None),
                     ("--n-retrieve", args.n_retrieve is not None))
                    if value]
        if dangling:
            return f"{' / '.join(dangling)} require --index"
        return None
    backend_options = {}
    if args.partitions is not None:
        backend_options["n_partitions"] = args.partitions
    if args.n_probe is not None:
        backend_options["n_probe"] = args.n_probe
    if backend_options and args.index_backend != "ivf":
        used = " / ".join(option for option, value in (("--partitions", args.partitions),
                                                       ("--n-probe", args.n_probe))
                          if value is not None)
        return f"{used} only applies to '--index-backend ivf'"
    try:
        registry.load_index("default", args.index, backend=args.index_backend,
                            n_retrieve=args.n_retrieve, **backend_options)
    except (ValueError, KeyError, OSError, TypeError, zipfile.BadZipFile) as error:
        return f"cannot load index {args.index}: {error}"
    return None


def run_serving(command: str, argv: List[str]) -> int:
    """Execute a serving subcommand; returns a process exit code.

    Every subcommand dispatches through the generic protocol layer
    (:mod:`repro.serving.protocol`): the command (or ``--head``) names a
    registered head, :func:`repro.serving.service.execute_batch` /
    :func:`repro.serving.service.serve_jsonl` do the rest — nothing here is
    head-specific.
    """
    from repro.serving import ModelRegistry, default_heads
    from repro.serving.concurrent import serve_concurrent_jsonl
    from repro.serving.protocol import cache_stats_payload, cache_summary
    from repro.serving.service import execute_batch, serve_jsonl

    args = build_serving_parser(command).parse_args(argv)
    if not args.checkpoint.exists():
        print(f"error: checkpoint not found: {args.checkpoint}", file=sys.stderr)
        return 2
    workers = getattr(args, "workers", None)
    if workers is not None and workers < 1:
        print("error: --workers must be positive", file=sys.stderr)
        return 2
    retries = getattr(args, "retries", 0)
    if retries < 0:
        print("error: --retries must be non-negative", file=sys.stderr)
        return 2
    if retries > 0 and workers is None:
        print("error: --retries requires --workers (the concurrent runtime "
              "owns the retry loop)", file=sys.stderr)
        return 2
    registry = ModelRegistry(cache_capacity=args.cache_capacity,
                             cache_ttl=args.cache_ttl,
                             cache_shards=getattr(args, "shards", 1))
    try:
        registry.load("default", args.checkpoint)
    except (ValueError, KeyError, OSError, zipfile.BadZipFile) as error:
        print(f"error: cannot load {args.checkpoint}: {error}", file=sys.stderr)
        return 2
    index_error = _attach_index_from_args(registry, args)
    if index_error is not None:
        print(f"error: {index_error}", file=sys.stderr)
        return 2
    durable = None
    if getattr(args, "wal", None) is not None:
        if args.fsync_every < 1:
            print("error: --fsync-every must be positive", file=sys.stderr)
            return 2
        from repro.serving.durability import WALCorruptionError

        try:
            durable = registry.enable_durability(
                "default", args.wal, fsync_every=args.fsync_every)
        except (WALCorruptionError, ValueError, OSError) as error:
            print(f"error: cannot recover WAL state in {args.wal}: {error}",
                  file=sys.stderr)
            return 2
        recovery = durable.recovery
        print(f"durability: {args.wal} (snapshot seq {recovery.snapshot_seq}, "
              f"replayed {recovery.replayed} WAL records"
              f"{', healed torn tail' if recovery.torn_tail else ''})",
              file=sys.stderr)
        # A retrain manifest next to the WAL means this model has an online
        # version lineage — attach it so the live 'status' head serves the
        # retrain block (active tag, promoted/rejected counts, cursor).
        from repro.online.promotion import MANIFEST_NAME, ModelLineage

        online_dir = args.wal / "online"
        if (online_dir / MANIFEST_NAME).exists():
            lineage = ModelLineage(online_dir)
            registry.get("default").lineage = lineage
            active = lineage.active
            print(f"lineage: {online_dir} (active "
                  f"{lineage.tag(active.version) if active else 'none'}, "
                  f"{len(lineage)} versions)", file=sys.stderr)
    head = COMMAND_HEADS.get(command, getattr(args, "head", "score"))

    def store_summary() -> str:
        stats = registry.get("default").sequence_store.stats
        return cache_summary(cache_stats_payload(stats))

    if command != "serve":
        try:
            payloads = json.loads(args.requests.read_text())
        except (OSError, ValueError) as error:
            print(f"error: cannot read {args.requests}: {error}", file=sys.stderr)
            return 2
        if not isinstance(payloads, list) or not payloads:
            print(f"error: {args.requests} must contain a non-empty JSON list of requests",
                  file=sys.stderr)
            return 2
        try:
            response = execute_batch(
                registry, "default", payloads, head=head,
                k=getattr(args, "k", None),
                n_retrieve=getattr(args, "n_retrieve", None),
                max_batch_size=args.max_batch_size,
            )
        except (ValueError, KeyError, TypeError, IndexError, RuntimeError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        summary = default_heads().get(head).describe(response)
        rendered = json.dumps(response, indent=2)
        if args.output:
            args.output.parent.mkdir(parents=True, exist_ok=True)
            args.output.write_text(rendered + "\n")
            print(f"wrote {args.output} ({summary})")
        else:
            print(rendered)
            print(summary, file=sys.stderr)
        return 0

    try:
        if workers is not None:
            from repro.serving.faults import RetryPolicy

            retry = RetryPolicy(max_attempts=retries + 1) if retries else None
            summary = serve_concurrent_jsonl(
                registry, "default", sys.stdin, sys.stdout,
                head=head, max_batch_size=args.max_batch_size,
                k=args.k, n_retrieve=getattr(args, "n_retrieve", None),
                workers=workers, max_inflight=args.max_inflight,
                timeout=args.worker_timeout, coalesce=args.coalesce,
                retry=retry)
        else:
            summary = serve_jsonl(registry, "default", sys.stdin, sys.stdout,
                                  head=head, max_batch_size=args.max_batch_size,
                                  k=args.k, n_retrieve=getattr(args, "n_retrieve", None))
    except (ValueError, KeyError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    finally:
        if durable is not None:
            durable.close()
            print(f"durability: checkpointed to seq {durable.wal_status()['last_seq']} "
                  f"in {args.wal}", file=sys.stderr)
    codes = ""
    if summary.error_codes:
        breakdown = ", ".join(f"{code}={count}" for code, count
                              in sorted(summary.error_codes.items()))
        codes = f": {breakdown}"
    print(f"served {summary.rows} rows over {summary.served} lines "
          f"({summary.errors} errors{codes}, {store_summary()})",
          file=sys.stderr)
    return 0


def build_index_parser() -> argparse.ArgumentParser:
    """Parser for the ``build-index`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments build-index",
        description="Snapshot a checkpoint's item catalog into a searchable "
                    "ItemIndex archive (see repro.retrieval).",
    )
    parser.add_argument("--checkpoint", type=Path, required=True,
                        help="SeqFM checkpoint written by repro.core.serialization.save_seqfm")
    parser.add_argument("--output", type=Path, required=True,
                        help="where to write the ItemIndex archive (.npz)")
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument("--item-range", type=int, nargs=2, metavar=("START", "STOP"),
                       help="half-open static-vocabulary range of catalog items "
                            "(the FeatureEncoder layout puts objects at "
                            "[num_users, num_users + num_objects))")
    group.add_argument("--items-file", type=Path,
                       help="JSON file holding a list of static-vocabulary item indices")
    parser.add_argument("--probes", type=int, default=None,
                        help="probe items for the query encoder "
                             "(default: min(n_items, max(32, 4*d)))")
    parser.add_argument("--partitions", type=int, default=None,
                        help="k-means partition count for IVF search and "
                             "query calibration (default: ceil(sqrt(n_items)))")
    parser.add_argument("--seed", type=int, default=0,
                        help="probe-sampling / k-means seed (default: 0)")
    return parser


def run_build_index(argv: List[str]) -> int:
    """Build and save an item index from a checkpoint; returns an exit code."""
    from repro.core.serialization import load_seqfm
    from repro.retrieval import ItemIndex

    args = build_index_parser().parse_args(argv)
    if not args.checkpoint.exists():
        print(f"error: checkpoint not found: {args.checkpoint}", file=sys.stderr)
        return 2
    try:
        model = load_seqfm(args.checkpoint)
    except (ValueError, KeyError, OSError, zipfile.BadZipFile) as error:
        print(f"error: cannot load {args.checkpoint}: {error}", file=sys.stderr)
        return 2
    if args.item_range is not None:
        start, stop = args.item_range
        item_ids = range(start, stop)
    else:
        try:
            item_ids = json.loads(args.items_file.read_text())
        except (OSError, ValueError) as error:
            print(f"error: cannot read {args.items_file}: {error}", file=sys.stderr)
            return 2
        if not isinstance(item_ids, list) or not item_ids:
            print(f"error: {args.items_file} must contain a non-empty JSON list "
                  "of item indices", file=sys.stderr)
            return 2
    try:
        index = ItemIndex.from_model(model, item_ids,
                                     num_probes=args.probes, seed=args.seed,
                                     n_partitions=args.partitions)
    except (ValueError, IndexError, TypeError) as error:
        print(f"error: cannot build index: {error}", file=sys.stderr)
        return 2
    index.save(args.output)
    print(f"wrote {args.output} ({index.num_items} items, d={index.dim}, "
          f"{index.probe_positions.shape[0]} probes, "
          f"{index.n_partitions} partitions)")
    print(f"recommend with it:  python -m repro.experiments.cli recommend "
          f"--checkpoint {args.checkpoint} --index {args.output} "
          f"--requests users.json --k 10")
    return 0


def build_status_parser() -> argparse.ArgumentParser:
    """Parser for the ``status`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments status",
        description="Inspect a durability directory (snapshot + write-ahead "
                    "log) offline, without loading any model.  For the live "
                    "view, send a 'status'-head envelope to a running serve "
                    "loop instead.",
    )
    parser.add_argument("--wal", type=Path, required=True,
                        help="durability directory written by 'serve --wal'")
    parser.add_argument("--online", type=Path, default=None,
                        help="online-state directory (cursor + version "
                             "manifest) to include in the report "
                             "(default: <wal>/online when it exists)")
    parser.add_argument("--output", type=Path, default=None,
                        help="write the report as JSON (default: stdout)")
    return parser


def run_status(argv: List[str]) -> int:
    """Report on-disk durability state as JSON; returns an exit code."""
    from repro.serving.durability import WALCorruptionError, inspect_durability

    args = build_status_parser().parse_args(argv)
    if not args.wal.is_dir():
        print(f"error: durability directory not found: {args.wal}", file=sys.stderr)
        return 2
    try:
        report = inspect_durability(args.wal)
    except (WALCorruptionError, ValueError, OSError) as error:
        print(f"error: cannot inspect {args.wal}: {error}", file=sys.stderr)
        return 2
    online_dir = args.online if args.online is not None else args.wal / "online"
    if online_dir.is_dir():
        from repro.online import inspect_online

        try:
            report["online"] = inspect_online(online_dir)
        except (ValueError, OSError) as error:
            print(f"error: cannot inspect {online_dir}: {error}", file=sys.stderr)
            return 2
    rendered = json.dumps(report, indent=2, sort_keys=True)
    if args.output:
        args.output.parent.mkdir(parents=True, exist_ok=True)
        args.output.write_text(rendered + "\n")
        print(f"wrote {args.output}")
    else:
        print(rendered)
    return 0


def build_retrain_parser() -> argparse.ArgumentParser:
    """Parser for the ``retrain`` subcommand."""
    from repro.experiments.registry import SCALES, dataset_names

    parser = argparse.ArgumentParser(
        prog="repro-experiments retrain",
        description="Incrementally retrain a served checkpoint off its "
                    "write-ahead log: tail new 'record' events from the "
                    "persisted cursor, warm-start from the active checkpoint, "
                    "gate on held-out metrics and promote a versioned "
                    "model@vN checkpoint (see repro.online).",
    )
    parser.add_argument("--dataset", required=True, choices=dataset_names(),
                        help="registered dataset the model was trained on "
                             "(rebuilds the same encoder/split/gate slice)")
    parser.add_argument("--scale", default="quick", choices=sorted(SCALES),
                        help="dataset scale used at training time (default: quick)")
    parser.add_argument("--checkpoint", type=Path, required=True,
                        help="seed SeqFM checkpoint from 'train'; once a "
                             "version has been promoted, the lineage's active "
                             "model@vN checkpoint is warm-started instead")
    parser.add_argument("--wal", type=Path, required=True,
                        help="durability directory written by 'serve --wal' "
                             "(its wal.jsonl is the interaction log)")
    parser.add_argument("--online", type=Path, default=None,
                        help="online-state directory for the cursor, the "
                             "version manifest and model@vN checkpoints "
                             "(default: <wal>/online)")
    parser.add_argument("--index", type=Path, default=None,
                        help="ItemIndex archive from 'build-index'; attached "
                             "before retraining and re-written from the new "
                             "weights after a promotion")
    parser.add_argument("--dry-run", action="store_true",
                        help="run the full tail/train/gate cycle and print the "
                             "verdict, but mutate nothing (no checkpoint, no "
                             "registry swap, no cursor advance, no manifest)")
    parser.add_argument("--gate-tolerance", type=float, default=0.02,
                        help="largest held-out regression a gated metric may "
                             "show and still promote (default: 0.02; negative "
                             "demands improvement)")
    parser.add_argument("--since-cursor", type=int, default=None, metavar="SEQ",
                        help="re-read the log from this WAL sequence instead "
                             "of the persisted cursor (the cursor still only "
                             "moves forward)")
    parser.add_argument("--epochs", type=int, default=2,
                        help="incremental epochs over the tail (default: 2)")
    parser.add_argument("--batch-size", type=int, default=64,
                        help="incremental mini-batch size (default: 64)")
    parser.add_argument("--learning-rate", type=float, default=5e-3,
                        help="incremental Adam learning rate (default: 5e-3)")
    parser.add_argument("--negatives", type=int, default=2,
                        help="negatives per logged positive (default: 2)")
    parser.add_argument("--max-examples", type=int, default=None,
                        help="cap the tail to its newest N examples "
                             "(bounds a retrain after a traffic spike; the "
                             "cap is reported in the retrain report)")
    parser.add_argument("--seed", type=int, default=0,
                        help="incremental training seed (default: 0)")
    parser.add_argument("--output", type=Path, default=None,
                        help="also write the retrain report as JSON")
    return parser


def run_retrain(argv: List[str]) -> int:
    """Run one eval-gated incremental retrain cycle; returns an exit code."""
    from repro.experiments.registry import build_context
    from repro.online import (
        GateConfig,
        IncrementalTrainerConfig,
        ModelLineage,
        retrain_once,
    )
    from repro.serving import ModelRegistry
    from repro.serving.durability import WAL_NAME, WALCorruptionError

    args = build_retrain_parser().parse_args(argv)
    if not args.checkpoint.exists():
        print(f"error: checkpoint not found: {args.checkpoint}", file=sys.stderr)
        return 2
    if not args.wal.is_dir():
        print(f"error: durability directory not found: {args.wal}", file=sys.stderr)
        return 2
    online_dir = args.online if args.online is not None else args.wal / "online"

    context = build_context(args.dataset, scale=args.scale)
    if context.task == "regression":
        print("error: no online training path for regression datasets (the "
              "interaction log carries click events)", file=sys.stderr)
        return 2

    # Warm-start preference: the lineage's active promoted checkpoint, the
    # seed checkpoint otherwise — so successive retrains stack instead of
    # repeatedly fine-tuning the original weights.
    lineage = ModelLineage(online_dir, name="default")
    warm_start = args.checkpoint
    active = lineage.active
    if active is not None and active.checkpoint is not None:
        candidate_path = lineage.directory / active.checkpoint
        if candidate_path.exists():
            warm_start = candidate_path
            print(f"warm-starting from promoted {lineage.tag(active.version)} "
                  f"({candidate_path})", file=sys.stderr)

    registry = ModelRegistry()
    try:
        registry.load("default", warm_start)
    except (ValueError, KeyError, OSError, zipfile.BadZipFile) as error:
        print(f"error: cannot load {warm_start}: {error}", file=sys.stderr)
        return 2
    if args.index is not None:
        try:
            registry.load_index("default", args.index)
        except (ValueError, KeyError, OSError, TypeError,
                zipfile.BadZipFile) as error:
            print(f"error: cannot load index {args.index}: {error}",
                  file=sys.stderr)
            return 2

    try:
        report = retrain_once(
            registry, "default",
            wal_path=args.wal / WAL_NAME,
            online_dir=online_dir,
            encoder=context.encoder,
            log=context.log,
            split=context.split,
            task=context.task,
            gate_config=GateConfig(tolerance=args.gate_tolerance),
            trainer_config=IncrementalTrainerConfig(
                epochs=args.epochs,
                batch_size=args.batch_size,
                learning_rate=args.learning_rate,
                negatives_per_positive=args.negatives,
                max_examples=args.max_examples,
                seed=args.seed,
            ),
            dry_run=args.dry_run,
            since_seq=args.since_cursor,
        )
    except (WALCorruptionError, ValueError, KeyError, OSError) as error:
        print(f"error: retrain failed: {error}", file=sys.stderr)
        return 2

    if report.status == "promoted" and args.index is not None:
        # The promotion rebuilt the in-memory index from the new weights;
        # persist it so the next serve loop retrieves against them too.
        registry.save_index("default", args.index)
        print(f"rewrote {args.index} from {report.tag}", file=sys.stderr)

    rendered = json.dumps(report.as_dict(), indent=2, sort_keys=True)
    print("== retrain report ==")
    print(rendered)
    if args.output:
        args.output.parent.mkdir(parents=True, exist_ok=True)
        args.output.write_text(rendered + "\n")
        print(f"wrote {args.output}", file=sys.stderr)
    print(f"retrain: {report.status} (events={report.events}, "
          f"examples={report.examples}, seq {report.start_seq} -> "
          f"{report.end_seq})", file=sys.stderr)
    # A rejected candidate is a refused promotion, not a crash: exit 2 so
    # operators and CI can branch on it; dry runs and no-ops are clean exits.
    return 2 if report.status == "rejected" else 0


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == TRAIN_COMMAND:
        return run_train(argv[1:])
    if argv and argv[0] == BUILD_INDEX_COMMAND:
        return run_build_index(argv[1:])
    if argv and argv[0] == STATUS_COMMAND:
        return run_status(argv[1:])
    if argv and argv[0] == RETRAIN_COMMAND:
        return run_retrain(argv[1:])
    if argv and argv[0] in SERVING_COMMANDS:
        return run_serving(argv[0], argv[1:])
    args = build_parser().parse_args(argv)
    if args.experiment == "all":
        output_dir = args.output_dir
        for name in EXPERIMENTS:
            print(f"\n===== {name} =====")
            output = (output_dir / f"{name}.json") if output_dir else None
            run_experiment(name, args.scale, args.datasets, args.seed, output)
        return 0
    run_experiment(args.experiment, args.scale, args.datasets, args.seed, args.output)
    return 0


if __name__ == "__main__":
    sys.exit(main())
