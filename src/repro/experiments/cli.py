"""Command-line interface for the experiment harness.

Regenerate any table or figure of the paper from the shell::

    python -m repro.experiments.cli table2 --scale quick
    python -m repro.experiments.cli table5 --datasets gowalla beauty
    python -m repro.experiments.cli figure4 --output results/figure4.json
    python -m repro.experiments.cli all --scale small --output-dir results/

``--output`` / ``--output-dir`` export the regenerated tables as JSON via
:mod:`repro.core.serialization` so runs can be archived and diffed.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional

from repro.experiments import (
    reference,
    run_figure3,
    run_figure4,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
)
from repro.experiments.reporting import ResultTable, compare_to_paper

EXPERIMENTS = ("table1", "table2", "table3", "table4", "table5", "figure3", "figure4")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the tables and figures of the SeqFM paper (ICDE 2020).",
    )
    parser.add_argument("experiment", choices=EXPERIMENTS + ("all",),
                        help="which artefact to regenerate")
    parser.add_argument("--scale", default="quick", choices=("quick", "small", "full"),
                        help="dataset / training size (default: quick)")
    parser.add_argument("--datasets", nargs="*", default=None,
                        help="restrict to specific datasets (defaults to the paper's choice)")
    parser.add_argument("--seed", type=int, default=0, help="training seed")
    parser.add_argument("--output", type=Path, default=None,
                        help="write the result of a single experiment as JSON")
    parser.add_argument("--output-dir", type=Path, default=None,
                        help="directory for JSON exports when running 'all'")
    return parser


def _print_tables(tables: Dict[str, ResultTable], paper: Dict[str, dict]) -> None:
    for dataset, table in tables.items():
        print(table)
        if dataset in paper:
            print()
            print(compare_to_paper(table, paper[dataset]))
        print()


def _export(table: ResultTable, path: Path) -> None:
    from repro.core.serialization import save_result_table

    save_result_table(table, path)
    print(f"wrote {path}")


def run_experiment(name: str, scale: str, datasets: Optional[List[str]], seed: int,
                   output: Optional[Path] = None) -> None:
    """Run one experiment, print its result and optionally export it."""
    if name == "table1":
        table = run_table1(datasets=tuple(datasets) if datasets else
                           ("gowalla", "foursquare", "trivago", "taobao", "beauty", "toys"),
                           scale=scale)
        print(table)
        if output:
            _export(table, output)
        return

    if name in ("table2", "table3", "table4"):
        runner = {"table2": run_table2, "table3": run_table3, "table4": run_table4}[name]
        paper = {"table2": reference.TABLE2_RANKING,
                 "table3": reference.TABLE3_CLASSIFICATION,
                 "table4": reference.TABLE4_REGRESSION}[name]
        kwargs = {"scale": scale, "seed": seed}
        if datasets:
            kwargs["datasets"] = tuple(datasets)
        tables = runner(**kwargs)
        _print_tables(tables, paper)
        if output:
            for dataset, table in tables.items():
                _export(table, output.with_name(f"{output.stem}_{dataset}{output.suffix or '.json'}"))
        return

    if name == "table5":
        kwargs = {"scale": scale, "seed": seed}
        if datasets:
            kwargs["datasets"] = tuple(datasets)
        table = run_table5(**kwargs)
        print(table)
        if output:
            _export(table, output)
        return

    if name == "figure3":
        kwargs = {"scale": scale, "seed": seed}
        if datasets:
            kwargs["datasets"] = tuple(datasets)
        series_list = run_figure3(**kwargs)
        payload = []
        for series in series_list:
            print(f"{series.dataset} [{series.metric}] vs {series.hyperparameter}: "
                  f"{series.as_dict()}  best={series.best_value()}")
            payload.append({
                "dataset": series.dataset, "task": series.task,
                "hyperparameter": series.hyperparameter, "metric": series.metric,
                "values": [str(v) for v in series.values], "scores": series.scores,
            })
        if output:
            output.parent.mkdir(parents=True, exist_ok=True)
            output.write_text(json.dumps(payload, indent=2))
            print(f"wrote {output}")
        return

    if name == "figure4":
        result = run_figure4(scale=scale, seed=seed)
        print(f"Figure 4 — training time on {result.dataset}")
        for proportion, seconds, count in zip(result.proportions, result.train_seconds,
                                              result.num_examples):
            print(f"  proportion={proportion:.1f}  examples={count:5d}  time={seconds:7.2f}s")
        print(f"  linear fit R^2 = {result.linear_r_squared:.4f}")
        if output:
            output.parent.mkdir(parents=True, exist_ok=True)
            output.write_text(json.dumps({
                "dataset": result.dataset,
                "proportions": result.proportions,
                "train_seconds": result.train_seconds,
                "num_examples": result.num_examples,
                "linear_r_squared": result.linear_r_squared,
            }, indent=2))
            print(f"wrote {output}")
        return

    raise ValueError(f"unknown experiment {name!r}")


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.experiment == "all":
        output_dir = args.output_dir
        for name in EXPERIMENTS:
            print(f"\n===== {name} =====")
            output = (output_dir / f"{name}.json") if output_dir else None
            run_experiment(name, args.scale, args.datasets, args.seed, output)
        return 0
    run_experiment(args.experiment, args.scale, args.datasets, args.seed, args.output)
    return 0


if __name__ == "__main__":
    sys.exit(main())
