"""Shared train-and-evaluate machinery used by the table/figure runners."""

from __future__ import annotations

from typing import Dict, Optional

from repro.baselines import BASELINE_REGISTRY
from repro.core.model import SeqFM
from repro.core.tasks import TaskModel, make_task_model
from repro.core.trainer import Trainer, TrainerConfig, TrainingResult
from repro.eval.protocol import EvaluationProtocol
from repro.experiments.registry import ExperimentContext


def build_model(context: ExperimentContext, model_name: str, seed: int = 0,
                **seqfm_overrides) -> TaskModel:
    """Instantiate SeqFM or a named baseline wrapped with the context's task head."""
    if model_name == "SeqFM":
        scorer = SeqFM(context.seqfm_config(seed=seed, **seqfm_overrides))
    elif model_name in BASELINE_REGISTRY:
        baseline_cls = BASELINE_REGISTRY[model_name]
        kwargs = dict(
            static_vocab_size=context.encoder.static_vocab_size,
            dynamic_vocab_size=context.encoder.dynamic_vocab_size,
            embed_dim=context.scale.embed_dim,
            seed=seed,
        )
        if model_name == "SASRec":
            kwargs["max_seq_len"] = context.encoder.max_seq_len
        scorer = baseline_cls(**kwargs)
    else:
        raise KeyError(f"unknown model {model_name!r}")
    return make_task_model(scorer, context.task)


def train_model(
    context: ExperimentContext,
    task_model: TaskModel,
    trainer_config: Optional[TrainerConfig] = None,
) -> TrainingResult:
    """Fit a task model on the context's training instances."""
    trainer = Trainer(
        task_model,
        context.encoder,
        sampler=context.sampler if context.task != "regression" else None,
        config=trainer_config or context.trainer_config(),
    )
    return trainer.fit(context.train_examples)


def evaluate_model(
    context: ExperimentContext,
    task_model: TaskModel,
    max_users: Optional[int] = None,
) -> Dict[str, float]:
    """Run the paper's leave-one-out protocol for the context's task."""
    protocol = EvaluationProtocol(
        context.encoder,
        sampler=context.sampler,
        num_ranking_negatives=context.scale.ranking_negatives,
        seed=7,
    )
    return protocol.evaluate(task_model, context.split, context.task, max_users=max_users)


def train_and_evaluate(
    context: ExperimentContext,
    model_name: str,
    seed: int = 0,
    trainer_config: Optional[TrainerConfig] = None,
    max_users: Optional[int] = None,
    **seqfm_overrides,
) -> Dict[str, float]:
    """Build, train and evaluate a model; returns the metric dictionary.

    The training wall-clock time is added under the key ``train_seconds`` so
    runners that need it (Figure 4) do not have to re-train.
    """
    task_model = build_model(context, model_name, seed=seed, **seqfm_overrides)
    training = train_model(context, task_model, trainer_config)
    metrics = evaluate_model(context, task_model, max_users=max_users)
    metrics["train_seconds"] = training.train_seconds
    return metrics
