"""Experiment contexts: dataset + split + encoder + sampler bundles.

The experiment runners all need the same prepared objects for a dataset:
the filtered interaction log, its leave-one-out split, the feature encoder,
the negative sampler and the encoded training instances.  ``build_context``
assembles them at one of three scales:

* ``quick`` — tiny datasets and few epochs; used by the pytest benchmarks so
  the whole suite regenerates every table in minutes on a CPU;
* ``small`` — the default synthetic dataset sizes from :mod:`repro.data.synthetic`;
* ``full``  — larger synthetic datasets for higher-fidelity runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.config import SeqFMConfig
from repro.core.trainer import TrainerConfig
from repro.data import synthetic
from repro.data.features import EncodedExample, FeatureEncoder
from repro.data.interactions import InteractionLog
from repro.data.preprocess import chronological_sort, filter_by_activity
from repro.data.sampling import NegativeSampler
from repro.data.split import LeaveOneOutSplit, leave_one_out_split


@dataclass(frozen=True)
class ScaleSpec:
    """Dataset and training sizes for one experiment scale."""

    users: int
    objects: int
    interactions_per_user: int
    epochs: int
    embed_dim: int
    max_seq_len: int
    ranking_negatives: int
    batch_size: int
    negatives_per_positive: int
    learning_rate: float = 5e-3


SCALES: Dict[str, ScaleSpec] = {
    "quick": ScaleSpec(users=70, objects=90, interactions_per_user=20, epochs=8,
                       embed_dim=16, max_seq_len=10, ranking_negatives=50,
                       batch_size=64, negatives_per_positive=2, learning_rate=8e-3),
    "small": ScaleSpec(users=150, objects=220, interactions_per_user=30, epochs=5,
                       embed_dim=32, max_seq_len=20, ranking_negatives=100,
                       batch_size=128, negatives_per_positive=2),
    "full": ScaleSpec(users=400, objects=600, interactions_per_user=40, epochs=8,
                      embed_dim=64, max_seq_len=20, ranking_negatives=200,
                      batch_size=256, negatives_per_positive=2),
}

# Which synthetic generator and activity threshold backs each dataset name.
_GENERATORS = {
    "gowalla": (synthetic.generate_poi_checkins, {"sequential_strength": 0.8}, "ranking", 11),
    "foursquare": (synthetic.generate_poi_checkins, {"sequential_strength": 0.75}, "ranking", 13),
    "trivago": (synthetic.generate_ctr_log, {"sequential_strength": 0.8}, "classification", 17),
    "taobao": (synthetic.generate_ctr_log, {"sequential_strength": 0.85}, "classification", 19),
    "beauty": (synthetic.generate_rating_log, {"sequential_strength": 0.8}, "regression", 23),
    "toys": (synthetic.generate_rating_log, {"sequential_strength": 0.75}, "regression", 29),
}


def dataset_names() -> List[str]:
    """Names accepted by :func:`build_context` (and the CLI's ``--dataset``)."""
    return sorted(_GENERATORS)


@dataclass
class ExperimentContext:
    """Everything a runner needs for one dataset at one scale."""

    dataset: str
    task: str
    scale: ScaleSpec
    log: InteractionLog
    split: LeaveOneOutSplit
    encoder: FeatureEncoder
    sampler: NegativeSampler
    train_examples: List[EncodedExample]

    def seqfm_config(self, **overrides) -> SeqFMConfig:
        """A SeqFM configuration sized for this context."""
        params = dict(
            static_vocab_size=self.encoder.static_vocab_size,
            dynamic_vocab_size=self.encoder.dynamic_vocab_size,
            num_static_features=self.encoder.num_static_features,
            max_seq_len=self.encoder.max_seq_len,
            embed_dim=self.scale.embed_dim,
            ffn_layers=1,
            dropout=0.2,
            seed=0,
        )
        params.update(overrides)
        return SeqFMConfig(**params)

    def trainer_config(self, **overrides) -> TrainerConfig:
        params = dict(
            epochs=self.scale.epochs,
            batch_size=self.scale.batch_size,
            learning_rate=self.scale.learning_rate,
            negatives_per_positive=self.scale.negatives_per_positive,
            seed=0,
        )
        params.update(overrides)
        return TrainerConfig(**params)


def build_context(dataset: str, scale: str = "quick",
                  max_seq_len: Optional[int] = None,
                  seed_offset: int = 0) -> ExperimentContext:
    """Generate, filter, split and encode one dataset at the requested scale."""
    key = dataset.lower()
    if key not in _GENERATORS:
        raise KeyError(f"unknown dataset {dataset!r}; known: {sorted(_GENERATORS)}")
    if scale not in SCALES:
        raise KeyError(f"unknown scale {scale!r}; known: {sorted(SCALES)}")

    generator, extra, task, seed = _GENERATORS[key]
    spec = SCALES[scale]
    config = synthetic.SyntheticConfig(
        num_users=spec.users,
        num_objects=spec.objects,
        interactions_per_user=spec.interactions_per_user,
        seed=seed + seed_offset,
        sequential_strength=extra["sequential_strength"],
    )
    log = generator(config)
    log.name = f"{key}-like"
    min_activity = 5 if task == "regression" else 8
    log = filter_by_activity(log, min_user_interactions=min_activity, min_object_interactions=3)
    log = chronological_sort(log)

    split = leave_one_out_split(log)
    encoder = FeatureEncoder(log, max_seq_len=max_seq_len or spec.max_seq_len)
    sampler = NegativeSampler(log, seed=seed)
    use_ratings = task == "regression"
    train_examples = encoder.encode_training_instances(split.train, use_ratings=use_ratings)

    return ExperimentContext(
        dataset=key,
        task=task,
        scale=spec,
        log=log,
        split=split,
        encoder=encoder,
        sampler=sampler,
        train_examples=train_examples,
    )
