"""Table III — classification task (click-through-rate prediction).

Trains SeqFM and the CTR baselines (FM, Wide&Deep, DeepCross, NFM, AFM, DIN,
xDeepFM) on the Trivago-like and Taobao-like datasets with the log loss and
reports AUC / RMSE on the held-out records (one sampled negative per
positive).
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.experiments import reference
from repro.experiments.registry import build_context
from repro.experiments.reporting import ResultTable, compare_to_paper
from repro.experiments.runners import train_and_evaluate

CLASSIFICATION_DATASETS = ("trivago", "taobao")
CLASSIFICATION_MODELS = ("FM", "Wide&Deep", "DeepCross", "NFM", "AFM", "DIN", "xDeepFM", "SeqFM")
CLASSIFICATION_COLUMNS = ["AUC", "RMSE"]


def run_table3(
    datasets: Sequence[str] = CLASSIFICATION_DATASETS,
    models: Sequence[str] = CLASSIFICATION_MODELS,
    scale: str = "quick",
    seed: int = 0,
) -> Dict[str, ResultTable]:
    """Regenerate Table III; returns one ResultTable per dataset."""
    tables: Dict[str, ResultTable] = {}
    for dataset in datasets:
        context = build_context(dataset, scale=scale)
        table = ResultTable(
            title=f"Table III — CTR classification on {dataset} (scale={scale})",
            columns=CLASSIFICATION_COLUMNS,
        )
        for model_name in models:
            metrics = train_and_evaluate(context, model_name, seed=seed)
            table.add_row(model_name, {column: metrics[column] for column in CLASSIFICATION_COLUMNS})
        table.metadata["paper"] = reference.TABLE3_CLASSIFICATION.get(dataset, {})
        table.metadata["dataset_statistics"] = context.log.statistics()
        tables[dataset] = table
    return tables


def main() -> None:
    tables = run_table3()
    for dataset, table in tables.items():
        print(table)
        print()
        print(compare_to_paper(table, reference.TABLE3_CLASSIFICATION[dataset]))
        print()


if __name__ == "__main__":
    main()
