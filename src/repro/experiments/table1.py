"""Table I — statistics of the datasets in use."""

from __future__ import annotations

from typing import Sequence

from repro.data.datasets import dataset_statistics
from repro.experiments import reference
from repro.experiments.registry import build_context
from repro.experiments.reporting import ResultTable

ALL_DATASETS = ("gowalla", "foursquare", "trivago", "taobao", "beauty", "toys")


def run_table1(datasets: Sequence[str] = ALL_DATASETS, scale: str = "quick") -> ResultTable:
    """Regenerate Table I for the synthetic stand-in datasets.

    Columns mirror the paper: instance, user and object counts plus the total
    number of sparse feature dimensions; the paper's numbers for the real
    datasets are attached in ``metadata['paper']`` for side-by-side printing.
    """
    table = ResultTable(
        title=f"Table I — dataset statistics (synthetic, scale={scale})",
        columns=["instances", "users", "objects", "features"],
    )
    for dataset in datasets:
        context = build_context(dataset, scale=scale)
        stats = dataset_statistics(context.log, max_seq_len=context.encoder.max_seq_len)
        table.add_row(dataset, {
            "instances": stats["instances"],
            "users": stats["users"],
            "objects": stats["objects"],
            "features": stats["features"],
        })
    table.metadata["paper"] = reference.TABLE1_DATASETS
    return table


def main() -> None:
    table = run_table1()
    print(table)
    print()
    print("Paper (real datasets):")
    for name, stats in reference.TABLE1_DATASETS.items():
        print(f"  {name:12s} instances={stats['instances']:>9,} users={stats['users']:>7,} "
              f"objects={stats['objects']:>7,} features={stats['features']:>8,}")


if __name__ == "__main__":
    main()
