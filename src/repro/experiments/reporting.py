"""Result tables and text reporting for the experiment runners."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence


@dataclass
class ResultTable:
    """A (row × column) table of floats, e.g. models × metrics.

    Attributes
    ----------
    title:
        Table caption (printed above the table).
    columns:
        Ordered column names (metrics).
    rows:
        Mapping ``row name → {column → value}``; insertion order is preserved
        and used when printing.
    metadata:
        Free-form extra information (dataset sizes, runtimes, ...).
    """

    title: str
    columns: List[str]
    rows: Dict[str, Dict[str, float]] = field(default_factory=dict)
    metadata: Dict[str, object] = field(default_factory=dict)

    def add_row(self, name: str, values: Mapping[str, float]) -> None:
        missing = [column for column in self.columns if column not in values]
        if missing:
            raise KeyError(f"row {name!r} is missing columns {missing}")
        self.rows[name] = {column: float(values[column]) for column in self.columns}

    def get(self, row: str, column: str) -> float:
        return self.rows[row][column]

    def best_row(self, column: str, maximise: bool = True) -> str:
        """Name of the row with the best value in ``column``."""
        if not self.rows:
            raise ValueError("table has no rows")
        chooser = max if maximise else min
        return chooser(self.rows, key=lambda name: self.rows[name][column])

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        return {name: dict(values) for name, values in self.rows.items()}

    def __str__(self) -> str:
        return format_table(self)


def format_table(table: ResultTable, precision: int = 3, width: int = 10) -> str:
    """Render a :class:`ResultTable` as fixed-width text."""
    name_width = max([len(name) for name in table.rows] + [len("model"), 12])
    header = "model".ljust(name_width) + "".join(column.rjust(width) for column in table.columns)
    lines = [table.title, "=" * len(header), header, "-" * len(header)]
    for name, values in table.rows.items():
        cells = "".join(f"{values[column]:.{precision}f}".rjust(width) for column in table.columns)
        lines.append(name.ljust(name_width) + cells)
    return "\n".join(lines)


def compare_to_paper(
    measured: ResultTable,
    paper: Mapping[str, Mapping[str, float]],
    columns: Optional[Sequence[str]] = None,
    precision: int = 3,
) -> str:
    """Side-by-side "measured vs. paper" text for rows present in both."""
    columns = list(columns or measured.columns)
    lines = [f"{measured.title} — measured (this repo) vs. paper"]
    header = "model".ljust(14) + "".join(
        f"{column} (ours/paper)".rjust(24) for column in columns
    )
    lines.append(header)
    lines.append("-" * len(header))
    for name, values in measured.rows.items():
        if name not in paper:
            continue
        cells = []
        for column in columns:
            ours = values.get(column)
            theirs = paper[name].get(column)
            if ours is None or theirs is None:
                cells.append("n/a".rjust(24))
            else:
                cells.append(f"{ours:.{precision}f} / {theirs:.{precision}f}".rjust(24))
        lines.append(name.ljust(14) + "".join(cells))
    return "\n".join(lines)


def relative_improvement(better: float, worse: float) -> float:
    """Relative improvement of ``better`` over ``worse`` (positive = better is larger)."""
    if worse == 0:
        return float("inf") if better > 0 else 0.0
    return (better - worse) / abs(worse)
