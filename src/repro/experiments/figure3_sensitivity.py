"""Figure 3 — hyper-parameter sensitivity analysis.

The paper varies one hyper-parameter at a time around the standard setting
{d = 64, l = 1, n˙ = 20, ρ = 0.6} and records HR@10 (ranking), AUC
(classification) and MAE (regression).  This runner performs the same
one-at-a-time sweep for any subset of the four hyper-parameters on one
dataset per task and returns one result series per (dataset, hyper-parameter)
pair — exactly the data series plotted in Figure 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.experiments import reference
from repro.experiments.registry import build_context
from repro.experiments.runners import train_and_evaluate

#: Hyper-parameter → SeqFMConfig field it maps onto.
SWEEPABLE = {"embed_dim", "ffn_layers", "max_seq_len", "dropout"}

#: Metric reported per task (as in Figure 3).
SENSITIVITY_METRIC = {"ranking": "HR@10", "classification": "AUC", "regression": "MAE"}

DEFAULT_DATASETS = ("gowalla", "trivago", "beauty")

#: Reduced sweep grids used at the quick scale (subset of the paper's grids).
QUICK_GRIDS = {
    "embed_dim": [8, 16, 32],
    "ffn_layers": [1, 2, 3],
    "max_seq_len": [5, 10, 20],
    "dropout": [0.2, 0.5, 0.8],
}


@dataclass
class SensitivitySeries:
    """One curve of Figure 3: a metric as a function of one hyper-parameter."""

    dataset: str
    task: str
    hyperparameter: str
    metric: str
    values: List[object] = field(default_factory=list)
    scores: List[float] = field(default_factory=list)

    def best_value(self) -> object:
        """Hyper-parameter value with the best metric (max for HR/AUC, min for MAE)."""
        maximise = self.metric != "MAE"
        chooser = max if maximise else min
        index = self.scores.index(chooser(self.scores))
        return self.values[index]

    def as_dict(self) -> Dict[str, float]:
        return dict(zip([str(v) for v in self.values], self.scores))


def run_figure3(
    datasets: Sequence[str] = DEFAULT_DATASETS,
    hyperparameters: Sequence[str] = ("embed_dim", "ffn_layers", "max_seq_len", "dropout"),
    grids: Dict[str, Sequence[object]] = None,
    scale: str = "quick",
    seed: int = 0,
) -> List[SensitivitySeries]:
    """Run the one-at-a-time sensitivity sweep and return all series."""
    for name in hyperparameters:
        if name not in SWEEPABLE:
            raise KeyError(f"cannot sweep {name!r}; choose from {sorted(SWEEPABLE)}")
    grids = grids or (QUICK_GRIDS if scale == "quick" else reference.FIGURE3_GRIDS)

    series_list: List[SensitivitySeries] = []
    for dataset in datasets:
        base_context = build_context(dataset, scale=scale)
        metric = SENSITIVITY_METRIC[base_context.task]
        for name in hyperparameters:
            series = SensitivitySeries(
                dataset=dataset, task=base_context.task, hyperparameter=name, metric=metric
            )
            for value in grids[name]:
                if name == "max_seq_len":
                    # Changing n˙ changes the encoding, so rebuild the context.
                    context = build_context(dataset, scale=scale, max_seq_len=int(value))
                    metrics = train_and_evaluate(context, "SeqFM", seed=seed)
                else:
                    metrics = train_and_evaluate(base_context, "SeqFM", seed=seed, **{name: value})
                series.values.append(value)
                series.scores.append(metrics[metric])
            series_list.append(series)
    return series_list


def main() -> None:
    for series in run_figure3(datasets=("gowalla",), hyperparameters=("embed_dim", "dropout")):
        print(f"{series.dataset} [{series.metric}] vs {series.hyperparameter}:")
        for value, score in zip(series.values, series.scores):
            print(f"  {series.hyperparameter}={value}: {score:.4f}")
        print(f"  best: {series.best_value()}")


if __name__ == "__main__":
    main()
