"""Table II — ranking task (next-POI recommendation).

Trains SeqFM and the paper's ranking baselines (FM, Wide&Deep, DeepCross,
NFM, AFM, SASRec, TFM) on the Gowalla-like and Foursquare-like datasets with
the BPR loss and reports HR@K / NDCG@K for K ∈ {5, 10, 20} under the
leave-one-out protocol.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.experiments import reference
from repro.experiments.registry import build_context
from repro.experiments.reporting import ResultTable, compare_to_paper
from repro.experiments.runners import train_and_evaluate

RANKING_DATASETS = ("gowalla", "foursquare")
RANKING_MODELS = ("FM", "Wide&Deep", "DeepCross", "NFM", "AFM", "SASRec", "TFM", "SeqFM")
RANKING_COLUMNS = ["HR@5", "HR@10", "HR@20", "NDCG@5", "NDCG@10", "NDCG@20"]


def run_table2(
    datasets: Sequence[str] = RANKING_DATASETS,
    models: Sequence[str] = RANKING_MODELS,
    scale: str = "quick",
    seed: int = 0,
) -> Dict[str, ResultTable]:
    """Regenerate Table II; returns one ResultTable per dataset."""
    tables: Dict[str, ResultTable] = {}
    for dataset in datasets:
        context = build_context(dataset, scale=scale)
        table = ResultTable(
            title=f"Table II — ranking on {dataset} (scale={scale})",
            columns=RANKING_COLUMNS,
        )
        for model_name in models:
            metrics = train_and_evaluate(context, model_name, seed=seed)
            table.add_row(model_name, {column: metrics[column] for column in RANKING_COLUMNS})
        table.metadata["paper"] = reference.TABLE2_RANKING.get(dataset, {})
        table.metadata["dataset_statistics"] = context.log.statistics()
        tables[dataset] = table
    return tables


def main() -> None:
    tables = run_table2()
    for dataset, table in tables.items():
        print(table)
        print()
        print(compare_to_paper(table, reference.TABLE2_RANKING[dataset],
                               columns=["HR@10", "NDCG@10"]))
        print()


if __name__ == "__main__":
    main()
