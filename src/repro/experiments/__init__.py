"""Experiment harness: one runner per table and figure of the paper.

Each runner builds the datasets, trains SeqFM and the relevant baselines with
the shared trainer, evaluates them with the paper's protocol and returns a
:class:`~repro.experiments.reporting.ResultTable` that can be printed next to
the paper's reported numbers.

Runners accept a ``scale`` argument (``"quick"`` / ``"small"`` / ``"full"``)
controlling dataset size and training epochs so the same code serves fast CI
benchmarks and longer, higher-fidelity runs.
"""

from repro.experiments.registry import ExperimentContext, build_context, SCALES
from repro.experiments.reporting import ResultTable, format_table, compare_to_paper
from repro.experiments import reference
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2
from repro.experiments.table3 import run_table3
from repro.experiments.table4 import run_table4
from repro.experiments.table5_ablation import run_table5
from repro.experiments.figure3_sensitivity import run_figure3
from repro.experiments.figure4_scalability import run_figure4

__all__ = [
    "ExperimentContext",
    "build_context",
    "SCALES",
    "ResultTable",
    "format_table",
    "compare_to_paper",
    "reference",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_table4",
    "run_table5",
    "run_figure3",
    "run_figure4",
]
