"""The paper's reported numbers (Tables II-V) for side-by-side reporting.

These constants are transcriptions of the result tables in the paper and are
used only for comparison and shape checks (who wins, by roughly what factor);
the reproduction's absolute numbers come from the synthetic scaled-down
datasets and are not expected to match them.
"""

from __future__ import annotations

# --------------------------------------------------------------------------- #
# Table II — ranking (HR@K / NDCG@K for K = 5, 10, 20)
# --------------------------------------------------------------------------- #
TABLE2_RANKING = {
    "gowalla": {
        "FM": {"HR@5": 0.232, "HR@10": 0.318, "HR@20": 0.419,
               "NDCG@5": 0.158, "NDCG@10": 0.187, "NDCG@20": 0.211},
        "Wide&Deep": {"HR@5": 0.288, "HR@10": 0.401, "HR@20": 0.532,
                      "NDCG@5": 0.199, "NDCG@10": 0.238, "NDCG@20": 0.267},
        "DeepCross": {"HR@5": 0.273, "HR@10": 0.379, "HR@20": 0.505,
                      "NDCG@5": 0.182, "NDCG@10": 0.204, "NDCG@20": 0.241},
        "NFM": {"HR@5": 0.286, "HR@10": 0.395, "HR@20": 0.525,
                "NDCG@5": 0.199, "NDCG@10": 0.236, "NDCG@20": 0.264},
        "AFM": {"HR@5": 0.295, "HR@10": 0.407, "HR@20": 0.534,
                "NDCG@5": 0.204, "NDCG@10": 0.242, "NDCG@20": 0.270},
        "SASRec": {"HR@5": 0.310, "HR@10": 0.424, "HR@20": 0.559,
                   "NDCG@5": 0.209, "NDCG@10": 0.253, "NDCG@20": 0.285},
        "TFM": {"HR@5": 0.307, "HR@10": 0.430, "HR@20": 0.556,
                "NDCG@5": 0.216, "NDCG@10": 0.256, "NDCG@20": 0.283},
        "SeqFM": {"HR@5": 0.345, "HR@10": 0.467, "HR@20": 0.603,
                  "NDCG@5": 0.243, "NDCG@10": 0.283, "NDCG@20": 0.316},
    },
    "foursquare": {
        "FM": {"HR@5": 0.241, "HR@10": 0.303, "HR@20": 0.433,
               "NDCG@5": 0.169, "NDCG@10": 0.201, "NDCG@20": 0.217},
        "Wide&Deep": {"HR@5": 0.233, "HR@10": 0.317, "HR@20": 0.422,
                      "NDCG@5": 0.165, "NDCG@10": 0.192, "NDCG@20": 0.218},
        "DeepCross": {"HR@5": 0.282, "HR@10": 0.355, "HR@20": 0.492,
                      "NDCG@5": 0.198, "NDCG@10": 0.210, "NDCG@20": 0.229},
        "NFM": {"HR@5": 0.239, "HR@10": 0.325, "HR@20": 0.435,
                "NDCG@5": 0.170, "NDCG@10": 0.198, "NDCG@20": 0.225},
        "AFM": {"HR@5": 0.279, "HR@10": 0.379, "HR@20": 0.504,
                "NDCG@5": 0.199, "NDCG@10": 0.212, "NDCG@20": 0.233},
        "SASRec": {"HR@5": 0.266, "HR@10": 0.350, "HR@20": 0.467,
                   "NDCG@5": 0.175, "NDCG@10": 0.204, "NDCG@20": 0.216},
        "TFM": {"HR@5": 0.283, "HR@10": 0.390, "HR@20": 0.512,
                "NDCG@5": 0.203, "NDCG@10": 0.223, "NDCG@20": 0.248},
        "SeqFM": {"HR@5": 0.324, "HR@10": 0.431, "HR@20": 0.554,
                  "NDCG@5": 0.227, "NDCG@10": 0.262, "NDCG@20": 0.293},
    },
}

# --------------------------------------------------------------------------- #
# Table III — classification (AUC / RMSE)
# --------------------------------------------------------------------------- #
TABLE3_CLASSIFICATION = {
    "trivago": {
        "FM": {"AUC": 0.729, "RMSE": 0.564},
        "Wide&Deep": {"AUC": 0.782, "RMSE": 0.529},
        "DeepCross": {"AUC": 0.845, "RMSE": 0.433},
        "NFM": {"AUC": 0.767, "RMSE": 0.537},
        "AFM": {"AUC": 0.811, "RMSE": 0.465},
        "DIN": {"AUC": 0.923, "RMSE": 0.338},
        "xDeepFM": {"AUC": 0.913, "RMSE": 0.350},
        "SeqFM": {"AUC": 0.957, "RMSE": 0.319},
    },
    "taobao": {
        "FM": {"AUC": 0.602, "RMSE": 0.597},
        "Wide&Deep": {"AUC": 0.629, "RMSE": 0.590},
        "DeepCross": {"AUC": 0.735, "RMSE": 0.391},
        "NFM": {"AUC": 0.616, "RMSE": 0.583},
        "AFM": {"AUC": 0.656, "RMSE": 0.544},
        "DIN": {"AUC": 0.781, "RMSE": 0.375},
        "xDeepFM": {"AUC": 0.804, "RMSE": 0.363},
        "SeqFM": {"AUC": 0.826, "RMSE": 0.335},
    },
}

# --------------------------------------------------------------------------- #
# Table IV — regression (MAE / RRSE)
# --------------------------------------------------------------------------- #
TABLE4_REGRESSION = {
    "beauty": {
        "FM": {"MAE": 1.067, "RRSE": 1.125},
        "Wide&Deep": {"MAE": 0.965, "RRSE": 1.090},
        "DeepCross": {"MAE": 0.949, "RRSE": 1.003},
        "NFM": {"MAE": 0.931, "RRSE": 0.986},
        "AFM": {"MAE": 0.945, "RRSE": 0.994},
        "RRN": {"MAE": 0.943, "RRSE": 0.989},
        "HOFM": {"MAE": 0.952, "RRSE": 1.054},
        "SeqFM": {"MAE": 0.890, "RRSE": 0.975},
    },
    "toys": {
        "FM": {"MAE": 0.778, "RRSE": 1.023},
        "Wide&Deep": {"MAE": 0.753, "RRSE": 0.989},
        "DeepCross": {"MAE": 0.761, "RRSE": 1.010},
        "NFM": {"MAE": 0.735, "RRSE": 0.981},
        "AFM": {"MAE": 0.741, "RRSE": 0.997},
        "RRN": {"MAE": 0.739, "RRSE": 0.983},
        "HOFM": {"MAE": 0.748, "RRSE": 1.001},
        "SeqFM": {"MAE": 0.704, "RRSE": 0.956},
    },
}

# --------------------------------------------------------------------------- #
# Table V — ablation (HR@10 for ranking, AUC for classification, MAE for regression)
# --------------------------------------------------------------------------- #
TABLE5_ABLATION = {
    "Default": {"gowalla": 0.467, "foursquare": 0.431, "trivago": 0.957,
                "taobao": 0.826, "beauty": 0.890, "toys": 0.704},
    "Remove SV": {"gowalla": 0.455, "foursquare": 0.420, "trivago": 0.892,
                  "taobao": 0.765, "beauty": 0.959, "toys": 0.762},
    "Remove DV": {"gowalla": 0.424, "foursquare": 0.396, "trivago": 0.862,
                  "taobao": 0.731, "beauty": 0.972, "toys": 0.772},
    "Remove CV": {"gowalla": 0.430, "foursquare": 0.404, "trivago": 0.963,
                  "taobao": 0.754, "beauty": 0.935, "toys": 0.763},
    "Remove RC": {"gowalla": 0.457, "foursquare": 0.431, "trivago": 0.898,
                  "taobao": 0.761, "beauty": 0.918, "toys": 0.719},
    "Remove LN": {"gowalla": 0.461, "foursquare": 0.423, "trivago": 0.933,
                  "taobao": 0.798, "beauty": 0.922, "toys": 0.720},
}

# --------------------------------------------------------------------------- #
# Table I — dataset statistics
# --------------------------------------------------------------------------- #
TABLE1_DATASETS = {
    "gowalla": {"task": "ranking", "instances": 1_865_119, "users": 34_796,
                "objects": 57_445, "features": 149_686},
    "foursquare": {"task": "ranking", "instances": 1_196_248, "users": 24_941,
                   "objects": 28_593, "features": 82_127},
    "trivago": {"task": "classification", "instances": 2_810_584, "users": 12_790,
                "objects": 45_195, "features": 103_180},
    "taobao": {"task": "classification", "instances": 1_970_133, "users": 37_398,
               "objects": 65_474, "features": 168_346},
    "beauty": {"task": "regression", "instances": 198_503, "users": 22_363,
               "objects": 12_101, "features": 46_565},
    "toys": {"task": "regression", "instances": 167_597, "users": 19_412,
             "objects": 11_924, "features": 50_748},
}

# Figure 4 — training time (×10³ s) vs. data proportion on Trivago.
FIGURE4_SCALABILITY = {0.2: 0.51, 0.4: 1.07, 0.6: 1.66, 0.8: 2.24, 1.0: 2.79}

# Hyper-parameter grids explored in Figure 3.
FIGURE3_GRIDS = {
    "embed_dim": [8, 16, 32, 64, 128],
    "ffn_layers": [1, 2, 3, 4, 5],
    "max_seq_len": [10, 20, 30, 40, 50],
    "dropout": [0.5, 0.6, 0.7, 0.8, 0.9],
}
