"""Differentiable functional building blocks on top of :class:`Tensor`.

These are the composite operations that the neural-network layers in
:mod:`repro.nn` and the SeqFM model in :mod:`repro.core` are built from.  Each
function takes and returns :class:`~repro.autograd.tensor.Tensor` objects and
composes primitive tensor operations, so gradients flow through automatically.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autograd.tensor import Tensor, as_tensor


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit, ``max(x, 0)``."""
    return as_tensor(x).relu()


def sigmoid(x: Tensor) -> Tensor:
    """Logistic sigmoid, numerically clipped to avoid overflow."""
    return as_tensor(x).sigmoid()


def tanh(x: Tensor) -> Tensor:
    return as_tensor(x).tanh()


def log_sigmoid(x: Tensor) -> Tensor:
    """Numerically stable ``log(sigmoid(x))``.

    Uses the identity ``log(sigmoid(x)) = -softplus(-x)`` where ``softplus`` is
    computed with the max trick so that large-magnitude inputs do not overflow.
    """
    x = as_tensor(x)
    return -softplus(-x)


def softplus(x: Tensor) -> Tensor:
    """Stable ``log(1 + exp(x)) = max(x, 0) + log(1 + exp(-|x|))``."""
    x = as_tensor(x)
    positive_part = x.relu()
    return positive_part + ((-x.abs()).exp() + 1.0).log()


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Softmax along ``axis`` with the usual max-subtraction for stability.

    The subtracted maximum is treated as a constant (detached) which is the
    standard trick: it does not change the mathematical value of the softmax
    and keeps the gradient exact.
    """
    x = as_tensor(x)
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    exps = shifted.exp()
    return exps / exps.sum(axis=axis, keepdims=True)


def scaled_dot_product_attention(
    queries: Tensor,
    keys: Tensor,
    values: Tensor,
    mask: Optional[np.ndarray] = None,
) -> Tensor:
    """Eq. (6)/(9)/(11) of the paper: ``softmax(QKᵀ/√d + M)·V``.

    Parameters
    ----------
    queries, keys, values:
        Tensors of shape ``(..., n, d)``.
    mask:
        Optional additive attention mask of shape ``(n, n)`` (or broadcastable
        to the score matrix) containing ``0`` for allowed positions and a large
        negative constant for blocked positions.  The paper writes ``-inf``; a
        large finite constant is used so the softmax stays well-defined even
        for rows where every position is blocked (all-padding rows).
    """
    d = queries.shape[-1]
    scores = queries @ keys.swapaxes(-1, -2) * (1.0 / np.sqrt(d))
    if mask is not None:
        scores = scores + Tensor(np.asarray(mask, dtype=np.float64))
    weights = softmax(scores, axis=-1)
    return weights @ values


def layer_norm(x: Tensor, scale: Tensor, bias: Tensor, eps: float = 1e-8) -> Tensor:
    """Layer normalisation over the last axis, Eq. (16) of the paper.

    ``LN(h) = s ⊙ (h - μ) / σ + b`` where μ, σ are the mean and standard
    deviation of the elements of ``h`` along the feature axis.
    """
    x = as_tensor(x)
    mean = x.mean(axis=-1, keepdims=True)
    centred = x - mean
    variance = (centred * centred).mean(axis=-1, keepdims=True)
    normalised = centred / (variance + eps) ** 0.5
    return normalised * scale + bias


def dropout(x: Tensor, ratio: float, training: bool, rng: np.random.Generator) -> Tensor:
    """Inverted dropout.

    During training each element is zeroed with probability ``ratio`` and the
    survivors are scaled by ``1/(1-ratio)``; at test time the input passes
    through unchanged, matching the "model averaging" interpretation in the
    paper (Section III-F).
    """
    if not 0.0 <= ratio < 1.0:
        raise ValueError(f"dropout ratio must be in [0, 1), got {ratio}")
    if not training or ratio <= 0.0:
        return as_tensor(x)
    x = as_tensor(x)
    keep_probability = 1.0 - ratio
    mask = (rng.random(x.shape) < keep_probability).astype(np.float64) / keep_probability
    return x * Tensor(mask)


def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Affine map ``x @ weight + bias`` with ``weight`` of shape (in, out)."""
    out = as_tensor(x) @ weight
    if bias is not None:
        out = out + bias
    return out


def embedding_lookup(table: Tensor, indices: np.ndarray) -> Tensor:
    """Row gather out of an embedding matrix; gradients scatter-add back."""
    return table.gather_rows(np.asarray(indices, dtype=np.int64))


def mean_pool(x: Tensor, axis: int = -2) -> Tensor:
    """Intra-view pooling (Eq. 14): mean of the feature rows in a view."""
    return as_tensor(x).mean(axis=axis)


def masked_mean_pool(x: Tensor, valid_mask: np.ndarray, axis: int = -2) -> Tensor:
    """Mean over only the valid (non-padding) rows.

    ``valid_mask`` has shape ``x.shape[:-1]`` with 1 for real features and 0
    for padding rows.  Rows that are entirely padding contribute zero and the
    divisor is clamped to at least one to avoid division by zero.
    """
    x = as_tensor(x)
    mask = np.asarray(valid_mask, dtype=np.float64)[..., None]
    counts = np.maximum(mask.sum(axis=axis), 1.0)
    summed = (x * Tensor(mask)).sum(axis=axis)
    return summed / Tensor(counts)


def binary_cross_entropy_with_logits(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean log loss of Eq. (24) computed from raw logits for stability.

    ``-y·log σ(z) - (1-y)·log(1-σ(z)) = softplus(z) - y·z``.
    """
    logits = as_tensor(logits)
    targets_t = Tensor(np.asarray(targets, dtype=np.float64))
    per_example = softplus(logits) - targets_t * logits
    return per_example.mean()


def bpr_loss(positive_scores: Tensor, negative_scores: Tensor) -> Tensor:
    """Bayesian Personalised Ranking loss of Eq. (21).

    ``-mean log σ(ŷ⁺ - ŷ⁻)``; implemented via :func:`log_sigmoid` so very
    confident score gaps do not overflow.
    """
    margin = as_tensor(positive_scores) - as_tensor(negative_scores)
    return -log_sigmoid(margin).mean()


def mse_loss(predictions: Tensor, targets: np.ndarray) -> Tensor:
    """Mean squared error used for the regression task (Eq. 26 averaged)."""
    diff = as_tensor(predictions) - Tensor(np.asarray(targets, dtype=np.float64))
    return (diff * diff).mean()
