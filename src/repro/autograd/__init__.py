"""Reverse-mode automatic differentiation on NumPy arrays.

This subpackage is the deep-learning substrate of the reproduction.  The
original SeqFM paper was implemented on top of TensorFlow/PyTorch; this
environment has neither, so the same functionality — tensors that record the
operations applied to them and can back-propagate gradients — is implemented
from scratch here.

The public surface mirrors the small subset of a framework that the paper's
model actually needs:

* :class:`~repro.autograd.tensor.Tensor` — an n-dimensional array that tracks
  its computation graph and exposes ``backward()``.
* :mod:`repro.autograd.functional` — differentiable building blocks used by
  the neural-network layer library (softmax, relu, sigmoid, layer norm,
  dropout, masked attention scores, embedding gather, concatenation, ...).
* :func:`~repro.autograd.grad_check.check_gradients` — a finite-difference
  gradient checker used by the test suite to certify the engine.
"""

from repro.autograd.tensor import Tensor, no_grad, is_grad_enabled
from repro.autograd import functional
from repro.autograd.grad_check import check_gradients, numerical_gradient

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "functional",
    "check_gradients",
    "numerical_gradient",
]
