"""Finite-difference gradient checking for the autograd engine.

The test suite uses :func:`check_gradients` to certify every primitive and
composite operation: analytic gradients computed by back-propagation are
compared element-wise with central finite differences.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.autograd.tensor import Tensor


def numerical_gradient(
    fn: Callable[[Sequence[Tensor]], Tensor],
    inputs: Sequence[Tensor],
    index: int,
    epsilon: float = 1e-6,
) -> np.ndarray:
    """Central finite-difference gradient of ``fn`` w.r.t. ``inputs[index]``.

    ``fn`` must map the input tensors to a scalar :class:`Tensor`.
    """
    target = inputs[index]
    gradient = np.zeros_like(target.data)
    flat = target.data.reshape(-1)
    grad_flat = gradient.reshape(-1)
    for position in range(flat.size):
        original = flat[position]
        flat[position] = original + epsilon
        plus = fn(inputs).item()
        flat[position] = original - epsilon
        minus = fn(inputs).item()
        flat[position] = original
        grad_flat[position] = (plus - minus) / (2.0 * epsilon)
    return gradient


def check_gradients(
    fn: Callable[[Sequence[Tensor]], Tensor],
    inputs: Sequence[Tensor],
    epsilon: float = 1e-6,
    rtol: float = 1e-4,
    atol: float = 1e-6,
) -> bool:
    """Compare analytic and numerical gradients for every input tensor.

    Returns ``True`` when all gradients match within tolerance; raises
    ``AssertionError`` with a diagnostic message otherwise.
    """
    for tensor in inputs:
        tensor.zero_grad()
    output = fn(inputs)
    if output.size != 1:
        raise ValueError("check_gradients requires fn to return a scalar tensor")
    output.backward()

    for index, tensor in enumerate(inputs):
        if not tensor.requires_grad:
            continue
        analytic = tensor.grad if tensor.grad is not None else np.zeros_like(tensor.data)
        numeric = numerical_gradient(fn, inputs, index, epsilon=epsilon)
        if not np.allclose(analytic, numeric, rtol=rtol, atol=atol):
            max_err = np.max(np.abs(analytic - numeric))
            raise AssertionError(
                f"gradient mismatch for input {index}: max abs error {max_err:.3e}\n"
                f"analytic:\n{analytic}\nnumeric:\n{numeric}"
            )
    return True
