"""A reverse-mode automatic-differentiation tensor built on NumPy.

The design follows the classic tape-free "define-by-run" approach: every
operation on :class:`Tensor` objects creates a new tensor that remembers its
parents and a closure computing the local vector-Jacobian product.  Calling
:meth:`Tensor.backward` on a scalar output performs a topological sort of the
graph and accumulates gradients into every tensor created with
``requires_grad=True``.

Only the operations that the SeqFM model family needs are implemented, but
each is implemented with full broadcasting support so the neural-network
layers in :mod:`repro.nn` can be written naturally.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, Optional, Sequence, Union

import numpy as np

ArrayLike = Union["Tensor", np.ndarray, float, int, list, tuple]

_GRAD_ENABLED = True


def is_grad_enabled() -> bool:
    """Return whether gradient tracking is currently enabled."""
    return _GRAD_ENABLED


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph construction.

    Used during evaluation so forward passes neither allocate backward
    closures nor retain references to intermediate arrays.
    """
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def _unbroadcast(grad: np.ndarray, shape: tuple) -> np.ndarray:
    """Sum ``grad`` back down to ``shape`` after NumPy broadcasting.

    When a tensor of shape ``shape`` was broadcast up to ``grad.shape`` during
    the forward pass, its gradient is the sum of ``grad`` over the broadcast
    axes.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading axes added by broadcasting.
    extra_dims = grad.ndim - len(shape)
    if extra_dims > 0:
        grad = grad.sum(axis=tuple(range(extra_dims)))
    # Sum over axes that were 1 in the original shape.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value: ArrayLike, dtype=np.float64) -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    return np.asarray(value, dtype=dtype)


def as_tensor(value: ArrayLike) -> "Tensor":
    """Coerce ``value`` into a :class:`Tensor` without copying when possible."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value)


class Tensor:
    """An n-dimensional array with reverse-mode automatic differentiation.

    Parameters
    ----------
    data:
        Anything convertible to a ``numpy.ndarray`` of ``float64``.
    requires_grad:
        When ``True`` the tensor accumulates gradients into :attr:`grad`
        during :meth:`backward`.
    """

    __slots__ = ("data", "requires_grad", "grad", "_parents", "_backward_fn", "name")

    __array_priority__ = 100  # ensure ndarray.__add__(Tensor) defers to Tensor

    def __init__(self, data: ArrayLike, requires_grad: bool = False, name: str = ""):
        self.data = _as_array(data)
        self.requires_grad = bool(requires_grad) and is_grad_enabled()
        self.grad: Optional[np.ndarray] = None
        self._parents: tuple = ()
        self._backward_fn: Optional[Callable[[np.ndarray], None]] = None
        self.name = name

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def item(self) -> float:
        return float(self.data.item())

    def numpy(self) -> np.ndarray:
        """Return the underlying array (not a copy)."""
        return self.data

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but detached from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        label = f", name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.data.shape}{grad_flag}{label})"

    # ------------------------------------------------------------------ #
    # Graph construction helper
    # ------------------------------------------------------------------ #
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward_fn: Callable[[np.ndarray], None],
    ) -> "Tensor":
        """Create an output tensor wired into the computation graph."""
        requires_grad = is_grad_enabled() and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires_grad)
        if requires_grad:
            out._parents = tuple(parents)
            out._backward_fn = backward_fn
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        """Accumulate a gradient contribution into this tensor."""
        if not self.requires_grad:
            return
        grad = _unbroadcast(np.asarray(grad, dtype=self.data.dtype), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    # ------------------------------------------------------------------ #
    # Backward pass
    # ------------------------------------------------------------------ #
    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Back-propagate gradients from this tensor through the graph.

        Parameters
        ----------
        grad:
            Upstream gradient.  Defaults to ``1`` which is only valid for a
            scalar tensor (the usual loss case).
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("backward() without an explicit gradient requires a scalar tensor")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)
        if grad.shape != self.data.shape:
            grad = np.broadcast_to(grad, self.data.shape).astype(self.data.dtype)

        # Topological order of the reachable subgraph.
        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(order):
            if node._backward_fn is None or node.grad is None:
                continue
            node._backward_fn(node.grad)

    # ------------------------------------------------------------------ #
    # Arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad)
            other._accumulate(grad)

        return Tensor._make(out_data, (self, other), backward)

    def __radd__(self, other: ArrayLike) -> "Tensor":
        return self.__add__(other)

    def __neg__(self) -> "Tensor":
        out_data = -self.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return Tensor._make(out_data, (self,), backward)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data - other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad)
            other._accumulate(-grad)

        return Tensor._make(out_data, (self, other), backward)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return as_tensor(other).__sub__(self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * other.data)
            other._accumulate(grad * self.data)

        return Tensor._make(out_data, (self, other), backward)

    def __rmul__(self, other: ArrayLike) -> "Tensor":
        return self.__mul__(other)

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / other.data)
            other._accumulate(-grad * self.data / (other.data ** 2))

        return Tensor._make(out_data, (self, other), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return as_tensor(other).__truediv__(self)

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("Tensor.__pow__ only supports scalar exponents")
        out_data = self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Matrix operations
    # ------------------------------------------------------------------ #
    def matmul(self, other: ArrayLike) -> "Tensor":
        """Matrix product with full batched-matmul gradient support."""
        other = as_tensor(other)
        out_data = self.data @ other.data
        a, b = self.data, other.data

        def backward(grad: np.ndarray) -> None:
            if a.ndim == 1 and b.ndim == 1:
                # inner product
                self._accumulate(grad * b)
                other._accumulate(grad * a)
                return
            if a.ndim == 1:
                # (k,) @ (..., k, n) -> (..., n)
                grad_a = (grad[..., None, :] * b).sum(axis=-1)
                grad_b = a[..., :, None] * grad[..., None, :]
                self._accumulate(grad_a)
                other._accumulate(grad_b)
                return
            if b.ndim == 1:
                # (..., m, k) @ (k,) -> (..., m)
                grad_a = grad[..., :, None] * b
                grad_b = (a * grad[..., :, None]).sum(axis=tuple(range(a.ndim - 1)))
                self._accumulate(grad_a)
                other._accumulate(grad_b)
                return
            grad_a = grad @ np.swapaxes(b, -1, -2)
            grad_b = np.swapaxes(a, -1, -2) @ grad
            self._accumulate(grad_a)
            other._accumulate(grad_b)

        return Tensor._make(out_data, (self, other), backward)

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        return self.matmul(other)

    def dot(self, other: ArrayLike) -> "Tensor":
        """Vector dot product (alias of :meth:`matmul` for 1-D operands)."""
        return self.matmul(other)

    def transpose(self, *axes: int) -> "Tensor":
        """Permute axes; with no arguments reverses all axes."""
        axes_tuple = axes if axes else tuple(reversed(range(self.data.ndim)))
        out_data = np.transpose(self.data, axes_tuple)
        inverse = np.argsort(axes_tuple)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(np.transpose(grad, inverse))

        return Tensor._make(out_data, (self,), backward)

    def swapaxes(self, axis1: int, axis2: int) -> "Tensor":
        out_data = np.swapaxes(self.data, axis1, axis2)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(np.swapaxes(grad, axis1, axis2))

        return Tensor._make(out_data, (self,), backward)

    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original_shape = self.data.shape
        out_data = self.data.reshape(shape)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(original_shape))

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)
        input_shape = self.data.shape

        def backward(grad: np.ndarray) -> None:
            g = grad
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                axes = tuple(a % len(input_shape) for a in axes)
                for a in sorted(axes):
                    g = np.expand_dims(g, a)
            self._accumulate(np.broadcast_to(g, input_shape))

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)
        input_shape = self.data.shape

        def backward(grad: np.ndarray) -> None:
            g = grad
            out = out_data
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                axes = tuple(a % len(input_shape) for a in axes)
                for a in sorted(axes):
                    g = np.expand_dims(g, a)
                    out = np.expand_dims(out, a)
            mask = (self.data == out).astype(self.data.dtype)
            # Distribute the gradient evenly among ties to keep the Jacobian
            # a valid sub-gradient of the max.
            normaliser = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            self._accumulate(np.broadcast_to(g, input_shape) * mask / normaliser)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Elementwise non-linearities
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data)

        return Tensor._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        return Tensor._make(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        return self.__pow__(0.5)

    def abs(self) -> "Tensor":
        out_data = np.abs(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * np.sign(self.data))

        return Tensor._make(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        out_data = np.maximum(self.data, 0.0)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (self.data > 0))

        return Tensor._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-np.clip(self.data, -60.0, 60.0)))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - out_data ** 2))

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Indexing and shaping
    # ------------------------------------------------------------------ #
    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]
        input_shape = self.data.shape

        def backward(grad: np.ndarray) -> None:
            full = np.zeros(input_shape, dtype=self.data.dtype)
            np.add.at(full, index, grad)
            self._accumulate(full)

        return Tensor._make(out_data, (self,), backward)

    def gather_rows(self, indices: np.ndarray) -> "Tensor":
        """Embedding-style row gather: returns ``self[indices]`` where ``indices``
        may be any integer array; gradients scatter-add back into the rows."""
        indices = np.asarray(indices)
        out_data = self.data[indices]
        input_shape = self.data.shape

        def backward(grad: np.ndarray) -> None:
            full = np.zeros(input_shape, dtype=self.data.dtype)
            np.add.at(full, indices, grad)
            self._accumulate(full)

        return Tensor._make(out_data, (self,), backward)

    def expand_dims(self, axis: int) -> "Tensor":
        out_data = np.expand_dims(self.data, axis)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(np.squeeze(grad, axis=axis))

        return Tensor._make(out_data, (self,), backward)

    def squeeze(self, axis: Optional[int] = None) -> "Tensor":
        out_data = np.squeeze(self.data, axis=axis)
        input_shape = self.data.shape

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(input_shape))

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Static constructors and combinators
    # ------------------------------------------------------------------ #
    @staticmethod
    def concatenate(tensors: Iterable["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [as_tensor(t) for t in tensors]
        out_data = np.concatenate([t.data for t in tensors], axis=axis)
        sizes = [t.data.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)

        def backward(grad: np.ndarray) -> None:
            for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
                slicer = [slice(None)] * grad.ndim
                slicer[axis] = slice(start, stop)
                tensor._accumulate(grad[tuple(slicer)])

        return Tensor._make(out_data, tensors, backward)

    @staticmethod
    def stack(tensors: Iterable["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [as_tensor(t) for t in tensors]
        out_data = np.stack([t.data for t in tensors], axis=axis)

        def backward(grad: np.ndarray) -> None:
            pieces = np.split(grad, len(tensors), axis=axis)
            for tensor, piece in zip(tensors, pieces):
                tensor._accumulate(np.squeeze(piece, axis=axis))

        return Tensor._make(out_data, tensors, backward)

    @staticmethod
    def where(condition: np.ndarray, a: ArrayLike, b: ArrayLike) -> "Tensor":
        condition = np.asarray(condition, dtype=bool)
        a, b = as_tensor(a), as_tensor(b)
        out_data = np.where(condition, a.data, b.data)

        def backward(grad: np.ndarray) -> None:
            a._accumulate(np.where(condition, grad, 0.0))
            b._accumulate(np.where(condition, 0.0, grad))

        return Tensor._make(out_data, (a, b), backward)

    @staticmethod
    def zeros(shape, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.zeros(shape), requires_grad=requires_grad)

    @staticmethod
    def ones(shape, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.ones(shape), requires_grad=requires_grad)
