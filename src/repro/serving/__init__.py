"""Batched inference runtime for trained SeqFM models.

Training needs the autograd graph; serving does not.  This package is the
production-facing inference layer of the reproduction:

* :class:`~repro.serving.engine.InferenceEngine` — graph-free, vectorised
  forward pass on the model's weight arrays.  No ``Tensor`` allocation, no
  backward bookkeeping; mask/attention/pooling math is shared with
  :mod:`repro.core` and :mod:`repro.nn.kernels`, and output matches
  ``SeqFM.score`` to 1e-10 (enforced by tests).
* :class:`~repro.serving.batcher.MicroBatcher` — coalesces single scoring
  requests into padded batches up to ``max_batch_size`` so the NumPy kernels
  amortise their per-call overhead; results resolve in submission order.
* :class:`~repro.serving.cache.UserSequenceStore` — LRU cache of padded user
  histories with exact fingerprint checks, so repeat users skip re-encoding.
* :class:`~repro.serving.registry.ModelRegistry` — named checkpoint-backed
  models with ``rank`` / ``classify`` / ``regress`` / ``rank_topk``
  endpoints mirroring the task heads of :mod:`repro.core.tasks`, plus the
  generic ``serve`` endpoint dispatching through the head registry.
* :mod:`repro.serving.protocol` — the wire contract every front-end speaks:
  a versioned request/response **envelope** (with pre-envelope payloads
  auto-upgraded), a declarative :class:`~repro.serving.protocol.Head` /
  :class:`~repro.serving.protocol.HeadRegistry` abstraction (new heads are
  one registration), structured errors with stable codes, per-request
  model routing via :class:`~repro.serving.protocol.ServingRouter`, and
  the stateful ``update`` head that closes the online
  recommend → click → update → recommend loop.
* :mod:`repro.serving.concurrent` — the concurrent runtime over the same
  protocol: :class:`~repro.serving.concurrent.ConcurrentServingRouter`
  dispatches (model, head) micro-batches to a worker pool (thread pool by
  default, per-model process-pool fallback) with admission control
  (structured ``overloaded`` backpressure), per-request deadlines
  (structured ``timeout``), opt-in cross-envelope coalescing, and barrier
  semantics that keep stateful traffic sequentially consistent — responses
  stay byte-identical to the serial router, re-keyed by envelope ``id``.
  The sequence store scales with it:
  :class:`~repro.serving.cache.ShardedUserSequenceStore` consistent-hashes
  users over independently locked shards with per-shard
  ``snapshot()``/``restore()`` for shard moves and replay.
* :mod:`repro.serving.durability` — durable, self-healing state:
  :class:`~repro.serving.durability.DurableSequenceStore` write-ahead-logs
  every store mutation (fsync-batched, CRC-framed, torn-tail healing) with
  periodic snapshot + log compaction, recovering byte-identically on
  restart; :mod:`repro.serving.faults` provides the seeded deterministic
  :class:`~repro.serving.faults.FaultInjector` and the jittered-exponential
  :class:`~repro.serving.faults.RetryPolicy` behind the concurrent router's
  retry / quarantine / degradation-ladder self-healing, all observable live
  through the ``status`` head.

The engine additionally exposes the **candidate ranking fast path**
(:meth:`~repro.serving.engine.InferenceEngine.rank_candidates`): C candidates
sharing one user history are scored with every candidate-independent quantity
— the dynamic view, the dynamic linear sum, the cross-view history
projections — computed once per user (:class:`~repro.serving.engine.RankingPlan`)
instead of once per candidate, with 1e-10 parity to the per-candidate loop.

On top of ranking sits **two-stage retrieval** (:mod:`repro.retrieval`):
an :class:`~repro.retrieval.index.ItemIndex` snapshot of the catalog answers
candidate-*free* requests — index sweep to an ``n_retrieve`` shortlist, exact
fast-path re-rank to top-K — via ``InferenceEngine.retrieve_then_rank``, the
``MicroBatcher`` recommend head, ``ModelRegistry.build_index``/``recommend``
and the ``recommend`` service head / CLI subcommand.

Usage
-----
Load a checkpoint and serve micro-batched ranking requests::

    from repro.serving import ModelRegistry, ScoreRequest

    registry = ModelRegistry()
    registry.load("seqfm", "checkpoints/seqfm.npz")

    # Static indices come from FeatureEncoder (user feature, candidate
    # feature); the history is the user's dynamic-vocabulary event sequence.
    requests = [
        ScoreRequest(static_indices=[user_index, candidate_index],
                     history=[3, 7, 12], user_id=42, object_id=7)
        for candidate_index in candidate_indices
    ]
    scores = registry.rank_requests("seqfm", requests)   # request order

Or drive the engine directly on prepared :class:`FeatureBatch` objects::

    from repro.serving import InferenceEngine

    engine = InferenceEngine(trained_model)       # any SeqFM instance
    scores = engine.score(batch)                  # == trained_model.score(batch)
    probabilities = engine.classify(batch)        # CTR head

The throughput benchmark (``benchmarks/test_serving_throughput.py``) measures
the speedup of batched and cached serving over one-request-at-a-time scoring;
the CLI exposes the same runtime as ``predict-batch`` and ``serve``
subcommands of :mod:`repro.experiments.cli`.
"""

from repro.serving.batcher import (
    BatcherStats,
    MicroBatcher,
    PendingScore,
    RankedCandidates,
    RankRequest,
    RecommendRequest,
    ScoreRequest,
)
from repro.serving.cache import (
    CacheStats,
    HashRing,
    LRUCache,
    ShardedUserSequenceStore,
    ShardSealedError,
    UserSequenceStore,
)
from repro.serving.concurrent import (
    ConcurrentServingRouter,
    DegradationPolicy,
    HealthMonitor,
    serve_concurrent_jsonl,
)
from repro.serving.durability import (
    WAL_OPS,
    DurableSequenceStore,
    RecoveryReport,
    WriteAheadLog,
    inspect_durability,
    read_wal,
)
from repro.serving.engine import InferenceEngine, RankingPlan
from repro.serving.faults import (
    NULL_INJECTOR,
    FaultInjector,
    FaultSpec,
    InjectedFault,
    RetryPolicy,
    TransientFault,
    is_retryable,
)
from repro.serving.protocol import (
    ERR_RETRYABLE,
    ERROR_CODES,
    PROTOCOL_VERSION,
    Envelope,
    Head,
    HeadRegistry,
    ProtocolError,
    ServeDefaults,
    ServingRouter,
    StatusHead,
    UpdateRequest,
    default_heads,
    error_response,
    parse_envelope,
)
from repro.serving.registry import (
    ModelRegistry,
    OrphanedIndexWarning,
    RegisteredModel,
)
from repro.serving.service import (
    ServeSummary,
    execute_batch,
    parse_rank_request,
    parse_recommend_request,
    parse_request,
    predict_batch,
    rank_topk_batch,
    recommend_batch,
    serve_jsonl,
)

__all__ = [
    "BatcherStats",
    "CacheStats",
    "ConcurrentServingRouter",
    "DegradationPolicy",
    "DurableSequenceStore",
    "ERR_RETRYABLE",
    "ERROR_CODES",
    "Envelope",
    "FaultInjector",
    "FaultSpec",
    "HashRing",
    "Head",
    "HeadRegistry",
    "HealthMonitor",
    "InferenceEngine",
    "InjectedFault",
    "LRUCache",
    "MicroBatcher",
    "ModelRegistry",
    "OrphanedIndexWarning",
    "NULL_INJECTOR",
    "PROTOCOL_VERSION",
    "PendingScore",
    "ProtocolError",
    "RankedCandidates",
    "RankingPlan",
    "RankRequest",
    "RecommendRequest",
    "RecoveryReport",
    "RegisteredModel",
    "RetryPolicy",
    "ScoreRequest",
    "ServeDefaults",
    "ServeSummary",
    "ServingRouter",
    "ShardSealedError",
    "ShardedUserSequenceStore",
    "StatusHead",
    "TransientFault",
    "UpdateRequest",
    "UserSequenceStore",
    "WAL_OPS",
    "WriteAheadLog",
    "default_heads",
    "error_response",
    "execute_batch",
    "inspect_durability",
    "is_retryable",
    "parse_envelope",
    "parse_rank_request",
    "parse_recommend_request",
    "parse_request",
    "predict_batch",
    "rank_topk_batch",
    "recommend_batch",
    "read_wal",
    "serve_concurrent_jsonl",
    "serve_jsonl",
]
