"""Request micro-batching: coalesce single scoring requests into dense batches.

Production traffic arrives one request at a time, but the NumPy forward pass
amortises its per-call overhead over the batch dimension — scoring 256 rows
costs barely more than scoring one.  :class:`MicroBatcher` buffers incoming
:class:`ScoreRequest` objects, pads their variable-length histories into a
single :class:`~repro.data.features.FeatureBatch` (via the shared
:func:`repro.data.batching.pad_sequences` collation, so the layout matches
training exactly), and flushes whenever the buffer reaches
``max_batch_size`` — or when the caller forces a flush.

Results are delivered through :class:`PendingScore` handles, one per request,
resolved in submission order regardless of how the queue was split into
batches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.data.batching import pad_sequences
from repro.data.features import FeatureBatch
from repro.serving.cache import UserSequenceStore

#: Type of the scoring callable the batcher drives: FeatureBatch → (batch,) scores.
ScoreFn = Callable[[FeatureBatch], np.ndarray]

#: Type of the ranking callable the rank head drives — the signature of
#: :meth:`repro.serving.engine.InferenceEngine.rank_topk`:
#: (static_profile, candidates, k, history, history_mask) → (top ids, scores).
RankFn = Callable[..., "tuple[np.ndarray, np.ndarray]"]

#: Type of the recommendation callable the recommend head drives — the
#: signature of
#: :meth:`repro.retrieval.pipeline.RetrievePipeline.retrieve_then_rank`:
#: (static_profile, k, history, n_retrieve, history_mask) → RankedCandidates.
RecommendFn = Callable[..., "RankedCandidates"]

#: Top-K cut of the recommend head when neither the request nor the caller
#: specifies one (recommendation has no candidate list to default to).
DEFAULT_RECOMMEND_K = 10


@dataclass(frozen=True)
class RankRequest:
    """One ranking request: C candidate objects sharing a user and history.

    Attributes
    ----------
    static_indices:
        The user's static profile row (model vocabulary); the candidate slot
        holds a placeholder that is replaced by each candidate.
    candidates:
        Static-vocabulary indices of the candidate objects to rank.
    history:
        Chronological dynamic-vocabulary indices of the user's past events
        (most recent last, not padded).  ``None`` means "use the server-side
        sequence": the batcher substitutes the user's stored suffix from the
        sequence store (empty for cold users).
    user_id:
        Raw user identifier; enables the user-sequence cache when ≥ 0.
    k:
        Per-request top-K cut; ``None`` returns every candidate ranked.
    """

    static_indices: Sequence[int]
    candidates: Sequence[int]
    history: Optional[Sequence[int]] = ()
    user_id: int = -1
    k: Optional[int] = None


@dataclass(frozen=True)
class RecommendRequest:
    """One recommendation request: no candidates — the index finds them.

    Attributes
    ----------
    static_indices:
        The user's static profile row (model vocabulary); the candidate slot
        holds a placeholder that retrieval/re-ranking replace per item.
    history:
        Chronological dynamic-vocabulary indices of the user's past events
        (most recent last, not padded); ``None`` substitutes the user's
        stored server-side sequence.
    user_id:
        Raw user identifier; enables the user-sequence cache when ≥ 0.
    k:
        Per-request top-K cut; ``None`` falls back to the head default
        (:data:`DEFAULT_RECOMMEND_K`).
    n_retrieve:
        Per-request retrieval fan-out; ``None`` uses the pipeline default.
    """

    static_indices: Sequence[int]
    history: Optional[Sequence[int]] = ()
    user_id: int = -1
    k: Optional[int] = None
    n_retrieve: Optional[int] = None


@dataclass(frozen=True)
class RankedCandidates:
    """Result of a :class:`RankRequest`: candidates and scores, best first."""

    candidates: np.ndarray
    scores: np.ndarray

    def __len__(self) -> int:
        return self.candidates.shape[0]


@dataclass(frozen=True)
class ScoreRequest:
    """One scoring request: a candidate's static features plus the history.

    Attributes
    ----------
    static_indices:
        Indices of the non-zero static features (user, candidate, side info),
        already mapped through the model's static vocabulary — the layout of
        :class:`~repro.data.features.EncodedExample.static_indices`.
    history:
        Chronological dynamic-vocabulary indices of the user's past events
        (most recent last, *not* padded; the batcher pads/truncates).
        ``None`` substitutes the user's stored server-side sequence.
    user_id:
        Raw user identifier; enables the user-sequence cache when ≥ 0.
    object_id:
        Raw candidate identifier, carried through for bookkeeping.
    """

    static_indices: Sequence[int]
    history: Optional[Sequence[int]] = ()
    user_id: int = -1
    object_id: int = -1


class PendingScore:
    """Handle for a submitted request, resolved (or failed) at flush time."""

    __slots__ = ("_value", "_done", "_error")

    def __init__(self) -> None:
        self._value: float = float("nan")
        self._done: bool = False
        self._error: Optional[Exception] = None

    def _resolve(self, value: float) -> None:
        self._value = value
        self._done = True

    def _fail(self, error: Exception) -> None:
        self._error = error
        self._done = True

    @property
    def done(self) -> bool:
        return self._done

    @property
    def error(self) -> Optional[Exception]:
        """The scoring error this request's batch hit, if any."""
        return self._error

    @property
    def value(self) -> float:
        if not self._done:
            raise RuntimeError("score not available yet — flush() the batcher first")
        if self._error is not None:
            raise self._error
        return self._value


@dataclass
class BatcherStats:
    """Counters describing how requests were coalesced."""

    requests: int = 0
    batches: int = 0
    rows_scored: int = 0

    @property
    def mean_batch_size(self) -> float:
        return self.rows_scored / self.batches if self.batches else 0.0


class MicroBatcher:
    """Coalesce scoring requests into padded batches for a scoring function.

    Parameters
    ----------
    score_fn:
        Any callable mapping a :class:`FeatureBatch` to a score vector —
        typically :meth:`repro.serving.engine.InferenceEngine.score` (or
        ``.classify``/``.regress``).
    max_batch_size:
        Flush automatically once this many requests are buffered.
    max_seq_len:
        Pad/truncate request histories to this length; must match the model's
        configured n˙.
    sequence_store:
        Optional :class:`UserSequenceStore`; requests with ``user_id ≥ 0``
        reuse cached history encodings across requests.
    rank_fn:
        Optional ranking callable — typically
        :meth:`repro.serving.engine.InferenceEngine.rank_topk` — that powers
        the **rank head** (:meth:`rank`/:meth:`rank_all`): whole candidate
        lists evaluated through the candidate-deduplicated fast path instead
        of one scoring row per candidate.
    recommend_fn:
        Optional recommendation callable — typically
        :meth:`repro.retrieval.pipeline.RetrievePipeline.retrieve_then_rank`
        — that powers the **recommend head**
        (:meth:`recommend`/:meth:`recommend_all`): candidate-free requests
        answered by the two-stage retrieve → rank pipeline.
    """

    def __init__(
        self,
        score_fn: ScoreFn,
        max_batch_size: int = 256,
        max_seq_len: int = 20,
        sequence_store: Optional[UserSequenceStore] = None,
        rank_fn: Optional[RankFn] = None,
        recommend_fn: Optional[RecommendFn] = None,
    ):
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be positive")
        if max_seq_len < 1:
            raise ValueError("max_seq_len must be positive")
        if sequence_store is not None and sequence_store.max_seq_len != max_seq_len:
            raise ValueError(
                "sequence_store.max_seq_len must match the batcher's max_seq_len "
                f"({sequence_store.max_seq_len} != {max_seq_len})"
            )
        self.score_fn = score_fn
        self.rank_fn = rank_fn
        self.recommend_fn = recommend_fn
        self.max_batch_size = max_batch_size
        self.max_seq_len = max_seq_len
        self.sequence_store = sequence_store
        self.stats = BatcherStats()
        self._queue: List[ScoreRequest] = []
        self._pending: List[PendingScore] = []

    def __len__(self) -> int:
        """Number of requests currently buffered."""
        return len(self._queue)

    # ------------------------------------------------------------------ #
    # Submission / flushing
    # ------------------------------------------------------------------ #
    def submit(self, request: ScoreRequest) -> PendingScore:
        """Queue a request; auto-flush when the buffer is full."""
        handle = self._enqueue(request)
        if len(self._queue) >= self.max_batch_size:
            self.flush()
        return handle

    def _enqueue(self, request: ScoreRequest) -> PendingScore:
        handle = PendingScore()
        self._queue.append(request)
        self._pending.append(handle)
        self.stats.requests += 1
        return handle

    def flush(self) -> int:
        """Score everything buffered in chunks of ``max_batch_size``.

        Every buffered handle is resolved — with its score, or with the error
        its chunk hit (``PendingScore.value`` re-raises it).  A failing chunk
        does not abort the rest; the first error is re-raised once the queue
        is drained.  Returns the number of successfully scored rows.
        """
        scored = 0
        first_error: Optional[Exception] = None
        while self._queue:
            chunk = self._queue[: self.max_batch_size]
            handles = self._pending[: self.max_batch_size]
            del self._queue[: self.max_batch_size]
            del self._pending[: self.max_batch_size]
            try:
                scores = np.asarray(self.score_fn(self.collate(chunk)), dtype=np.float64)
                if scores.shape != (len(chunk),):
                    raise ValueError(
                        f"score_fn returned shape {scores.shape}, expected ({len(chunk)},)"
                    )
            except Exception as error:
                for handle in handles:
                    handle._fail(error)
                if first_error is None:
                    first_error = error
                continue
            for handle, score in zip(handles, scores):
                handle._resolve(float(score))
            self.stats.batches += 1
            self.stats.rows_scored += len(chunk)
            scored += len(chunk)
        if first_error is not None:
            raise first_error
        return scored

    def score_all(self, requests: Sequence[ScoreRequest]) -> np.ndarray:
        """Convenience: score many requests, results in submission order."""
        handles = [self._enqueue(request) for request in requests]
        self.flush()
        return np.array([handle.value for handle in handles], dtype=np.float64)

    # ------------------------------------------------------------------ #
    # Rank head
    # ------------------------------------------------------------------ #
    def rank(self, request: RankRequest, k: Optional[int] = None) -> RankedCandidates:
        """Rank one request's candidate list through the fast path.

        A ranking request is already a dense batch — C candidates against one
        history — so unlike :meth:`submit` there is nothing to coalesce: the
        request is evaluated immediately via ``rank_fn`` (one
        ``rank_candidates`` pass, with the history encoded through the
        sequence store when the request carries a ``user_id``).  ``k``
        defaults to the request's own ``k``, then to the full candidate list.
        """
        if self.rank_fn is None:
            raise RuntimeError("this batcher has no rank head (rank_fn not configured)")
        candidates = np.asarray(list(request.candidates), dtype=np.int64)
        self.stats.requests += 1
        if candidates.size == 0:
            return RankedCandidates(
                candidates=np.empty(0, dtype=np.int64),
                scores=np.empty(0, dtype=np.float64),
            )
        cut = k if k is not None else request.k
        if cut is None:
            cut = candidates.shape[0]
        if self.sequence_store is not None and request.user_id >= 0:
            indices, mask = self._encode_history(request)
            top, scores = self.rank_fn(
                request.static_indices, candidates, cut,
                indices[None, :], mask[None, :],
            )
        else:
            top, scores = self.rank_fn(request.static_indices, candidates, cut,
                                       self._resolve_history(request))
        self.stats.batches += 1
        self.stats.rows_scored += candidates.shape[0]
        return RankedCandidates(candidates=top, scores=scores)

    def rank_all(
        self, requests: Sequence[RankRequest], k: Optional[int] = None
    ) -> List[RankedCandidates]:
        """Rank many requests, results in request order."""
        return [self.rank(request, k) for request in requests]

    # ------------------------------------------------------------------ #
    # Recommend head
    # ------------------------------------------------------------------ #
    def recommend(
        self,
        request: RecommendRequest,
        k: Optional[int] = None,
        n_retrieve: Optional[int] = None,
    ) -> RankedCandidates:
        """Answer one candidate-free request through retrieve → rank.

        Like :meth:`rank`, a recommendation is already a dense unit of work
        (one index sweep + one shortlist re-rank), so it is evaluated
        immediately via ``recommend_fn``.  The history is encoded through the
        sequence store when the request carries a ``user_id``, exactly as the
        scoring and rank heads do.  The ``k`` argument overrides the
        request's own ``k`` (the same precedence as :meth:`rank`), falling
        back to :data:`DEFAULT_RECOMMEND_K`; ``n_retrieve`` likewise resolves
        call → request → pipeline default.
        """
        if self.recommend_fn is None:
            raise RuntimeError(
                "this batcher has no recommend head (recommend_fn not configured)"
            )
        cut = k if k is not None else request.k
        if cut is None:
            cut = DEFAULT_RECOMMEND_K
        fanout = n_retrieve if n_retrieve is not None else request.n_retrieve
        self.stats.requests += 1
        if self.sequence_store is not None and request.user_id >= 0:
            indices, mask = self._encode_history(request)
            result = self.recommend_fn(
                request.static_indices, cut,
                history=indices[None, :], n_retrieve=fanout,
                history_mask=mask[None, :],
            )
        else:
            result = self.recommend_fn(
                request.static_indices, cut,
                history=self._resolve_history(request), n_retrieve=fanout,
            )
        self.stats.batches += 1
        self.stats.rows_scored += len(result)
        return result

    def recommend_all(
        self,
        requests: Sequence[RecommendRequest],
        k: Optional[int] = None,
        n_retrieve: Optional[int] = None,
    ) -> List[RankedCandidates]:
        """Recommend for many requests, results in request order."""
        return [self.recommend(request, k, n_retrieve) for request in requests]

    # ------------------------------------------------------------------ #
    # Collation
    # ------------------------------------------------------------------ #
    def collate(self, requests: Sequence[ScoreRequest]) -> FeatureBatch:
        """Pad a list of requests into one :class:`FeatureBatch`.

        Every request must carry the same number of static features (the
        model consumes a rectangular static index matrix).
        """
        if not requests:
            raise ValueError("cannot collate zero requests")
        widths = {len(request.static_indices) for request in requests}
        if len(widths) != 1:
            raise ValueError(
                f"all requests must have the same static feature count, got {sorted(widths)}"
            )
        static = np.asarray(
            [list(request.static_indices) for request in requests], dtype=np.int64
        )
        dynamic, mask = self._collate_histories(requests)
        return FeatureBatch(
            static_indices=static,
            dynamic_indices=dynamic,
            dynamic_mask=mask,
            labels=np.zeros(len(requests), dtype=np.float64),
            user_ids=np.array([request.user_id for request in requests], dtype=np.int64),
            object_ids=np.array([request.object_id for request in requests], dtype=np.int64),
        )

    def _resolve_history(self, request) -> Sequence[int]:
        """The literal history of the store-less paths (``None`` → empty).

        ``history=None`` is the "server-side sequence" sentinel; without a
        sequence store (or for anonymous users) there is no server state, so
        it degrades to an empty history.
        """
        return request.history if request.history is not None else ()

    def _encode_history(self, request):
        """Padded ``(indices, mask)`` via the store (``user_id ≥ 0`` callers).

        Requests omitting their history read the stored encoding directly —
        one cache lookup, no guaranteed-hit re-fingerprinting.
        """
        if request.history is None:
            return self.sequence_store.encode_stored(request.user_id)
        return self.sequence_store.encode(request.user_id, request.history)

    def _collate_histories(self, requests: Sequence[ScoreRequest]):
        if self.sequence_store is None:
            return pad_sequences(
                [self._resolve_history(request) for request in requests],
                self.max_seq_len,
            )
        rows = []
        masks = []
        for request in requests:
            if request.user_id >= 0:
                indices, mask = self._encode_history(request)
            else:
                padded, padded_mask = pad_sequences(
                    [self._resolve_history(request)], self.max_seq_len)
                indices, mask = padded[0], padded_mask[0]
            rows.append(indices)
            masks.append(mask)
        return np.stack(rows), np.stack(masks)
