"""Graph-free batched inference over a trained SeqFM model.

Training evaluates the model through the autograd layer: every matmul
allocates a :class:`~repro.autograd.tensor.Tensor` node and registers a
backward closure, even under ``no_grad``.  Serving never needs gradients, so
:class:`InferenceEngine` re-runs the *same* forward math — Eq. 3-19 of the
paper — directly on the model's parameter arrays with the pure-NumPy kernels
in :mod:`repro.nn.kernels` and the mask builders in :mod:`repro.core.views`.
Nothing is duplicated: masks, attention, layer norm and pooling all come from
the shared implementations, so engine output is identical to
:meth:`repro.core.model.SeqFM.score` to machine precision (the test suite
asserts 1e-10).

The engine reads parameters *by reference*: when a registry hot-reloads a
checkpoint into the same model object via ``load_state_dict``, the engine
picks up the new weights on the next call without being rebuilt.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.model import SeqFM
from repro.core.views import cross_attention_mask, cross_valid_mask, dynamic_attention_mask
from repro.data.features import FeatureBatch
from repro.nn import kernels
from repro.nn.attention import SelfAttention
from repro.nn.feedforward import ResidualFeedForward


class InferenceEngine:
    """Vectorised, allocation-lean forward pass for a trained SeqFM model.

    Parameters
    ----------
    model:
        A (typically trained) :class:`~repro.core.model.SeqFM` instance.  The
        engine holds a reference and reads the parameter arrays at call time;
        it never mutates the model.

    Examples
    --------
    >>> engine = InferenceEngine(model)
    >>> scores = engine.score(batch)           # == model.score(batch)
    >>> probs = engine.classify(batch)         # == SeqFMClassifier probabilities
    """

    def __init__(self, model: SeqFM):
        self._model = model
        self.config = model.config

    @property
    def model(self) -> SeqFM:
        return self._model

    # ------------------------------------------------------------------ #
    # Public endpoints
    # ------------------------------------------------------------------ #
    def score(self, batch: FeatureBatch) -> np.ndarray:
        """Raw scores ŷ for every instance — parity with ``SeqFM.score``."""
        self._validate_indices(batch)
        return self._linear_term(batch) + self._interaction_term(batch)

    def _validate_indices(self, batch: FeatureBatch) -> None:
        # The autograd path validates inside Embedding.forward; the engine
        # indexes the weight arrays directly, so re-check here — a bad request
        # must surface as a clean IndexError, not corrupt NumPy fancy-indexing.
        for name, indices, vocab in (
            ("static", batch.static_indices, self.config.static_vocab_size),
            ("dynamic", batch.dynamic_indices, self.config.dynamic_vocab_size),
        ):
            if indices.size and (indices.min() < 0 or indices.max() >= vocab):
                raise IndexError(
                    f"{name} feature index out of range [0, {vocab}): "
                    f"min={indices.min()}, max={indices.max()}"
                )

    def classify(self, batch: FeatureBatch) -> np.ndarray:
        """σ(ŷ) ∈ (0, 1) — parity with ``ClassificationTask.predict_probability``."""
        return kernels.sigmoid(self.score(batch))

    def regress(self, batch: FeatureBatch) -> np.ndarray:
        """Predicted ratings — the raw score, as in ``RegressionTask``."""
        return self.score(batch)

    # ------------------------------------------------------------------ #
    # Forward components (mirror SeqFM._linear_term/_interaction_term)
    # ------------------------------------------------------------------ #
    def _linear_term(self, batch: FeatureBatch) -> np.ndarray:
        model = self._model
        static_weights = model.static_linear.data[batch.static_indices].sum(axis=-1)
        dynamic_weights = model.dynamic_linear.data[batch.dynamic_indices]
        dynamic_sum = (dynamic_weights * batch.dynamic_mask).sum(axis=-1)
        return model.global_bias.data + static_weights + dynamic_sum

    def _interaction_term(self, batch: FeatureBatch) -> np.ndarray:
        model = self._model
        static_embedded = model.static_embedding.weight.data[batch.static_indices]
        dynamic_embedded = model.dynamic_embedding.weight.data[batch.dynamic_indices]

        pooled_views: List[np.ndarray] = []
        if model.static_view is not None:
            attended = self._attend(model.static_view.attention, static_embedded, mask=None)
            pooled_views.append(kernels.mean_pool(attended, axis=-2))
        if model.dynamic_view is not None:
            pooled_views.append(
                self._dynamic_view(dynamic_embedded, batch.dynamic_mask)
            )
        if model.cross_view is not None:
            pooled_views.append(
                self._cross_view(static_embedded, dynamic_embedded, batch.dynamic_mask)
            )

        refined = [self._apply_ffn(view, index) for index, view in enumerate(pooled_views)]
        aggregated = np.concatenate(refined, axis=-1)
        return aggregated @ model.projection.data

    def _attend(
        self, attention: SelfAttention, features: np.ndarray, mask: Optional[np.ndarray]
    ) -> np.ndarray:
        queries = features @ attention.w_query.data
        keys = features @ attention.w_key.data
        values = features @ attention.w_value.data
        return kernels.scaled_dot_product_attention(queries, keys, values, mask=mask)

    def _dynamic_view(self, dynamic_embedded: np.ndarray, valid_mask: np.ndarray) -> np.ndarray:
        view = self._model.dynamic_view
        seq_len = dynamic_embedded.shape[-2]
        attention_mask = dynamic_attention_mask(seq_len, valid_mask)
        interactions = self._attend(view.attention, dynamic_embedded, attention_mask)
        if view.pooling == "last":
            return interactions[:, -1, :]
        return kernels.masked_mean_pool(interactions, valid_mask, axis=-2)

    def _cross_view(
        self,
        static_embedded: np.ndarray,
        dynamic_embedded: np.ndarray,
        valid_mask: np.ndarray,
    ) -> np.ndarray:
        view = self._model.cross_view
        num_static = static_embedded.shape[-2]
        seq_len = dynamic_embedded.shape[-2]
        combined = np.concatenate([static_embedded, dynamic_embedded], axis=-2)
        combined_valid = cross_valid_mask(num_static, valid_mask)
        attention_mask = cross_attention_mask(
            num_static, seq_len, combined_valid, full_attention=view.full_attention
        )
        interactions = self._attend(view.attention, combined, attention_mask)
        return kernels.masked_mean_pool(interactions, combined_valid, axis=-2)

    def _apply_ffn(self, pooled: np.ndarray, view_index: int) -> np.ndarray:
        model = self._model
        ffn = model.shared_ffn if model.shared_ffn is not None else model.view_ffns[view_index]
        return self._ffn_forward(ffn, pooled)

    @staticmethod
    def _ffn_forward(ffn: ResidualFeedForward, x: np.ndarray) -> np.ndarray:
        # Dropout is identity at inference time, so the eval-mode forward of
        # ResidualFeedForward reduces to this loop.
        hidden = x
        for linear, norm in zip(ffn.linears, ffn.norms):
            branch_input = (
                kernels.layer_norm(hidden, norm.scale.data, norm.bias.data, eps=norm.eps)
                if ffn.use_layer_norm
                else hidden
            )
            affine = branch_input @ linear.weight.data
            if linear.bias is not None:
                affine = affine + linear.bias.data
            branch = kernels.relu(affine)
            hidden = hidden + branch if ffn.use_residual else branch
        return hidden

    def __repr__(self) -> str:
        return f"InferenceEngine({self._model!r})"
