"""Graph-free batched inference over a trained SeqFM model.

Training evaluates the model through the autograd layer: every matmul
allocates a :class:`~repro.autograd.tensor.Tensor` node and registers a
backward closure, even under ``no_grad``.  Serving never needs gradients, so
:class:`InferenceEngine` re-runs the *same* forward math — Eq. 3-19 of the
paper — directly on the model's parameter arrays with the pure-NumPy kernels
in :mod:`repro.nn.kernels` and the mask builders in :mod:`repro.core.views`.
Nothing is duplicated: masks, attention, layer norm and pooling all come from
the shared implementations, so engine output is identical to
:meth:`repro.core.model.SeqFM.score` to machine precision (the test suite
asserts 1e-10).

The engine reads parameters *by reference*: when a registry hot-reloads a
checkpoint into the same model object via ``load_state_dict``, the engine
picks up the new weights on the next call without being rebuilt.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.model import SeqFM
from repro.core.views import cross_attention_mask, cross_valid_mask, dynamic_attention_mask
from repro.data.features import FeatureBatch, FeatureEncoder, pad_sequences
from repro.nn import kernels
from repro.nn.attention import SelfAttention
from repro.nn.feedforward import ResidualFeedForward


@dataclass
class RankingPlan:
    """Per-user workspace of the candidate-ranking fast path.

    Everything in here depends only on the user — the static profile and the
    interaction history — never on the candidate, so it is computed **once**
    by :meth:`InferenceEngine.prepare_ranking` and reused across the C
    candidate rows of :meth:`InferenceEngine.rank_candidates`:

    * the padded history encoding and its dynamic linear-term sum;
    * the dynamic view evaluated end to end (attention + pooling + FFN) —
      the n˙²-cost block of the model;
    * the cross-view Q/K/V projections of the history rows, the shared
      history↔history score block, and the (candidate-independent) cross
      attention mask.

    A plan snapshots projections of the *current* weights; after a registry
    hot-reload build a fresh plan (``rank_candidates`` without an explicit
    ``plan`` argument always does).
    """

    static_profile: np.ndarray       # (n_static,) int64 template row
    candidate_slot: int              # profile slot the candidate index replaces
    dynamic_indices: np.ndarray      # (1, n) padded history
    dynamic_mask: np.ndarray         # (1, n) validity mask
    dynamic_linear_sum: float        # Σ w˙ over the valid history events
    dynamic_refined: Optional[np.ndarray]   # (1, d) post-FFN dynamic view
    cross_q_dyn: Optional[np.ndarray]       # (n, d) history queries
    cross_k_dyn: Optional[np.ndarray]       # (n, d) history keys
    cross_v_dyn: Optional[np.ndarray]       # (n, d) history values
    cross_dyn_dyn_scores: Optional[np.ndarray]  # (n, n) scaled Q˙K˙ᵀ block
    cross_mask: Optional[np.ndarray]        # (1, T, T) additive attention mask
    cross_valid: Optional[np.ndarray]       # (1, T) combined validity mask


class InferenceEngine:
    """Vectorised, allocation-lean forward pass for a trained SeqFM model.

    Parameters
    ----------
    model:
        A (typically trained) :class:`~repro.core.model.SeqFM` instance.  The
        engine holds a reference and reads the parameter arrays at call time;
        it never mutates the model.

    Examples
    --------
    >>> engine = InferenceEngine(model)
    >>> scores = engine.score(batch)           # == model.score(batch)
    >>> probs = engine.classify(batch)         # == SeqFMClassifier probabilities
    """

    def __init__(self, model: SeqFM):
        self._model = model
        self.config = model.config

    @property
    def model(self) -> SeqFM:
        return self._model

    # ------------------------------------------------------------------ #
    # Public endpoints
    # ------------------------------------------------------------------ #
    def score(self, batch: FeatureBatch) -> np.ndarray:
        """Raw scores ŷ for every instance — parity with ``SeqFM.score``."""
        self._validate_indices(batch)
        return self._linear_term(batch) + self._interaction_term(batch)

    def _validate_indices(self, batch: FeatureBatch) -> None:
        # The autograd path validates inside Embedding.forward; the engine
        # indexes the weight arrays directly, so re-check here — a bad request
        # must surface as a clean TypeError/IndexError, not corrupt (or worse,
        # silently succeed at) NumPy fancy-indexing.
        self._check_index_array("static", batch.static_indices, self.config.static_vocab_size)
        self._check_index_array("dynamic", batch.dynamic_indices, self.config.dynamic_vocab_size)

    @staticmethod
    def _check_index_array(name: str, indices: np.ndarray, vocab: int) -> None:
        indices = np.asarray(indices)
        if not np.issubdtype(indices.dtype, np.integer):
            # float/bool arrays fancy-index weight tables without error (bool
            # even changes meaning, selecting rows 0/1) — reject them outright.
            raise TypeError(
                f"{name} feature indices must have an integer dtype, got {indices.dtype}"
            )
        if indices.size and (indices.min() < 0 or indices.max() >= vocab):
            raise IndexError(
                f"{name} feature index out of range [0, {vocab}): "
                f"min={indices.min()}, max={indices.max()}"
            )

    def classify(self, batch: FeatureBatch) -> np.ndarray:
        """σ(ŷ) ∈ (0, 1) — parity with ``ClassificationTask.predict_probability``."""
        return kernels.sigmoid(self.score(batch))

    def regress(self, batch: FeatureBatch) -> np.ndarray:
        """Predicted ratings — the raw score, as in ``RegressionTask``."""
        return self.score(batch)

    # ------------------------------------------------------------------ #
    # Candidate ranking fast path
    # ------------------------------------------------------------------ #
    def prepare_ranking(
        self,
        static_profile: Sequence[int],
        history: Sequence[int],
        history_mask: Optional[np.ndarray] = None,
        candidate_slot: int = FeatureEncoder.candidate_slot,
    ) -> RankingPlan:
        """Build the per-user workspace of :meth:`rank_candidates`.

        ``static_profile`` is one row of static feature indices (the
        candidate slot's value is a placeholder — it is replaced per
        candidate).  ``history`` is the raw (unpadded) dynamic-vocabulary
        event sequence unless ``history_mask`` is given, in which case it is
        taken as an already padded length-n˙ row with its validity mask.

        All candidate-independent work happens here, once: the dynamic
        embeddings, the full dynamic view (attention + pooling + FFN), the
        dynamic linear sum, and the cross-view Q/K/V projections of the
        history rows plus their shared history↔history score block.
        """
        model = self._model
        # asarray without a dtype so a float/bool input reaches the dtype
        # check un-cast instead of being silently truncated to integers
        profile = np.asarray(static_profile).reshape(-1)
        self._check_index_array("static", profile, self.config.static_vocab_size)
        profile = profile.astype(np.int64, copy=False)
        if not (0 <= candidate_slot < profile.shape[0]):
            raise ValueError(
                f"candidate_slot {candidate_slot} outside the static profile "
                f"of {profile.shape[0]} features"
            )

        if history_mask is None:
            # Validate only the visible suffix — pad_sequences truncates to
            # the last n˙ events, and the sequence-store path (which encodes
            # before the engine sees indices) truncates the same way.
            events = list(history)[-self.config.max_seq_len:]
            if events:
                self._check_index_array(
                    "dynamic", np.asarray(events), self.config.dynamic_vocab_size
                )
            dynamic, mask = pad_sequences([events], self.config.max_seq_len)
        else:
            dynamic = np.asarray(history).reshape(1, -1)
            self._check_index_array("dynamic", dynamic, self.config.dynamic_vocab_size)
            dynamic = dynamic.astype(np.int64, copy=False)
            mask = np.asarray(history_mask, dtype=np.float64).reshape(1, -1)
            if dynamic.shape != mask.shape or dynamic.shape[1] != self.config.max_seq_len:
                raise ValueError(
                    "padded history and mask must both have shape "
                    f"(1, {self.config.max_seq_len}), got {dynamic.shape} and {mask.shape}"
                )

        dynamic_linear_sum = float(
            (model.dynamic_linear.data[dynamic] * mask).sum()
        )

        dynamic_refined: Optional[np.ndarray] = None
        cross_q = cross_k = cross_v = cross_dd = cross_mask = cross_valid = None
        needs_dynamic_embeddings = (
            model.dynamic_view is not None or model.cross_view is not None
        )
        if needs_dynamic_embeddings:
            dynamic_embedded = model.dynamic_embedding.weight.data[dynamic]  # (1, n, d)

        if model.dynamic_view is not None:
            pooled = self._dynamic_view(dynamic_embedded, mask)
            view_index = 1 if model.static_view is not None else 0
            dynamic_refined = self._apply_ffn(pooled, view_index)

        if model.cross_view is not None:
            attention = model.cross_view.attention
            rows = dynamic_embedded[0]  # (n, d)
            cross_q, cross_k, cross_v = kernels.project_qkv(
                rows, attention.w_query.data, attention.w_key.data, attention.w_value.data
            )
            d = rows.shape[-1]
            cross_dd = cross_q @ cross_k.T * (1.0 / np.sqrt(d))
            cross_valid = cross_valid_mask(profile.shape[0], mask)
            cross_mask = cross_attention_mask(
                profile.shape[0],
                dynamic.shape[1],
                cross_valid,
                full_attention=model.cross_view.full_attention,
            )

        return RankingPlan(
            static_profile=profile,
            candidate_slot=candidate_slot,
            dynamic_indices=dynamic,
            dynamic_mask=mask,
            dynamic_linear_sum=dynamic_linear_sum,
            dynamic_refined=dynamic_refined,
            cross_q_dyn=cross_q,
            cross_k_dyn=cross_k,
            cross_v_dyn=cross_v,
            cross_dyn_dyn_scores=cross_dd,
            cross_mask=cross_mask,
            cross_valid=cross_valid,
        )

    def rank_candidates(
        self,
        static_profile: Sequence[int],
        candidate_indices: Sequence[int],
        history: Sequence[int] = (),
        history_mask: Optional[np.ndarray] = None,
        plan: Optional[RankingPlan] = None,
        candidate_slot: int = FeatureEncoder.candidate_slot,
    ) -> np.ndarray:
        """Score C candidates that share one user profile and history.

        Parity-equivalent (1e-10) to scoring C single-row batches through
        :meth:`score` with the candidate slot swapped per row, but every
        candidate-independent quantity — the dynamic view, the dynamic linear
        sum, the cross-view history projections — is computed once via
        :class:`RankingPlan` and broadcast, leaving only the per-candidate
        static work: the static-view attention over n° rows and the
        cross-view projections/score blocks of the candidate's static rows.

        Returns the raw scores, one per candidate, in candidate order.
        """
        if plan is None:
            plan = self.prepare_ranking(
                static_profile, history, history_mask, candidate_slot=candidate_slot
            )
        model = self._model
        candidates = np.asarray(candidate_indices).reshape(-1)
        if candidates.size == 0:
            return np.empty(0, dtype=np.float64)
        self._check_index_array("candidate", candidates, self.config.static_vocab_size)
        candidates = candidates.astype(np.int64, copy=False)

        num_candidates = candidates.shape[0]
        static_full = np.tile(plan.static_profile, (num_candidates, 1))
        static_full[:, plan.candidate_slot] = candidates

        # --- Linear term: only the static sum is candidate-dependent -----
        static_weights = model.static_linear.data[static_full].sum(axis=-1)
        linear = model.global_bias.data + static_weights + plan.dynamic_linear_sum

        # --- Interaction term --------------------------------------------
        static_embedded = model.static_embedding.weight.data[static_full]  # (C, n°, d)
        refined: List[np.ndarray] = []
        view_index = 0
        if model.static_view is not None:
            attended = self._attend(model.static_view.attention, static_embedded, mask=None)
            refined.append(self._apply_ffn(kernels.mean_pool(attended, axis=-2), view_index))
            view_index += 1
        if model.dynamic_view is not None:
            refined.append(
                np.broadcast_to(
                    plan.dynamic_refined, (num_candidates, plan.dynamic_refined.shape[-1])
                )
            )
            view_index += 1
        if model.cross_view is not None:
            pooled = self._cross_view_from_plan(static_embedded, plan)
            refined.append(self._apply_ffn(pooled, view_index))

        aggregated = np.concatenate(refined, axis=-1)
        return linear + aggregated @ model.projection.data

    def rank_topk(
        self,
        static_profile: Sequence[int],
        candidate_indices: Sequence[int],
        k: int,
        history: Sequence[int] = (),
        history_mask: Optional[np.ndarray] = None,
        plan: Optional[RankingPlan] = None,
        candidate_slot: int = FeatureEncoder.candidate_slot,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Top-k of :meth:`rank_candidates`: ``(candidate_indices, scores)``.

        Both arrays are ordered best-first; the candidates are the *values*
        from ``candidate_indices``, not positions.  Selection is the
        :func:`repro.nn.kernels.top_k` partial sort.
        """
        candidates = np.asarray(candidate_indices).reshape(-1)
        scores = self.rank_candidates(
            static_profile, candidates, history, history_mask,
            plan=plan, candidate_slot=candidate_slot,
        )
        order = kernels.top_k(scores, k)
        return candidates[order].astype(np.int64, copy=False), scores[order]

    # ------------------------------------------------------------------ #
    # Two-stage retrieval (candidate generation + re-rank)
    # ------------------------------------------------------------------ #
    def retrieve(
        self,
        searcher,
        static_profile: Sequence[int],
        history: Sequence[int] = (),
        n: int = 100,
        history_mask: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Candidate generation: top-``n`` catalog items from an item index.

        ``searcher`` is an :class:`~repro.retrieval.index.ExactIndex` or
        :class:`~repro.retrieval.index.IVFIndex` over a snapshot of *this*
        model's catalog.  The user's query is the per-user linear surrogate of
        :class:`~repro.retrieval.query.QueryEncoder`; returns
        ``(item_ids, surrogate_scores)`` best first.  For the full two-stage
        request use :meth:`retrieve_then_rank`.
        """
        from repro.retrieval.pipeline import RetrievePipeline

        pipeline = RetrievePipeline(self, searcher, n_retrieve=max(1, n))
        result = pipeline.retrieve(static_profile, history, n=n,
                                   history_mask=history_mask)
        return result.candidates, result.scores

    def retrieve_then_rank(
        self,
        searcher,
        static_profile: Sequence[int],
        k: int,
        history: Sequence[int] = (),
        n_retrieve: Optional[int] = None,
        history_mask: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Two-stage recommendation: index shortlist, exact top-``k`` re-rank.

        One :class:`RankingPlan` is shared by the query encoder and the
        re-ranker, so the per-user model work happens once.  Returns
        ``(item_ids, exact_scores)`` best first — the same contract as
        :meth:`rank_topk`, with the candidate list found by the index instead
        of supplied by the caller.
        """
        from repro.retrieval.pipeline import RetrievePipeline

        pipeline = RetrievePipeline(self, searcher)
        ranked = pipeline.retrieve_then_rank(
            static_profile, k, history, n_retrieve=n_retrieve,
            history_mask=history_mask,
        )
        return ranked.candidates, ranked.scores

    def _cross_view_from_plan(
        self, static_embedded: np.ndarray, plan: RankingPlan
    ) -> np.ndarray:
        """Cross-view pooled representation with the history K/V cached.

        Assembles the (C, T, T) score matrix from four blocks — only the
        blocks touching a static row involve per-candidate work; the
        history↔history block comes precomputed from the plan — then runs the
        exact softmax → weighted-values → masked-pool sequence of
        :meth:`_cross_view`.
        """
        attention = self._model.cross_view.attention
        num_candidates, num_static, d = static_embedded.shape
        seq_len = plan.cross_k_dyn.shape[0]
        scale = 1.0 / np.sqrt(d)

        q_static, k_static, v_static = kernels.project_qkv(
            static_embedded,
            attention.w_query.data, attention.w_key.data, attention.w_value.data,
        )  # each (C, n°, d)

        total = num_static + seq_len
        scores = np.empty((num_candidates, total, total), dtype=np.float64)
        scores[:, :num_static, :num_static] = (
            q_static @ np.swapaxes(k_static, -1, -2) * scale
        )
        scores[:, :num_static, num_static:] = q_static @ plan.cross_k_dyn.T * scale
        scores[:, num_static:, :num_static] = (
            plan.cross_q_dyn[None] @ np.swapaxes(k_static, -1, -2) * scale
        )
        scores[:, num_static:, num_static:] = plan.cross_dyn_dyn_scores

        weights = kernels.softmax(scores + plan.cross_mask)
        # Blocked weighted sum: the history V rows stay one shared (n, d)
        # operand instead of being copied out to every candidate row.
        attended = (
            weights[:, :, :num_static] @ v_static
            + weights[:, :, num_static:] @ plan.cross_v_dyn
        )
        return kernels.masked_mean_pool(attended, plan.cross_valid, axis=-2)

    # ------------------------------------------------------------------ #
    # Forward components (mirror SeqFM._linear_term/_interaction_term)
    # ------------------------------------------------------------------ #
    def _linear_term(self, batch: FeatureBatch) -> np.ndarray:
        model = self._model
        static_weights = model.static_linear.data[batch.static_indices].sum(axis=-1)
        dynamic_weights = model.dynamic_linear.data[batch.dynamic_indices]
        dynamic_sum = (dynamic_weights * batch.dynamic_mask).sum(axis=-1)
        return model.global_bias.data + static_weights + dynamic_sum

    def _interaction_term(self, batch: FeatureBatch) -> np.ndarray:
        model = self._model
        static_embedded = model.static_embedding.weight.data[batch.static_indices]
        dynamic_embedded = model.dynamic_embedding.weight.data[batch.dynamic_indices]

        pooled_views: List[np.ndarray] = []
        if model.static_view is not None:
            attended = self._attend(model.static_view.attention, static_embedded, mask=None)
            pooled_views.append(kernels.mean_pool(attended, axis=-2))
        if model.dynamic_view is not None:
            pooled_views.append(
                self._dynamic_view(dynamic_embedded, batch.dynamic_mask)
            )
        if model.cross_view is not None:
            pooled_views.append(
                self._cross_view(static_embedded, dynamic_embedded, batch.dynamic_mask)
            )

        refined = [self._apply_ffn(view, index) for index, view in enumerate(pooled_views)]
        aggregated = np.concatenate(refined, axis=-1)
        return aggregated @ model.projection.data

    def _attend(
        self, attention: SelfAttention, features: np.ndarray, mask: Optional[np.ndarray]
    ) -> np.ndarray:
        queries, keys, values = kernels.project_qkv(
            features, attention.w_query.data, attention.w_key.data, attention.w_value.data
        )
        return kernels.attend_with_cached_kv(queries, keys, values, mask=mask)

    def _dynamic_view(self, dynamic_embedded: np.ndarray, valid_mask: np.ndarray) -> np.ndarray:
        view = self._model.dynamic_view
        seq_len = dynamic_embedded.shape[-2]
        attention_mask = dynamic_attention_mask(seq_len, valid_mask)
        interactions = self._attend(view.attention, dynamic_embedded, attention_mask)
        if view.pooling == "last":
            return interactions[:, -1, :]
        return kernels.masked_mean_pool(interactions, valid_mask, axis=-2)

    def _cross_view(
        self,
        static_embedded: np.ndarray,
        dynamic_embedded: np.ndarray,
        valid_mask: np.ndarray,
    ) -> np.ndarray:
        view = self._model.cross_view
        num_static = static_embedded.shape[-2]
        seq_len = dynamic_embedded.shape[-2]
        combined = np.concatenate([static_embedded, dynamic_embedded], axis=-2)
        combined_valid = cross_valid_mask(num_static, valid_mask)
        attention_mask = cross_attention_mask(
            num_static, seq_len, combined_valid, full_attention=view.full_attention
        )
        interactions = self._attend(view.attention, combined, attention_mask)
        return kernels.masked_mean_pool(interactions, combined_valid, axis=-2)

    def _apply_ffn(self, pooled: np.ndarray, view_index: int) -> np.ndarray:
        model = self._model
        ffn = model.shared_ffn if model.shared_ffn is not None else model.view_ffns[view_index]
        return self._ffn_forward(ffn, pooled)

    @staticmethod
    def _ffn_forward(ffn: ResidualFeedForward, x: np.ndarray) -> np.ndarray:
        # Dropout is identity at inference time, so the eval-mode forward of
        # ResidualFeedForward reduces to this loop.
        hidden = x
        for linear, norm in zip(ffn.linears, ffn.norms):
            branch_input = (
                kernels.layer_norm(hidden, norm.scale.data, norm.bias.data, eps=norm.eps)
                if ffn.use_layer_norm
                else hidden
            )
            affine = branch_input @ linear.weight.data
            if linear.bias is not None:
                affine = affine + linear.bias.data
            branch = kernels.relu(affine)
            hidden = hidden + branch if ffn.use_residual else branch
        return hidden

    def __repr__(self) -> str:
        return f"InferenceEngine({self._model!r})"
