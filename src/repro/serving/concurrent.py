"""The concurrent serving runtime: worker pools, backpressure, deadlines.

:mod:`repro.serving.protocol` gave the server one seam — the
:class:`~repro.serving.protocol.ServingRouter` that turns a mixed stream into
(model, head) micro-batches.  This module puts a worker pool behind that seam:

* :class:`ConcurrentServingRouter` — envelopes are validated, parsed and
  admitted on the dispatcher thread, then executed on a
  ``ThreadPoolExecutor`` (the NumPy kernels release the GIL inside BLAS, so
  threads scale on multicore hosts), with a **process-pool fallback
  selectable per model** for workloads that stay GIL-bound.  Each worker
  borrows a per-(model, head) :class:`~repro.serving.batcher.MicroBatcher`
  from a pool, so same-group traffic keeps its batching behaviour without
  sharing mutable state across threads.

* **Byte parity with the serial router.**  By default every envelope is
  executed exactly as :meth:`ServingRouter.execute` would — same batch
  composition, same store semantics — so for any request stream the
  concurrent responses, re-keyed by envelope ``id``, are byte-identical to
  the serial ones (stress-tested at several worker counts).  Stateful
  traffic (the ``update`` head, and any request reading the server-side
  sequence) executes under a **barrier**: the dispatcher drains in-flight
  work, applies the stateful envelope inline, then resumes — sequential
  consistency for state, full concurrency for everything else.

* **Coalescing** (opt-in, ``coalesce=True``) — consecutive stateless
  envelopes for the same (model, head) merge into shared micro-batches up
  to ``max_batch_size`` (flushed by size or a ``linger`` deadline).  This
  is the batch-amortisation win of PR 1 applied *across* request lines; for
  the scoring heads it trades byte-identity for throughput (results agree
  to ~1e-12 — BLAS blocking differs with batch shape), which is why it is
  not the default.  The list heads (``rank-topk`` / ``recommend``) execute
  per request even inside a merged batch, so they stay byte-identical.

* **Admission control with backpressure** — a bounded in-flight budget
  (``max_inflight``); excess load is rejected *immediately* with a
  structured ``overloaded`` error (:data:`~repro.serving.protocol.ERR_OVERLOADED`)
  counted in :class:`~repro.serving.service.ServeSummary.error_codes`,
  instead of queueing without bound until latency collapses.

* **Deadlines** — with ``timeout`` set, a request that has not completed
  within its deadline is answered with a structured ``timeout`` error and
  the stream keeps flowing; a stuck worker can delay its own batch, never
  the server.

* **Self-healing** — retryable failures (injected faults, a crashed and
  restarted worker-process pool) re-run under a jittered-exponential
  :class:`~repro.serving.faults.RetryPolicy` before a structured
  ``retryable`` error is emitted; repeat-offender request bodies are
  quarantined; and a :class:`HealthMonitor` drives the
  :class:`DegradationPolicy` ladder (shed coalescing → cheaper IVF probes →
  admission reject) so a failure burst degrades quality instead of
  collapsing latency.  The ``status`` head reports all of it live.

:func:`serve_concurrent_jsonl` is the streaming front-end over all of it —
the drop-in concurrent sibling of :func:`repro.serving.service.serve_jsonl`,
exposed on the CLI as ``serve --workers N [--max-inflight M] [--shards S]``.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import IO, Any, Callable, Deque, Dict, List, Optional, Sequence, Tuple

from repro.serving.faults import (
    NULL_INJECTOR,
    FaultInjector,
    RetryPolicy,
    TransientFault,
    is_retryable,
)
from repro.serving.protocol import (
    ERR_BAD_JSON,
    ERR_EXECUTION,
    ERR_OVERLOADED,
    ERR_RETRYABLE,
    ERR_TIMEOUT,
    ERR_UNKNOWN_MODEL,
    Envelope,
    Head,
    HeadRegistry,
    ProtocolError,
    ServeDefaults,
    ServingRouter,
    default_heads,
    error_response,
    parse_envelope,
    render_response,
)
from repro.serving.service import ServeSummary

#: Heads a process-pool worker can answer from a checkpoint alone: pure model
#: math, no attached index and no server-side sequence state.  Heads outside
#: this set (``recommend`` needs the parent's item index, ``update`` the
#: parent's store) transparently stay on the thread pool.
PROCESS_SAFE_HEADS = frozenset({"score", "rank", "classify", "regress", "rank-topk"})

#: Completion callback: (line_number, envelope, response_body, rows, error_code).
#: ``error_code`` is ``None`` for a successful response.
CompletionFn = Callable[[int, Envelope, dict, int, Optional[str]], None]


class _Pending:
    """One admitted envelope awaiting its response.

    ``claim()`` arbitrates between a worker delivering the real response and
    the deadline sweep delivering a timeout — exactly one side wins, the
    other becomes a no-op, so a late worker can never double-answer a line.
    """

    __slots__ = ("line", "envelope", "head", "requests", "deadline", "on_done",
                 "event", "_claimed", "_lock")

    def __init__(self, line: int, envelope: Envelope, head: Head,
                 requests: List, deadline: Optional[float],
                 on_done: CompletionFn):
        self.line = line
        self.envelope = envelope
        self.head = head
        self.requests = requests
        self.deadline = deadline
        self.on_done = on_done
        self.event = threading.Event()
        self._claimed = False
        self._lock = threading.Lock()

    def claim(self) -> bool:
        with self._lock:
            if self._claimed:
                return False
            self._claimed = True
            return True


@dataclass
class _Group:
    """Buffered same-(model, head) envelopes awaiting a coalesced flush."""

    items: List[_Pending] = field(default_factory=list)
    created: float = 0.0
    size: int = 0  # total buffered requests across items


# --------------------------------------------------------------------------- #
# Health tracking and the degradation ladder
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class HealthSnapshot:
    """Execution outcomes inside the sliding health window."""

    samples: int
    failures: int

    @property
    def error_rate(self) -> float:
        return self.failures / self.samples if self.samples else 0.0


class HealthMonitor:
    """A sliding time window of execution outcomes (thread-safe).

    Workers record one outcome per completed line (success, execution
    error, timeout, exhausted retries); admission-control rejections are
    deliberately *not* recorded — if shed load counted as failure, the top
    of the degradation ladder could never climb back down.  The window
    draining of samples is itself the recovery path: a quiet (or healthy)
    window reads as error rate 0.
    """

    def __init__(self, window: float = 5.0,
                 clock: Callable[[], float] = time.monotonic):
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = window
        self._clock = clock
        self._lock = threading.Lock()
        self._events: Deque[Tuple[float, bool]] = deque()

    def record(self, ok: bool) -> None:
        now = self._clock()
        with self._lock:
            self._events.append((now, bool(ok)))
            self._prune(now)

    def _prune(self, now: float) -> None:  # repro: locked[_lock]
        while self._events and now - self._events[0][0] > self.window:
            self._events.popleft()

    def snapshot(self) -> HealthSnapshot:
        now = self._clock()
        with self._lock:
            self._prune(now)
            samples = len(self._events)
            failures = sum(1 for _, ok in self._events if not ok)
        return HealthSnapshot(samples=samples, failures=failures)


@dataclass(frozen=True)
class DegradationPolicy:
    """Thresholds of the health-driven degradation ladder.

    The ladder trades result quality for survival, one rung at a time, as
    the windowed error rate climbs (evaluated only once ``min_samples``
    outcomes are in the window, so a single early failure cannot degrade an
    idle server):

    * **level 1** (``shed_at``) — stop coalescing: smaller blast radius per
      batch, full byte-parity semantics;
    * **level 2** (``reduce_probe_at``) — halve every IVF index's
      ``n_probe`` (``probe_factor``): cheaper retrieval, slightly lower
      recall; restored automatically when the ladder drops back below 2;
    * **level 3** (``reject_at``) — suspend admission with a structured
      ``overloaded`` error until the window drains.
    """

    window: float = 5.0
    min_samples: int = 50
    shed_at: float = 0.10
    reduce_probe_at: float = 0.25
    reject_at: float = 0.50
    probe_factor: float = 0.5

    def __post_init__(self):
        if not 0.0 < self.shed_at <= self.reduce_probe_at <= self.reject_at <= 1.0:
            raise ValueError(
                "thresholds must satisfy 0 < shed_at <= reduce_probe_at "
                "<= reject_at <= 1")
        if self.min_samples < 1:
            raise ValueError("min_samples must be positive")
        if not 0.0 < self.probe_factor <= 1.0:
            raise ValueError("probe_factor must be in (0, 1]")

    def level_for(self, health: HealthSnapshot) -> int:
        if health.samples < self.min_samples:
            return 0
        rate = health.error_rate
        if rate >= self.reject_at:
            return 3
        if rate >= self.reduce_probe_at:
            return 2
        if rate >= self.shed_at:
            return 1
        return 0


# --------------------------------------------------------------------------- #
# Process-pool worker (module level: must be picklable by reference)
# --------------------------------------------------------------------------- #
_PROCESS_REGISTRIES: Dict[str, Any] = {}


def _process_execute(checkpoint: str, head_name: str, requests: Tuple,
                     max_batch_size: int) -> List:
    """Answer one micro-batch inside a pool process.

    The checkpoint is loaded once per (process, path) and cached; request
    objects and results are plain dataclasses/floats/arrays, so only small
    self-contained values cross the process boundary.  Stored-history state
    never reaches this function — stateful traffic executes inline in the
    parent, whose write-log replay keeps the parent store authoritative.
    """
    from repro.serving.registry import ModelRegistry

    registry = _PROCESS_REGISTRIES.get(checkpoint)
    if registry is None:
        registry = ModelRegistry()
        registry.load("worker", checkpoint)
        _PROCESS_REGISTRIES[checkpoint] = registry
    entry = registry.get("worker")
    head = default_heads().get(head_name)
    batcher = entry.batcher(max_batch_size=max_batch_size, head=head_name)
    return head.execute(batcher, list(requests))


# --------------------------------------------------------------------------- #
# The concurrent router
# --------------------------------------------------------------------------- #
class ConcurrentServingRouter(ServingRouter):
    """Dispatch (model, head) micro-batches from a stream to a worker pool.

    Parameters (beyond :class:`ServingRouter`)
    ------------------------------------------
    workers:
        Worker threads (and, for process-mode models, worker processes).
    max_inflight:
        Admission-control budget: envelopes admitted but not yet answered.
        Submissions beyond it raise a structured ``overloaded``
        :class:`ProtocolError` (the backpressure signal).  ``None`` derives
        ``32 × workers``.
    timeout:
        Per-envelope deadline in seconds, measured from admission.  Expired
        envelopes are answered with a structured ``timeout`` error by
        :meth:`sweep_timeouts` / :meth:`drain`; the worker's late result is
        discarded.  ``None`` never expires.
    coalesce:
        Merge consecutive stateless same-(model, head) envelopes into shared
        micro-batches (see the module docstring for the parity trade).
    linger:
        Maximum seconds a coalesced batch may wait for company before it is
        flushed undersized.
    executors:
        Per-model executor kind: ``{"model_name": "thread" | "process"}``.
        Process-mode models must have been loaded from a checkpoint (the
        pool worker reloads it); heads outside :data:`PROCESS_SAFE_HEADS`
        stay on the thread pool.
    retry:
        Retry retryable unit failures (:func:`is_retryable`: injected
        retryable faults, :class:`TransientFault` from a restarted process
        pool) with this policy's backoff before emitting a structured
        ``retryable`` error.  Safe because all durable state is written
        ahead idempotently (WAL appends carry final fingerprints keyed by
        sequence number) — re-running a unit cannot double-apply anything.
        ``None`` disables retries.
    quarantine_after:
        After this many ``execution`` failures of the *same* (head,
        payloads) request body, further submissions of that body are
        rejected at admission — a poison request cannot grind the ladder
        down forever.  ``None`` disables quarantine.
    degradation:
        The health-driven :class:`DegradationPolicy` (default: on with
        stock thresholds; pass ``None`` to disable).  See the policy
        docstring for the ladder.
    injector:
        The :class:`FaultInjector` consulted at the runtime's named sites
        (``"executor.unit"``).  Defaults to the always-quiet
        :data:`NULL_INJECTOR`.
    max_pool_restarts:
        How many times a crashed process pool is rebuilt before its
        failures stop being retryable.

    Thread contract: :meth:`submit`, :meth:`drain` and :meth:`close` are
    called from one dispatcher thread (the stream loop); completions arrive
    on worker threads and must synchronise anything they touch — the
    provided ``on_done`` callbacks and :class:`ServeSummary` do.
    """

    def __init__(
        self,
        registry,
        default_model: Optional[str] = None,
        heads: Optional[HeadRegistry] = None,
        max_batch_size: int = 256,
        defaults: ServeDefaults = ServeDefaults(),
        workers: int = 2,
        max_inflight: Optional[int] = None,
        timeout: Optional[float] = None,
        coalesce: bool = False,
        linger: float = 0.002,
        executors: Optional[Dict[str, str]] = None,
        retry: Optional[RetryPolicy] = None,
        quarantine_after: Optional[int] = 3,
        degradation: Optional[DegradationPolicy] = DegradationPolicy(),
        injector: FaultInjector = NULL_INJECTOR,
        max_pool_restarts: int = 2,
    ):
        super().__init__(registry, default_model=default_model, heads=heads,
                         max_batch_size=max_batch_size, defaults=defaults)
        if workers < 1:
            raise ValueError("workers must be positive")
        if max_inflight is not None and max_inflight < 1:
            raise ValueError("max_inflight must be positive (or None)")
        if timeout is not None and timeout <= 0:
            raise ValueError("timeout must be positive (or None)")
        if linger <= 0:
            raise ValueError("linger must be positive")
        if quarantine_after is not None and quarantine_after < 1:
            raise ValueError("quarantine_after must be positive (or None)")
        if max_pool_restarts < 0:
            raise ValueError("max_pool_restarts must be non-negative")
        self.workers = workers
        self.max_inflight = max_inflight if max_inflight is not None else 32 * workers
        self.timeout = timeout
        self.coalesce = coalesce
        self.linger = linger
        self.executors = dict(executors) if executors else {}
        for model_name, kind in self.executors.items():
            if kind not in ("thread", "process"):
                raise ValueError(
                    f"executor for model {model_name!r} must be 'thread' or "
                    f"'process', got {kind!r}"
                )
            if kind == "process" and registry.get(model_name).source is None:
                raise ValueError(
                    f"model {model_name!r} cannot use the process pool: it was "
                    "registered in memory, not loaded from a checkpoint the "
                    "pool workers could reload"
                )
        self._thread_pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="serve-worker")
        self._process_pool: Optional[ProcessPoolExecutor] = None
        self._pending: set = set()
        self._pending_lock = threading.Lock()
        self._idle: Dict[Tuple[str, str], List[Tuple[Any, Any, Any]]] = {}
        self._idle_lock = threading.Lock()
        self._groups: Dict[Tuple[str, str], _Group] = {}
        self._groups_lock = threading.Lock()
        #: Line-ordered (store, user_id, history) writes of admitted async
        #: envelopes, replayed at barriers (dispatcher-thread only).
        self._write_log: List[Tuple[Any, int, Tuple[int, ...]]] = []
        self.retry = retry
        self.quarantine_after = quarantine_after
        self.degradation = degradation
        self.injector = injector
        self.max_pool_restarts = max_pool_restarts
        self.health = HealthMonitor(
            window=degradation.window if degradation is not None else 5.0)
        self._level = 0  # current degradation rung (dispatcher-thread only)
        self._probe_saved: List[Tuple[Any, int]] = []  # (searcher, original n_probe)
        self._quarantine: Dict[Tuple[str, str], int] = {}
        self._quarantine_lock = threading.Lock()
        self._pool_restarts = 0
        self._closed = False
        self._flusher: Optional[threading.Thread] = None
        if coalesce:
            self._flusher = threading.Thread(
                target=self._flush_expired_forever, name="serve-flusher",
                daemon=True)
            self._flusher.start()

    # ------------------------------------------------------------------ #
    # Submission (dispatcher thread)
    # ------------------------------------------------------------------ #
    def submit(self, envelope: Envelope, line_number: int,
               on_done: CompletionFn) -> None:
        """Admit one envelope; ``on_done`` fires exactly once, now or later.

        Raises :class:`ProtocolError` (unknown head/model, bad payloads,
        ``overloaded``) and the execution errors of inline stateful work —
        in those cases ``on_done`` is *not* called and the caller renders
        the error, exactly as the serial loop does.
        """
        head = self.heads.get(envelope.head)
        if head.wants_router:
            # Introspection heads (``status``) answer from the router itself,
            # inline on the dispatcher — no admission, no workers.
            response, rows, _ = ServingRouter.execute(self, envelope)
            on_done(line_number, envelope, response, rows, None)
            return
        name = envelope.model if envelope.model is not None else self.default_model
        if name is None:
            raise ProtocolError(
                ERR_UNKNOWN_MODEL,
                "the envelope names no model and the router has no default",
            )
        try:
            entry = self.registry.get(name)
        except KeyError as error:
            raise ProtocolError(ERR_UNKNOWN_MODEL, str(error.args[0])) from None
        head.validate_entry(entry)
        requests = self.parse_requests(head, envelope)
        self._check_quarantine(head, envelope)

        level = self.degradation_level()
        self._apply_degradation(level)
        self._level = level
        if level >= 3:
            raise ProtocolError(
                ERR_OVERLOADED,
                f"server degraded to level {level}: windowed error rate over "
                f"{self.degradation.reject_at:.0%}; admission suspended, "
                "retry later",
            )

        if self._stateful(head, requests):
            # Sequential consistency for server-side state: finish everything
            # admitted before this line, apply it inline, then resume.  The
            # dispatcher blocks, so nothing later can overtake it either.
            self.drain()
            response, rows, _ = ServingRouter.execute(self, envelope)
            on_done(line_number, envelope, response, rows, None)
            return

        with self._pending_lock:
            if len(self._pending) >= self.max_inflight:
                raise ProtocolError(
                    ERR_OVERLOADED,
                    f"server over capacity: {len(self._pending)} requests in "
                    f"flight (max_inflight={self.max_inflight}); retry later",
                )
            deadline = (self._now() + self.timeout
                        if self.timeout is not None else None)
            pending = _Pending(line_number, envelope, head, requests,
                               deadline, on_done)
            self._pending.add(pending)

        for request in requests:
            history = getattr(request, "history", None)
            if history is not None and getattr(request, "user_id", -1) >= 0:
                self._write_log.append(
                    (entry.sequence_store, request.user_id, tuple(history)))
        key = (name, head.name)
        if self.coalesce and level < 1:
            self._enqueue_group(key, pending)
        else:
            self._thread_pool.submit(self._run_unit, key, [pending])

    def _stateful(self, head: Head, requests: Sequence) -> bool:
        """Whether executing these requests depends on (or is) a state write.

        The ``update`` head writes; a request resolving its history from the
        server-side sequence (``history=None`` with a real ``user_id``)
        reads.  Both must see — and be seen by — the stream in order.
        Explicit-history requests also *seed* the store, but their own
        results never depend on it, so they stay concurrent.
        """
        if head.name == "update":
            return True
        return any(
            getattr(request, "history", ()) is None
            and getattr(request, "user_id", -1) >= 0
            for request in requests
        )

    @staticmethod
    def _now() -> float:
        return time.monotonic()

    # ------------------------------------------------------------------ #
    # Quarantine (poison-request isolation)
    # ------------------------------------------------------------------ #
    @staticmethod
    def _quarantine_key(head: Head, envelope: Envelope) -> Tuple[str, str]:
        """A stable identity for one request body: (head, canonical payloads)."""
        return (head.name, json.dumps(envelope.payloads, sort_keys=True,
                                      separators=(",", ":"), default=str))

    def _check_quarantine(self, head: Head, envelope: Envelope) -> None:
        if self.quarantine_after is None:
            return
        with self._quarantine_lock:
            if not self._quarantine:  # fast path: nothing ever poisoned
                return
            count = self._quarantine.get(self._quarantine_key(head, envelope), 0)
        if count >= self.quarantine_after:
            raise ProtocolError(
                ERR_EXECUTION,
                f"request quarantined after {count} execution failures; "
                "fix the request body before resubmitting",
            )

    def _note_poison(self, head: Head, envelope: Envelope) -> None:
        """Count one execution failure against this request body."""
        if self.quarantine_after is None:
            return
        key = self._quarantine_key(head, envelope)
        with self._quarantine_lock:
            if len(self._quarantine) < 1024 or key in self._quarantine:
                self._quarantine[key] = self._quarantine.get(key, 0) + 1

    # ------------------------------------------------------------------ #
    # The degradation ladder
    # ------------------------------------------------------------------ #
    def degradation_level(self) -> int:
        """The ladder rung the current health window maps to (0 = healthy)."""
        if self.degradation is None:
            return 0
        return self.degradation.level_for(self.health.snapshot())

    def _apply_degradation(self, level: int) -> None:
        """Apply/undo level-2 retrieval cheapening (dispatcher thread only).

        Level 1 (shed coalescing) and level 3 (admission reject) act at the
        submission site; level 2 mutates every IVF searcher's ``n_probe``
        and must restore the saved originals on the way back down.
        """
        if level >= 2 and not self._probe_saved:
            for model_name in self.registry.names():
                retriever = self.registry.get(model_name).retriever
                searcher = getattr(retriever, "searcher", None)
                probe = getattr(searcher, "n_probe", None)
                if probe is None or probe <= 1:
                    continue
                self._probe_saved.append((searcher, probe))
                searcher.n_probe = max(1, int(probe * self.degradation.probe_factor))
        elif level < 2 and self._probe_saved:
            saved, self._probe_saved = self._probe_saved, []
            for searcher, probe in saved:
                searcher.n_probe = probe

    # ------------------------------------------------------------------ #
    # Coalescing groups
    # ------------------------------------------------------------------ #
    def _enqueue_group(self, key: Tuple[str, str], pending: _Pending) -> None:
        flush: Optional[List[_Pending]] = None
        with self._groups_lock:
            group = self._groups.get(key)
            if group is None:
                group = self._groups[key] = _Group(created=self._now())
            group.items.append(pending)
            group.size += len(pending.requests)
            if group.size >= self.max_batch_size:
                flush = self._groups.pop(key).items
        if flush:
            self._thread_pool.submit(self._run_unit, key, flush)

    def _flush_groups(self, only_expired: bool = False) -> None:
        now = self._now()
        with self._groups_lock:
            keys = [key for key, group in self._groups.items()
                    if not only_expired or now - group.created >= self.linger]
            flushes = [(key, self._groups.pop(key).items) for key in keys]
        for key, items in flushes:
            self._thread_pool.submit(self._run_unit, key, items)

    def _flush_expired_forever(self) -> None:
        interval = max(self.linger / 2.0, 1e-3)
        while not self._closed:
            time.sleep(interval)
            self._flush_groups(only_expired=True)

    # ------------------------------------------------------------------ #
    # Worker-side execution
    # ------------------------------------------------------------------ #
    def _run_unit(self, key: Tuple[str, str], items: List[_Pending],
                  attempt: int = 1) -> None:
        """Execute one (model, head) micro-batch on a worker thread.

        Retryable failures (:func:`is_retryable`) re-run the unit under the
        configured :class:`RetryPolicy` backoff — safe, because the WAL's
        idempotent write-ahead records mean a re-run cannot double-apply
        state.  Exhausted retries answer with a structured ``retryable``
        error so clients know a later resubmission may succeed.
        """
        try:
            results = self._execute_requests(
                key, [request for item in items for request in item.requests])
        except Exception as error:  # noqa: BLE001 — must answer, not crash
            if (self.retry is not None and is_retryable(error)
                    and attempt < self.retry.max_attempts):
                time.sleep(self.retry.backoff(attempt))
                self._run_unit(key, items, attempt=attempt + 1)
                return
            if len(items) > 1:
                # Isolate the failure: a poisoned request in a coalesced
                # batch must not take its neighbours down with it.
                for item in items:
                    self._run_unit(key, [item])
                return
            pending = items[0]
            if isinstance(error, ProtocolError):
                code = error.code
            elif is_retryable(error):
                code = ERR_RETRYABLE
            else:
                code = ERR_EXECUTION
                self._note_poison(pending.head, pending.envelope)
            self._complete(pending, error_response(
                code, str(error), line=pending.line,
                request_id=pending.envelope.request_id), 0, code)
            return
        offset = 0
        for pending in items:
            slice_ = results[offset:offset + len(pending.requests)]
            offset += len(pending.requests)
            response = render_response(pending.envelope, pending.head, slice_)
            self._complete(pending, response, pending.head.rows(slice_), None)

    def _execute_requests(self, key: Tuple[str, str], requests: List) -> List:
        name, head_name = key
        self.injector.hit("executor.unit", context=f"{name}:{head_name}")
        entry = self.registry.get(name)
        head = self.heads.get(head_name)
        if self.executors.get(name) == "process" and head_name in PROCESS_SAFE_HEADS:
            pool = self._ensure_process_pool()
            try:
                future = pool.submit(_process_execute, str(entry.source),
                                     head_name, tuple(requests),
                                     self.max_batch_size)
                return future.result()
            except BrokenProcessPool:
                # A worker process died (OOM kill, segfault, hard crash).
                # Rebuild the pool — bounded, so a deterministic crasher
                # cannot restart forever — and surface a retryable fault:
                # nothing was mutated, the unit is safe to re-run.
                if self._restart_process_pool():
                    raise TransientFault(
                        f"worker process pool crashed executing "
                        f"{name}:{head_name}; pool restarted "
                        f"({self._pool_restarts}/{self.max_pool_restarts})"
                    ) from None
                raise
        lease = self._borrow(key, entry)
        try:
            return head.execute(lease, requests)
        finally:
            self._release(key, entry, lease)

    def _ensure_process_pool(self) -> Executor:
        with self._idle_lock:
            if self._process_pool is None:
                self._process_pool = ProcessPoolExecutor(max_workers=self.workers)
            return self._process_pool

    def _restart_process_pool(self) -> bool:
        """Tear down and rebuild a crashed process pool (bounded).

        Returns whether a restart was performed; ``False`` once the budget
        (``max_pool_restarts``) is spent, at which point the broken pool's
        failures propagate non-retryably.
        """
        with self._idle_lock:
            if self._pool_restarts >= self.max_pool_restarts:
                return False
            self._pool_restarts += 1
            broken, self._process_pool = self._process_pool, None
        if broken is not None:
            broken.shutdown(wait=False, cancel_futures=True)
        return True

    def _borrow(self, key: Tuple[str, str], entry):
        """A micro-batcher for this (model, head), reused across units.

        Workers never share a batcher (its queue and stats are not
        synchronised); instead each borrows one from a freshness-checked
        idle pool — a cached batcher built against a replaced entry or a
        swapped retrieval pipeline is discarded, exactly like the serial
        router's cache.
        """
        with self._idle_lock:
            idle = self._idle.get(key, [])
            while idle:
                cached_entry, cached_retriever, batcher = idle.pop()
                if cached_entry is entry and cached_retriever is entry.retriever:
                    return batcher
        return entry.batcher(max_batch_size=self.max_batch_size,
                             head=key[1], heads=self.heads)

    def _release(self, key: Tuple[str, str], entry, batcher) -> None:
        with self._idle_lock:
            idle = self._idle.setdefault(key, [])
            if len(idle) < 2 * self.workers:
                idle.append((entry, entry.retriever, batcher))

    # ------------------------------------------------------------------ #
    # Completion, deadlines, draining
    # ------------------------------------------------------------------ #
    def _complete(self, pending: _Pending, response: dict, rows: int,
                  code: Optional[str]) -> None:
        if pending.claim():
            self.health.record(code is None)
            try:
                pending.on_done(pending.line, pending.envelope, response,
                                rows, code)
            finally:
                with self._pending_lock:
                    self._pending.discard(pending)
                pending.event.set()

    def inflight(self) -> int:
        """Envelopes admitted but not yet answered (the admission currency)."""
        with self._pending_lock:
            return len(self._pending)

    def sweep_timeouts(self) -> int:
        """Answer every deadline-expired envelope with a ``timeout`` error."""
        if self.timeout is None:
            return 0
        now = self._now()
        with self._pending_lock:
            expired = [pending for pending in self._pending
                       if pending.deadline is not None and now > pending.deadline]
        for pending in expired:
            self._timeout_pending(pending)
        return len(expired)

    def _timeout_pending(self, pending: _Pending) -> None:
        self._complete(pending, error_response(
            ERR_TIMEOUT,
            f"request did not complete within {self.timeout:.3f}s",
            line=pending.line, request_id=pending.envelope.request_id),
            0, ERR_TIMEOUT)

    def drain(self) -> None:
        """Flush buffered batches and wait until nothing is in flight.

        With a ``timeout`` configured the wait is bounded: any envelope
        still unanswered at its deadline is resolved as a structured
        ``timeout`` error and its worker's eventual result discarded — the
        stream finishes even if a worker is stuck.

        Once quiet, the dispatcher's line-ordered write log is replayed into
        the sequence stores: workers encode explicit histories in completion
        order, so the replay restores the serial path's last-writer-wins
        ordering before any barrier-gated stored-history read (and before
        the stream's final state is observed).
        """
        self._flush_groups()
        while True:
            with self._pending_lock:
                pending = next(iter(self._pending), None)
            if pending is None:
                break
            if pending.deadline is None:
                pending.event.wait()
            else:
                remaining = pending.deadline - self._now()
                if remaining > 0:
                    pending.event.wait(remaining)
                if not pending.event.is_set():
                    self._timeout_pending(pending)
        log, self._write_log = self._write_log, []
        for store, user_id, history in log:
            store.encode(user_id, history)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def status_payload(self) -> dict:
        """The serial payload plus a ``runtime`` block for this router."""
        payload = ServingRouter.status_payload(self)
        health = self.health.snapshot()
        with self._quarantine_lock:
            quarantined = sum(
                1 for count in self._quarantine.values()
                if self.quarantine_after is not None
                and count >= self.quarantine_after)
        with self._idle_lock:
            pool_restarts = self._pool_restarts
        payload["runtime"] = {
            "workers": self.workers,
            "inflight": self.inflight(),
            "max_inflight": self.max_inflight,
            "coalesce": self.coalesce,
            "degradation_level": self._level,
            "health": {
                "samples": health.samples,
                "failures": health.failures,
                "error_rate": health.error_rate,
                "window": self.health.window,
            },
            "quarantined": quarantined,
            "pool_restarts": pool_restarts,
            "retry": (
                {"max_attempts": self.retry.max_attempts,
                 "base_delay": self.retry.base_delay,
                 "max_delay": self.retry.max_delay}
                if self.retry is not None else None),
        }
        return payload

    def close(self) -> None:
        """Shut the pools down; queued-but-unstarted work is cancelled."""
        self._closed = True
        if self._flusher is not None:
            self._flusher.join(timeout=max(self.linger * 4, 0.05))
        self._thread_pool.shutdown(wait=False, cancel_futures=True)
        with self._idle_lock:
            process_pool, self._process_pool = self._process_pool, None
        if process_pool is not None:
            process_pool.shutdown(wait=False, cancel_futures=True)


# --------------------------------------------------------------------------- #
# Streaming front-end
# --------------------------------------------------------------------------- #
def serve_concurrent_jsonl(
    registry,
    name: str,
    input_stream: IO[str],
    output_stream: IO[str],
    head: str = "score",
    max_batch_size: int = 256,
    k: Optional[int] = None,
    n_retrieve: Optional[int] = None,
    heads: Optional[HeadRegistry] = None,
    workers: int = 2,
    max_inflight: Optional[int] = None,
    timeout: Optional[float] = None,
    coalesce: bool = False,
    linger: float = 0.002,
    executors: Optional[Dict[str, str]] = None,
    retry: Optional[RetryPolicy] = None,
    quarantine_after: Optional[int] = 3,
    degradation: Optional[DegradationPolicy] = DegradationPolicy(),
    injector: FaultInjector = NULL_INJECTOR,
) -> ServeSummary:
    """Serve JSONL requests through the concurrent router until EOF.

    The concurrent sibling of :func:`repro.serving.service.serve_jsonl` —
    same wire protocol, same structured errors, same summary — with
    responses written in **completion order** (each response carries its
    envelope ``id``, error lines their input line number, so clients
    correlate instead of counting).  Overloaded and timed-out lines get
    ``overloaded`` / ``timeout`` error responses and are counted per code in
    the returned :class:`ServeSummary` exactly like every other failure.
    """
    router = ConcurrentServingRouter(
        registry, default_model=name,
        heads=heads if heads is not None else default_heads(),
        max_batch_size=max_batch_size,
        defaults=ServeDefaults(k=k, n_retrieve=n_retrieve),
        workers=workers, max_inflight=max_inflight, timeout=timeout,
        coalesce=coalesce, linger=linger, executors=executors,
        retry=retry, quarantine_after=quarantine_after,
        degradation=degradation, injector=injector,
    )
    # Fail fast on an unservable default route, exactly like the serial loop.
    if not router.heads.get(head).wants_router:
        router.batcher_for(name, head)
    summary = ServeSummary()
    router.summary = summary
    write_lock = threading.Lock()

    def emit(body: dict) -> None:
        with write_lock:
            output_stream.write(json.dumps(body) + "\n")
            output_stream.flush()

    def on_done(line_number: int, envelope: Envelope, response: dict,
                rows: int, code: Optional[str]) -> None:
        if code is None:
            summary.record_rows(rows)
        else:
            summary.record_error(code)
        emit(response)

    try:
        for line_number, raw_line in enumerate(input_stream, start=1):
            line = raw_line.strip()
            if not line:
                continue
            summary.record_line()
            router.sweep_timeouts()
            envelope: Optional[Envelope] = None
            try:
                try:
                    document = json.loads(line)
                except ValueError as error:
                    raise ProtocolError(ERR_BAD_JSON,
                                        f"invalid JSON: {error}") from None
                envelope = parse_envelope(document, default_head=head,
                                          default_model=name)
                router.submit(envelope, line_number, on_done)
            except ProtocolError as error:
                summary.record_error(error.code)
                emit(_error_body(error.code, str(error), line_number, envelope))
            except (ValueError, KeyError, TypeError, IndexError, RuntimeError) as error:
                summary.record_error(ERR_EXECUTION)
                emit(_error_body(ERR_EXECUTION, str(error), line_number, envelope))
        router.drain()
    finally:
        router.close()
    return summary


def _error_body(code: str, message: str, line_number: int,
                envelope: Optional[Envelope]) -> dict:
    request_id = envelope.request_id if envelope is not None else None
    return error_response(code, message, line=line_number, request_id=request_id)
