"""Model registry: named, checkpoint-backed models with task endpoints.

The registry is the front door of the serving runtime.  It loads SeqFM
checkpoints written by :func:`repro.core.serialization.save_seqfm` (which
embed their own configuration, so no side-channel is needed), wraps each model
in an :class:`~repro.serving.engine.InferenceEngine`, and exposes the three
task endpoints of the paper — ``rank`` / ``classify`` / ``regress`` —
mirroring the task heads in :mod:`repro.core.tasks`:

* :meth:`ModelRegistry.rank` — raw scores, higher = better candidate
  (what :class:`~repro.core.tasks.RankingTask` sorts by);
* :meth:`ModelRegistry.classify` — sigmoid click probabilities
  (:meth:`~repro.core.tasks.ClassificationTask.predict_probability`);
* :meth:`ModelRegistry.regress` — predicted ratings
  (:class:`~repro.core.tasks.RegressionTask` predictions);
* :meth:`ModelRegistry.rank_topk` — top-K over a candidate list through the
  candidate-deduplicated ranking fast path
  (:meth:`~repro.serving.engine.InferenceEngine.rank_candidates`).

Reloading a checkpoint into an existing name swaps the weights in place; the
engine reads parameters by reference, so in-flight handles keep working.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.core.model import SeqFM
from repro.core.serialization import load_seqfm, save_seqfm
from repro.data.features import FeatureBatch
from repro.serving.batcher import MicroBatcher, RankedCandidates, RankRequest, ScoreRequest
from repro.serving.cache import UserSequenceStore
from repro.serving.engine import InferenceEngine

PathLike = Union[str, Path]


@dataclass
class RegisteredModel:
    """A named model with its engine and serving infrastructure."""

    name: str
    model: SeqFM
    engine: InferenceEngine
    sequence_store: UserSequenceStore
    source: Optional[Path] = None

    def batcher(self, max_batch_size: int = 256, head: str = "score") -> MicroBatcher:
        """Build a micro-batcher bound to one of the engine's endpoints.

        Every batcher also carries the engine's **rank head**
        (``MicroBatcher.rank``/``rank_all``): whole candidate lists evaluated
        through the candidate-deduplicated ranking fast path
        (:meth:`~repro.serving.engine.InferenceEngine.rank_candidates`),
        sharing this model's user-sequence store with the scoring heads.
        """
        score_fn = {
            "score": self.engine.score,
            "rank": self.engine.score,
            "rank-topk": self.engine.score,
            "classify": self.engine.classify,
            "regress": self.engine.regress,
        }.get(head)
        if score_fn is None:
            raise ValueError(
                f"unknown head {head!r}; expected score/rank/rank-topk/classify/regress"
            )
        return MicroBatcher(
            score_fn,
            max_batch_size=max_batch_size,
            max_seq_len=self.model.config.max_seq_len,
            sequence_store=self.sequence_store,
            rank_fn=self.engine.rank_topk,
        )


class ModelRegistry:
    """Keep trained models addressable by name and serve the task endpoints.

    Parameters
    ----------
    cache_capacity:
        Capacity of the per-model :class:`UserSequenceStore` (number of users
        whose encoded histories stay resident).
    """

    def __init__(self, cache_capacity: int = 4096):
        self.cache_capacity = cache_capacity
        self._entries: Dict[str, RegisteredModel] = {}

    # ------------------------------------------------------------------ #
    # Registration / persistence
    # ------------------------------------------------------------------ #
    def register(self, name: str, model: SeqFM, source: Optional[Path] = None) -> RegisteredModel:
        """Register an in-memory model under ``name`` (replacing any holder)."""
        entry = RegisteredModel(
            name=name,
            model=model,
            engine=InferenceEngine(model),
            sequence_store=UserSequenceStore(
                model.config.max_seq_len, capacity=self.cache_capacity
            ),
            source=Path(source) if source is not None else None,
        )
        self._entries[name] = entry
        return entry

    def load(self, name: str, path: PathLike) -> RegisteredModel:
        """Load a self-describing SeqFM checkpoint and register it.

        Loading into an existing name whose model has the same architecture
        hot-swaps the weights in place (the engine and caches survive).
        """
        path = Path(path)
        fresh = load_seqfm(path)
        existing = self._entries.get(name)
        if existing is not None and existing.model.config == fresh.config:
            existing.model.load_state_dict(fresh.state_dict())
            existing.source = path
            return existing
        return self.register(name, fresh, source=path)

    def save(self, name: str, path: PathLike) -> Path:
        """Checkpoint a registered model via :func:`save_seqfm`."""
        entry = self.get(name)
        save_seqfm(entry.model, path)
        return Path(path)

    def unregister(self, name: str) -> None:
        self._entries.pop(name, None)

    def get(self, name: str) -> RegisteredModel:
        if name not in self._entries:
            raise KeyError(
                f"no model registered as {name!r}; available: {sorted(self._entries)}"
            )
        return self._entries[name]

    def names(self) -> List[str]:
        return sorted(self._entries)

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------ #
    # Task endpoints (mirror repro.core.tasks)
    # ------------------------------------------------------------------ #
    def rank(self, name: str, batch: FeatureBatch) -> np.ndarray:
        """Raw candidate scores; sort descending to rank (RankingTask)."""
        return self.get(name).engine.score(batch)

    def classify(self, name: str, batch: FeatureBatch) -> np.ndarray:
        """Click probabilities σ(ŷ) (ClassificationTask.predict_probability)."""
        return self.get(name).engine.classify(batch)

    def regress(self, name: str, batch: FeatureBatch) -> np.ndarray:
        """Predicted ratings (RegressionTask predictions)."""
        return self.get(name).engine.regress(batch)

    def rank_requests(
        self, name: str, requests: List[ScoreRequest], max_batch_size: int = 256
    ) -> np.ndarray:
        """Micro-batched raw scores for a list of requests, in request order."""
        return self.get(name).batcher(max_batch_size, head="score").score_all(requests)

    def rank_topk(
        self,
        name: str,
        static_profile: Sequence[int],
        candidates: Sequence[int],
        k: int,
        history: Sequence[int] = (),
        user_id: int = -1,
    ) -> RankedCandidates:
        """Top-k candidates for one user through the ranking fast path.

        ``static_profile``/``candidates``/``history`` are model-vocabulary
        indices (the mapping from raw ids is
        :meth:`repro.data.features.FeatureEncoder.encode_candidates`).  The
        user's history encoding is cached in the model's sequence store when
        ``user_id ≥ 0``.  Returns candidates and raw scores, best first.
        """
        request = RankRequest(
            static_indices=static_profile,
            candidates=candidates,
            history=history,
            user_id=user_id,
        )
        return self.get(name).batcher(head="rank").rank(request, k)
