"""Model registry: named, checkpoint-backed models with task endpoints.

The registry is the front door of the serving runtime.  It loads SeqFM
checkpoints written by :func:`repro.core.serialization.save_seqfm` (which
embed their own configuration, so no side-channel is needed), wraps each model
in an :class:`~repro.serving.engine.InferenceEngine`, and exposes the three
task endpoints of the paper — ``rank`` / ``classify`` / ``regress`` —
mirroring the task heads in :mod:`repro.core.tasks`:

* :meth:`ModelRegistry.rank` — raw scores, higher = better candidate
  (what :class:`~repro.core.tasks.RankingTask` sorts by);
* :meth:`ModelRegistry.classify` — sigmoid click probabilities
  (:meth:`~repro.core.tasks.ClassificationTask.predict_probability`);
* :meth:`ModelRegistry.regress` — predicted ratings
  (:class:`~repro.core.tasks.RegressionTask` predictions);
* :meth:`ModelRegistry.rank_topk` — top-K over a candidate list through the
  candidate-deduplicated ranking fast path
  (:meth:`~repro.serving.engine.InferenceEngine.rank_candidates`);
* :meth:`ModelRegistry.recommend` — top-K over the *whole catalog* through the
  two-stage retrieve → rank pipeline (:mod:`repro.retrieval`), after an item
  index is built (:meth:`ModelRegistry.build_index`) or loaded from disk
  (:meth:`ModelRegistry.load_index`).

Reloading a checkpoint into an existing name swaps the weights in place; the
engine reads parameters by reference, so in-flight handles keep working.
Registering or architecture-replacing over an existing name requires
``overwrite=True`` — silent replacement is an error, not a default.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.core.model import SeqFM
from repro.core.serialization import load_seqfm, save_seqfm
from repro.data.features import FeatureBatch
from repro.serving.batcher import (
    MicroBatcher,
    RankedCandidates,
    RankRequest,
    RecommendRequest,
    ScoreRequest,
)
from repro.serving.cache import ShardedUserSequenceStore, UserSequenceStore
from repro.serving.engine import InferenceEngine

if TYPE_CHECKING:  # pragma: no cover — import cycle: retrieval imports the engine
    from repro.online.promotion import ModelLineage
    from repro.retrieval.index import ItemIndex
    from repro.retrieval.pipeline import RetrievePipeline
    from repro.serving.protocol import HeadRegistry

PathLike = Union[str, Path]


class OrphanedIndexWarning(UserWarning):
    """A same-config hot-swap dropped the model's attached item index.

    The index is a *snapshot* of the old weights, so serving it against the
    new ones would silently degrade retrieval quality; the registry drops it
    instead and emits this structured warning.  The promotion path avoids
    the orphaning entirely by passing ``rebuild_index=True`` to
    :meth:`ModelRegistry.load` (or calling
    :meth:`ModelRegistry.rebuild_index` afterwards).
    """


@dataclass
class RegisteredModel:
    """A named model with its engine and serving infrastructure."""

    name: str
    model: SeqFM
    engine: InferenceEngine
    #: Single or sharded store — same surface, chosen by ``cache_shards``.
    sequence_store: Union[UserSequenceStore, ShardedUserSequenceStore]
    source: Optional[Path] = None
    #: Catalog snapshot for two-stage retrieval; attached by
    #: :meth:`ModelRegistry.build_index` / :meth:`ModelRegistry.load_index`.
    index: Optional[ItemIndex] = None
    #: The retrieve → rank pipeline over :attr:`index` (backend-specific).
    retriever: Optional[RetrievePipeline] = None
    #: How :attr:`index` was attached (backend, fan-out, backend options,
    #: build seed) — enough for :meth:`ModelRegistry.rebuild_index` to
    #: re-snapshot the same catalog from the current weights.
    index_spec: Optional[dict] = field(default=None, repr=False)
    #: Version lineage attached by the online promotion pipeline
    #: (:class:`repro.online.promotion.ModelLineage`); surfaced by the
    #: ``status`` head as the ``retrain`` block.
    lineage: Optional[ModelLineage] = field(default=None, repr=False)

    def batcher(self, max_batch_size: int = 256, head: str = "score",
                heads: Optional["HeadRegistry"] = None) -> MicroBatcher:
        """Build a micro-batcher bound to one of the registered serving heads.

        Dispatches through the :class:`~repro.serving.protocol.HeadRegistry`
        (the process default unless ``heads`` is given): the head object
        validates this entry (e.g. ``recommend`` requires an attached item
        index) and picks the engine endpoint its batcher scores through.
        Every batcher also carries the engine's **rank head**
        (``MicroBatcher.rank``/``rank_all``) and — when an item index is
        attached — the **recommend head**
        (``MicroBatcher.recommend``/``recommend_all``), sharing this model's
        user-sequence store across all of them.
        """
        from repro.serving.protocol import default_heads

        registry = heads if heads is not None else default_heads()
        head_obj = registry.get(head)
        head_obj.validate_entry(self)
        return MicroBatcher(
            head_obj.score_fn(self),
            max_batch_size=max_batch_size,
            max_seq_len=self.model.config.max_seq_len,
            sequence_store=self.sequence_store,
            rank_fn=self.engine.rank_topk,
            recommend_fn=(
                self.retriever.retrieve_then_rank if self.retriever is not None else None
            ),
        )


class ModelRegistry:
    """Keep trained models addressable by name and serve the task endpoints.

    Parameters
    ----------
    cache_capacity:
        Capacity of the per-model :class:`UserSequenceStore` (number of users
        whose encoded histories stay resident).
    cache_ttl:
        Optional time-to-live in seconds for stored user sequences — the
        staleness bound for server-side state maintained by the ``update``
        serving head (``None``: never expire).
    cache_shards:
        Number of consistent-hash shards each model's sequence store is
        split over (:class:`ShardedUserSequenceStore`).  ``1`` (the default)
        keeps the single-store layout; higher values reduce lock contention
        under the concurrent serving runtime and make per-shard
        snapshot/restore available.
    """

    def __init__(self, cache_capacity: int = 4096,
                 cache_ttl: Optional[float] = None,
                 cache_shards: int = 1):
        if cache_shards < 1:
            raise ValueError("cache_shards must be positive")
        self.cache_capacity = cache_capacity
        self.cache_ttl = cache_ttl
        self.cache_shards = cache_shards
        self._entries: Dict[str, RegisteredModel] = {}

    def _make_sequence_store(self, max_seq_len: int):
        if self.cache_shards > 1:
            return ShardedUserSequenceStore(
                max_seq_len, capacity=self.cache_capacity, ttl=self.cache_ttl,
                shards=self.cache_shards,
            )
        return UserSequenceStore(max_seq_len, capacity=self.cache_capacity,
                                 ttl=self.cache_ttl)

    # ------------------------------------------------------------------ #
    # Registration / persistence
    # ------------------------------------------------------------------ #
    def register(
        self,
        name: str,
        model: SeqFM,
        source: Optional[Path] = None,
        overwrite: bool = False,
    ) -> RegisteredModel:
        """Register an in-memory model under ``name``.

        Registering over an existing name silently dropping its engine,
        caches and attached index is almost always a deployment mistake, so
        it raises unless ``overwrite=True`` is passed explicitly.
        """
        if name in self._entries and not overwrite:
            raise ValueError(
                f"a model is already registered as {name!r}; pass overwrite=True "
                "to replace it (its engine, caches and item index are dropped), "
                "or load() a checkpoint to hot-swap weights in place"
            )
        entry = RegisteredModel(
            name=name,
            model=model,
            engine=InferenceEngine(model),
            sequence_store=self._make_sequence_store(model.config.max_seq_len),
            source=Path(source) if source is not None else None,
        )
        self._entries[name] = entry
        return entry

    def load(self, name: str, path: PathLike, overwrite: bool = False,
             rebuild_index: bool = False) -> RegisteredModel:
        """Load a self-describing SeqFM checkpoint and register it.

        Loading into an existing name whose model has the **same
        architecture** hot-swaps the weights in place — the engine and caches
        survive; that is the documented reload path and needs no flag.  An
        attached item index snapshots the *old* weights, so a hot-swap either
        rebuilds it from the new weights in the same step
        (``rebuild_index=True``, the promotion path) or drops it and emits an
        :class:`OrphanedIndexWarning` — silent degradation is never an
        option.  Loading a checkpoint with a **different architecture** over
        an existing name replaces the whole entry and requires
        ``overwrite=True``.
        """
        path = Path(path)
        fresh = load_seqfm(path)
        existing = self._entries.get(name)
        if existing is not None and existing.model.config == fresh.config:
            existing.model.load_state_dict(fresh.state_dict())
            existing.source = path
            if existing.index is not None:
                if rebuild_index:
                    self.rebuild_index(name)
                else:
                    existing.index = None
                    existing.retriever = None
                    warnings.warn(OrphanedIndexWarning(
                        f"hot-swapping {name!r} from {path} dropped its "
                        "attached item index (the index snapshots the old "
                        "weights); pass rebuild_index=True or call "
                        "ModelRegistry.rebuild_index() to re-snapshot it"
                    ), stacklevel=2)
            return existing
        if existing is not None and not overwrite:
            raise ValueError(
                f"{path} holds a different architecture than the model registered "
                f"as {name!r}; pass overwrite=True to replace the entry"
            )
        return self.register(name, fresh, source=path, overwrite=overwrite)

    def save(self, name: str, path: PathLike) -> Path:
        """Checkpoint a registered model via :func:`save_seqfm`."""
        entry = self.get(name)
        save_seqfm(entry.model, path)
        return Path(path)

    # ------------------------------------------------------------------ #
    # Item index management (two-stage retrieval)
    # ------------------------------------------------------------------ #
    def build_index(
        self,
        name: str,
        item_ids: Sequence[int],
        num_probes: Optional[int] = None,
        seed: int = 0,
        backend: str = "exact",
        n_retrieve: Optional[int] = None,
        n_partitions: Optional[int] = None,
        **backend_options,
    ) -> ItemIndex:
        """Snapshot ``item_ids`` out of a registered model and attach the index.

        ``item_ids`` are static-vocabulary indices of the catalog (for the
        standard encoder layout, ``range(num_users, num_users + num_objects)``
        — see :class:`repro.data.features.FeatureEncoder`).  The snapshot is
        wrapped in a search backend and a
        :class:`~repro.retrieval.pipeline.RetrievePipeline`, enabling the
        ``recommend`` endpoints.  ``n_partitions`` sets the k-means partition
        count of the snapshot (query calibration for every backend, the
        inverted file for ``"ivf"``) — the catalog is clustered exactly once,
        at that count.  ``backend_options`` go to the backend constructor
        (e.g. ``n_probe`` for ``"ivf"``, ``block_size`` for either).
        """
        from repro.retrieval.index import ItemIndex

        entry = self.get(name)
        index = ItemIndex.from_model(
            entry.model, item_ids, num_probes=num_probes, seed=seed,
            n_partitions=n_partitions,
        )
        attached = self.attach_index(name, index, backend=backend,
                                     n_retrieve=n_retrieve, **backend_options)
        entry.index_spec["seed"] = seed
        return attached

    def attach_index(
        self,
        name: str,
        index: ItemIndex,
        backend: str = "exact",
        n_retrieve: Optional[int] = None,
        **backend_options,
    ) -> ItemIndex:
        """Attach an existing :class:`ItemIndex` and build its pipeline."""
        from repro.retrieval.index import ExactIndex, IVFIndex
        from repro.retrieval.pipeline import RetrievePipeline

        entry = self.get(name)
        if backend == "exact":
            searcher = ExactIndex(index, **backend_options)
        elif backend == "ivf":
            searcher = IVFIndex(index, **backend_options)
        else:
            raise ValueError(f"unknown index backend {backend!r}; expected exact/ivf")
        pipeline_options = {} if n_retrieve is None else {"n_retrieve": n_retrieve}
        previous = entry.index_spec or {}
        entry.index = index
        entry.retriever = RetrievePipeline(entry.engine, searcher, **pipeline_options)
        entry.index_spec = {
            "backend": backend,
            "n_retrieve": n_retrieve,
            "backend_options": dict(backend_options),
            "seed": previous.get("seed", 0),
        }
        return index

    def rebuild_index(self, name: str) -> ItemIndex:
        """Re-snapshot ``name``'s catalog from its *current* weights.

        The promotion-pipeline half of a hot-swap: the attached index keeps
        the same item ids, probe count, partition count, backend and fan-out
        (recorded in :attr:`RegisteredModel.index_spec` at attach time), but
        its vectors are taken from the weights registered *now*.  Raises if
        no index is attached — there is nothing to rebuild from.
        """
        from repro.retrieval.index import ItemIndex

        entry = self.get(name)
        if entry.index is None:
            raise ValueError(
                f"model {name!r} has no item index to rebuild; build one first"
            )
        spec = entry.index_spec or {}
        old = entry.index
        index = ItemIndex.from_model(
            entry.model, old.item_ids,
            num_probes=int(old.probe_positions.shape[0]) or None,
            seed=spec.get("seed", 0),
            n_partitions=old.n_partitions or None,
        )
        return self.attach_index(name, index,
                                 backend=spec.get("backend", "exact"),
                                 n_retrieve=spec.get("n_retrieve"),
                                 **spec.get("backend_options", {}))

    def save_index(self, name: str, path: PathLike) -> Path:
        """Persist a registered model's item index next to its checkpoint."""
        entry = self.get(name)
        if entry.index is None:
            raise ValueError(
                f"model {name!r} has no item index to save; build one first"
            )
        return entry.index.save(path)

    def load_index(
        self,
        name: str,
        path: PathLike,
        backend: str = "exact",
        n_retrieve: Optional[int] = None,
        **backend_options,
    ) -> ItemIndex:
        """Load an :class:`ItemIndex` archive and attach it to ``name``.

        The index must have been built from the *same* weights the registered
        model currently holds — the archive stores a snapshot, not a
        reference, and a mismatched snapshot silently degrades retrieval
        quality; the dimensionality at least is validated here.
        """
        from repro.retrieval.index import ItemIndex

        index = ItemIndex.load(path)
        entry = self.get(name)
        if index.dim != entry.model.config.embed_dim:
            raise ValueError(
                f"index at {path} has embedding dim {index.dim}, model {name!r} "
                f"expects {entry.model.config.embed_dim}"
            )
        return self.attach_index(name, index, backend=backend,
                                 n_retrieve=n_retrieve, **backend_options)

    def enable_durability(
        self,
        name: str,
        directory: PathLike,
        fsync_every: int = 256,
        log_reads: bool = True,
        injector=None,
    ):
        """Swap ``name``'s sequence store for a WAL-backed durable one.

        Builds a :class:`~repro.serving.durability.DurableSequenceStore` in
        ``directory`` — recovering any prior snapshot + write-ahead log it
        finds there — with this registry's cache geometry (capacity, TTL,
        shards), and installs it as the model's store.  All serving paths
        (heads, batchers, the concurrent runtime) pick it up transparently;
        returns the durable store so callers can ``checkpoint()``/``close()``
        it at shutdown.
        """
        from repro.serving.durability import DurableSequenceStore

        entry = self.get(name)
        durable = DurableSequenceStore(
            directory,
            entry.model.config.max_seq_len,
            capacity=self.cache_capacity,
            ttl=self.cache_ttl,
            shards=self.cache_shards,
            fsync_every=fsync_every,
            log_reads=log_reads,
            injector=injector,
        )
        entry.sequence_store = durable
        return durable

    def unregister(self, name: str) -> None:
        self._entries.pop(name, None)

    def get(self, name: str) -> RegisteredModel:
        if name not in self._entries:
            raise KeyError(
                f"no model registered as {name!r}; available: {sorted(self._entries)}"
            )
        return self._entries[name]

    def names(self) -> List[str]:
        return sorted(self._entries)

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------ #
    # Generic serving endpoint (the protocol front door)
    # ------------------------------------------------------------------ #
    def serve(
        self,
        name: str,
        payloads: Sequence[dict],
        head: str = "score",
        k: Optional[int] = None,
        n_retrieve: Optional[int] = None,
        max_batch_size: int = 256,
    ) -> dict:
        """Answer a batch of JSON request payloads through any registered head.

        The one endpoint the per-head batch helpers collapsed onto: ``head``
        names an entry of the :class:`~repro.serving.protocol.HeadRegistry`
        (``score`` / ``rank`` / ``classify`` / ``regress`` / ``rank-topk`` /
        ``recommend`` / ``update`` out of the box), ``k``/``n_retrieve`` are
        defaults for requests without their own.  Returns the head's response
        payload — results plus batching and cache statistics.
        """
        from repro.serving.service import execute_batch

        return execute_batch(self, name, payloads, head=head, k=k,
                             n_retrieve=n_retrieve, max_batch_size=max_batch_size)

    # ------------------------------------------------------------------ #
    # Task endpoints (mirror repro.core.tasks)
    # ------------------------------------------------------------------ #
    def rank(self, name: str, batch: FeatureBatch) -> np.ndarray:
        """Raw candidate scores; sort descending to rank (RankingTask)."""
        return self.get(name).engine.score(batch)

    def classify(self, name: str, batch: FeatureBatch) -> np.ndarray:
        """Click probabilities σ(ŷ) (ClassificationTask.predict_probability)."""
        return self.get(name).engine.classify(batch)

    def regress(self, name: str, batch: FeatureBatch) -> np.ndarray:
        """Predicted ratings (RegressionTask predictions)."""
        return self.get(name).engine.regress(batch)

    def rank_requests(
        self, name: str, requests: List[ScoreRequest], max_batch_size: int = 256
    ) -> np.ndarray:
        """Micro-batched raw scores for a list of requests, in request order."""
        return self.get(name).batcher(max_batch_size, head="score").score_all(requests)

    def rank_topk(
        self,
        name: str,
        static_profile: Sequence[int],
        candidates: Sequence[int],
        k: int,
        history: Sequence[int] = (),
        user_id: int = -1,
    ) -> RankedCandidates:
        """Top-k candidates for one user through the ranking fast path.

        ``static_profile``/``candidates``/``history`` are model-vocabulary
        indices (the mapping from raw ids is
        :meth:`repro.data.features.FeatureEncoder.encode_candidates`).  The
        user's history encoding is cached in the model's sequence store when
        ``user_id ≥ 0``.  Returns candidates and raw scores, best first.
        """
        request = RankRequest(
            static_indices=static_profile,
            candidates=candidates,
            history=history,
            user_id=user_id,
        )
        return self.get(name).batcher(head="rank").rank(request, k)

    def recommend(
        self,
        name: str,
        static_profile: Sequence[int],
        k: int,
        history: Sequence[int] = (),
        user_id: int = -1,
        n_retrieve: Optional[int] = None,
    ) -> RankedCandidates:
        """Top-k catalog items for one user through retrieve → rank.

        The candidate-free sibling of :meth:`rank_topk`: the model's attached
        item index supplies the shortlist (``n_retrieve`` wide), the exact
        fast path re-ranks it.  Requires :meth:`build_index` /
        :meth:`load_index` first.  The user's history encoding is cached in
        the sequence store when ``user_id ≥ 0``.
        """
        request = RecommendRequest(
            static_indices=static_profile,
            history=history,
            user_id=user_id,
            n_retrieve=n_retrieve,
        )
        return self.get(name).batcher(head="recommend").recommend(request, k)
