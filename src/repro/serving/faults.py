"""Deterministic fault injection and retry policy for the serving runtime.

Robustness claims are only as good as the failures they were tested against,
and real failures (a torn disk write, a worker that dies mid-batch, an fsync
that never returns) are miserable to reproduce.  This module makes them
cheap and *deterministic*:

* :class:`FaultInjector` — a seeded registry of fault specs, keyed by
  **site** name (``"wal.append"``, ``"store.record"``, ``"executor.unit"``,
  …).  Production code calls :meth:`FaultInjector.hit` at each site; with no
  spec armed that is one dict lookup, so the hooks stay in the hot path
  permanently.  Tests arm :class:`FaultSpec` objects (raise / delay / torn
  byte truncation, with probability, count and trigger-offset controls) and
  replay the exact same failure schedule from the same seed.

* :class:`RetryPolicy` — exponential backoff with **full jitter**
  (AWS-style: sleep is uniform on ``[0, min(cap, base·2^attempt))``), the
  client half of self-healing.  Faults marked retryable
  (:func:`is_retryable`) are retried by the concurrent router before a
  structured ``retryable`` error is emitted.

Everything here is dependency-free and importable from kernels to tests;
the injector is thread-safe so worker pools can share one schedule.
"""

from __future__ import annotations

import random
import threading
import time
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional


class InjectedFault(RuntimeError):
    """A failure raised by an armed :class:`FaultSpec`.

    Carries the site it fired at and whether the operation is safe to retry
    (``retryable`` faults fire *before* any state mutation at their site, so
    re-running the operation cannot double-apply anything).
    """

    def __init__(self, site: str, message: str = "", retryable: bool = False):
        super().__init__(message or f"injected fault at {site!r}")
        self.site = site
        self.retryable = retryable


def is_retryable(error: BaseException) -> bool:
    """Whether ``error`` advertises itself as safe to retry."""
    return bool(getattr(error, "retryable", False))


class TransientFault(RuntimeError):
    """A real (non-injected) infrastructure failure that is safe to retry.

    Raised by runtime components when an operation failed *before* any state
    mutation — e.g. a crashed worker-process pool that has been restarted —
    so the retry loop treats it exactly like a retryable injected fault.
    """

    retryable = True


@dataclass
class FaultSpec:
    """One armed failure mode at one site.

    Parameters
    ----------
    site:
        The site name the spec listens on.
    kind:
        ``"raise"`` (throw :class:`InjectedFault`), ``"delay"`` (sleep
        ``delay`` seconds), or ``"torn"`` (truncate the bytes offered to
        :meth:`FaultInjector.torn` — the torn-write/partial-append fault).
    probability:
        Chance an eligible hit fires, drawn from the spec's own seeded RNG
        so schedules replay exactly.  ``1.0`` fires every eligible hit.
    times:
        Stop firing after this many firings (``None``: unbounded).
    after:
        Skip the first ``after`` eligible hits before becoming live —
        "fail the third append" is ``after=2, times=1``.
    retryable:
        Tag raised faults as retryable (see :func:`is_retryable`).
    delay:
        Sleep length for ``kind="delay"``.
    keep_bytes:
        For ``kind="torn"``: bytes of the offered payload to keep.  ``0``
        keeps the first half.
    match:
        Only hits whose context string contains this substring are eligible
        (e.g. target one model or one user id).
    """

    site: str
    kind: str = "raise"
    probability: float = 1.0
    times: Optional[int] = None
    after: int = 0
    retryable: bool = False
    delay: float = 0.0
    keep_bytes: int = 0
    match: Optional[str] = None
    #: Bookkeeping (mutated under the injector's lock).
    fired: int = 0
    seen: int = 0
    _rng: random.Random = field(default=None, repr=False, compare=False)  # type: ignore[assignment]

    def __post_init__(self):
        if self.kind not in ("raise", "delay", "torn"):
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")


class FaultInjector:
    """A seeded, thread-safe schedule of failures at named sites.

    The same seed and the same sequence of ``hit``/``torn`` calls produce
    the same firings — chaos tests are reproducible runs, not dice rolls.
    An injector with nothing armed is effectively free (one attribute read
    per site), so production paths keep their hooks unconditionally; the
    module-level :data:`NULL_INJECTOR` is the shared always-quiet default.
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._lock = threading.Lock()
        self._specs: Dict[str, List[FaultSpec]] = {}

    def arm(self, site: str, kind: str = "raise", **kwargs) -> FaultSpec:
        """Arm one :class:`FaultSpec` at ``site``; returns it for inspection."""
        spec = FaultSpec(site=site, kind=kind, **kwargs)
        with self._lock:
            bucket = self._specs.setdefault(site, [])
            token = f"{self.seed}:{site}:{len(bucket)}"
            spec._rng = random.Random(zlib.crc32(token.encode("utf-8")))
            bucket.append(spec)
        return spec

    def reset(self) -> None:
        """Disarm everything (counters on returned specs are preserved)."""
        with self._lock:
            self._specs = {}

    def fired(self, site: str) -> int:
        """Total firings at ``site`` across all armed specs."""
        with self._lock:
            return sum(spec.fired for spec in self._specs.get(site, ()))

    def _due(self, spec: FaultSpec, context: str) -> bool:  # repro: locked[_lock]
        """Whether one eligible hit fires ``spec`` (advances its counters)."""
        if spec.match is not None and spec.match not in context:
            return False
        spec.seen += 1
        if spec.seen <= spec.after:
            return False
        if spec.times is not None and spec.fired >= spec.times:
            return False
        if spec.probability < 1.0 and spec._rng.random() >= spec.probability:
            return False
        spec.fired += 1
        return True

    def hit(self, site: str, context: str = "") -> None:
        """Pass through ``site``: sleep and/or raise per the armed specs."""
        if not self._specs:
            return
        delay = 0.0
        fault: Optional[InjectedFault] = None
        with self._lock:
            for spec in self._specs.get(site, ()):
                if spec.kind == "torn":
                    continue
                if not self._due(spec, context):
                    continue
                if spec.kind == "delay":
                    delay = max(delay, spec.delay)
                else:
                    fault = InjectedFault(site, retryable=spec.retryable)
                    break
        if delay > 0.0:
            time.sleep(delay)
        if fault is not None:
            raise fault

    def torn(self, site: str, data: bytes, context: str = "") -> Optional[bytes]:
        """The truncated payload a torn-write fault leaves, or ``None``.

        Callers write the returned prefix in place of ``data`` and then
        simulate the crash (typically by raising) — recovery-side code must
        cope with the resulting partial record.
        """
        if not self._specs:
            return None
        with self._lock:
            for spec in self._specs.get(site, ()):
                if spec.kind != "torn":
                    continue
                if self._due(spec, context):
                    keep = spec.keep_bytes if spec.keep_bytes > 0 else max(1, len(data) // 2)
                    return data[:min(keep, len(data) - 1)]
        return None


#: The shared always-quiet injector production paths default to.
NULL_INJECTOR = FaultInjector()


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with full jitter, deterministic per seed.

    ``max_attempts`` counts the first try: ``max_attempts=3`` means one try
    plus up to two retries.  The sleep before retry *n* (1-based) is uniform
    on ``[0, min(max_delay, base_delay · 2^(n-1))]`` — full jitter, which
    decorrelates competing clients far better than equal or proportional
    jitter — drawn from an RNG keyed by ``(seed, n)`` so a given policy
    produces one reproducible schedule.
    """

    max_attempts: int = 3
    base_delay: float = 0.005
    max_delay: float = 0.25
    seed: int = 0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")

    def backoff(self, attempt: int) -> float:
        """Sleep length before retry ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        cap = min(self.max_delay, self.base_delay * (2.0 ** (attempt - 1)))
        rng = random.Random(zlib.crc32(f"{self.seed}:{attempt}".encode("utf-8")))
        return rng.uniform(0.0, cap)
