"""The serving protocol: versioned envelopes, declarative heads, stable errors.

Before this module existed every serving head was wired by hand in four
places — a bespoke ``parse_*`` function, an ``if head == ...`` branch in the
stream/batch front-ends, a dedicated :class:`~repro.serving.batcher.MicroBatcher`
method and a dedicated CLI subcommand.  The protocol collapses that into three
declarative pieces:

* an **envelope** — the one wire format every request travels in::

      {"v": 1, "head": "rank-topk", "model": "seqfm", "id": 7,
       "payload": {"static_indices": [4, 0], "candidates": [17, 21], "k": 2}}

  ``payload`` is a single request object or a list scored as one batch;
  ``head`` and ``model`` default to the server's configuration; ``id`` is an
  opaque correlation value echoed in the response.  Bare pre-envelope payloads
  (and bare lists of them) are auto-upgraded to v1 with the defaults, so every
  pre-protocol client keeps working — and keeps receiving the pre-protocol
  response shapes.  Unknown versions are rejected with a structured error,
  never guessed at.

* a **head** — one serving endpoint as an object
  (:class:`Head`): ``parse(payload, defaults)`` builds the request,
  ``execute(batcher, requests)`` answers it, ``serialize(result)`` renders one
  wire result.  Heads are registered in a :class:`HeadRegistry`; the stream
  server, the batch scorer, :meth:`repro.serving.registry.RegisteredModel.batcher`,
  :meth:`repro.serving.registry.ModelRegistry.serve` and the CLI all dispatch
  through it generically, so a new head is one registration, not a five-file
  surgery.

* **structured errors** — every failure is
  ``{"error": {"code": ..., "message": ..., "line": ...}}`` with a stable
  machine-readable code (:data:`ERROR_CODES`), never a bare free-text string.

On top of the envelope sit two capabilities the hardwired design could not
express: the stateful ``update`` head (append interaction events to a user's
server-side sequence, closing the recommend → click → update → recommend
loop) and per-request **model routing** — a mixed JSONL stream may target any
registered model via the envelope's ``model`` field, with
:class:`ServingRouter` grouping traffic per (model, head) and micro-batching
each group.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.serving.batcher import (
    MicroBatcher,
    RankedCandidates,
    RankRequest,
    ScoreRequest,
)

#: The one protocol version this server speaks.
PROTOCOL_VERSION = 1

#: Envelope keys a v1 document may carry; anything else is a client typo the
#: server rejects instead of silently ignoring ("haed": "classify").
ENVELOPE_KEYS = frozenset({"v", "head", "model", "id", "payload"})

#: Keys whose presence marks a dict as an envelope (attempt).  ``id`` is
#: deliberately absent: it was plausible client-side metadata on bare v0
#: payloads (where unknown keys were always ignored), so keying on it would
#: turn previously-served requests into errors.  ``head``/``model`` were
#: never valid v0 payload fields — a document carrying them without
#: ``payload`` is a broken envelope, not a legacy request.
ENVELOPE_MARKER_KEYS = frozenset({"v", "payload", "head", "model"})

# --------------------------------------------------------------------------- #
# Stable error codes
# --------------------------------------------------------------------------- #
#: The input line was not valid JSON at all.
ERR_BAD_JSON = "bad_json"
#: The document was JSON but not a well-formed envelope or request.
ERR_BAD_ENVELOPE = "bad_envelope"
#: The envelope named a protocol version this server does not speak.
ERR_UNSUPPORTED_VERSION = "unsupported_version"
#: The envelope named a head no :class:`HeadRegistry` entry answers.
ERR_UNKNOWN_HEAD = "unknown_head"
#: The envelope named a model the :class:`~repro.serving.registry.ModelRegistry`
#: does not hold.
ERR_UNKNOWN_MODEL = "unknown_model"
#: The payload failed head-specific validation (missing fields, wrong types,
#: out-of-range values such as ``k < 1`` or empty candidate lists).
ERR_BAD_REQUEST = "bad_request"
#: The request parsed cleanly but the model could not answer it (for example
#: an out-of-vocabulary index surfacing from the engine).
ERR_EXECUTION = "execution_error"
#: The server's admission control rejected the request: the bounded inflight
#: queue of the concurrent runtime was full (backpressure, not failure — the
#: client should retry after a delay).
ERR_OVERLOADED = "overloaded"
#: A worker did not answer the request within the configured deadline; the
#: stream keeps flowing instead of hanging on the stuck batch.
ERR_TIMEOUT = "timeout"
#: The request failed on a transient fault (injected or infrastructure) and
#: the server's retry budget ran out — the request itself is fine and may be
#: resubmitted; WAL appends are idempotent by sequence number, so a retried
#: write can never double-apply.
ERR_RETRYABLE = "retryable"

#: Every code a response's ``error.code`` field may carry — the stable,
#: client-facing contract; messages may be reworded, codes may not.
ERROR_CODES = (
    ERR_BAD_JSON,
    ERR_BAD_ENVELOPE,
    ERR_UNSUPPORTED_VERSION,
    ERR_UNKNOWN_HEAD,
    ERR_UNKNOWN_MODEL,
    ERR_BAD_REQUEST,
    ERR_EXECUTION,
    ERR_OVERLOADED,
    ERR_TIMEOUT,
    ERR_RETRYABLE,
)


class ProtocolError(ValueError):
    """A protocol-level failure with a stable machine-readable code.

    Subclasses :class:`ValueError` so every pre-protocol ``except ValueError``
    call site keeps catching it.
    """

    def __init__(self, code: str, message: str):
        if code not in ERROR_CODES:
            raise ValueError(f"unknown error code {code!r}")
        self.code = code
        super().__init__(message)


def error_response(
    code: str,
    message: str,
    line: Optional[int] = None,
    request_id: Any = None,
) -> dict:
    """The structured error body a failed request is answered with."""
    error: Dict[str, Any] = {"code": code, "message": message}
    if line is not None:
        error["line"] = line
    if request_id is not None:
        error["id"] = request_id
    return {"error": error}


# --------------------------------------------------------------------------- #
# Envelope
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class ServeDefaults:
    """Server-side defaults a head's ``parse`` may fall back on.

    Attributes
    ----------
    k:
        Default top-K cut for ranking/recommendation requests without their
        own ``"k"``.
    n_retrieve:
        Default retrieval fan-out for recommendation requests.
    stored_history:
        When true, a request that *omits* ``"history"`` reads the user's
        server-side sequence (:class:`~repro.serving.cache.UserSequenceStore`)
        instead of an empty one — the v1-envelope semantic that makes the
        ``update`` head useful.  Bare v0 payloads keep the historical
        missing-means-empty behaviour.  An explicit ``"history": null``
        requests the stored sequence under either version.
    """

    k: Optional[int] = None
    n_retrieve: Optional[int] = None
    stored_history: bool = False


@dataclass(frozen=True)
class Envelope:
    """One parsed wire document: where it routes and what it carries.

    ``payloads`` always holds dicts — a single-request document becomes a
    one-element tuple with ``batched=False``, so downstream code never
    branches on the wire shape.  ``legacy`` marks a bare (pre-envelope)
    document that was auto-upgraded; its response must keep the pre-protocol
    shape.
    """

    head: str
    model: Optional[str]
    payloads: Tuple[dict, ...]
    batched: bool
    request_id: Any = None
    v: int = PROTOCOL_VERSION
    legacy: bool = False


def parse_envelope(
    document: Any,
    default_head: str = "score",
    default_model: Optional[str] = None,
) -> Envelope:
    """Parse one wire document into an :class:`Envelope`.

    A dict carrying any :data:`ENVELOPE_MARKER_KEYS` entry (``v`` /
    ``payload`` / ``head`` / ``model``) is treated as a versioned envelope —
    a document that names a head or model but forgets ``payload`` gets a
    structured error, never a silent mis-route to the default head.  Any
    other dict (and any list of dicts) is a bare pre-envelope payload,
    auto-upgraded to v1 with the server's default head and model; its
    unknown keys (including ``id``) are ignored exactly as the pre-protocol
    parsers ignored them.  Raises :class:`ProtocolError` with a stable code
    on malformed documents and unsupported versions.
    """
    if isinstance(document, list):
        return Envelope(head=default_head, model=default_model,
                        payloads=_payload_tuple(document), batched=True,
                        legacy=True)
    if not isinstance(document, dict):
        raise ProtocolError(
            ERR_BAD_ENVELOPE,
            f"a request document must be a JSON object or list, got "
            f"{type(document).__name__}",
        )
    if not any(key in document for key in ENVELOPE_MARKER_KEYS):
        return Envelope(head=default_head, model=default_model,
                        payloads=(document,), batched=False, legacy=True)

    version = document.get("v", PROTOCOL_VERSION)
    if isinstance(version, bool) or not isinstance(version, int) \
            or version != PROTOCOL_VERSION:
        raise ProtocolError(
            ERR_UNSUPPORTED_VERSION,
            f"unsupported envelope version {version!r}; this server speaks "
            f"v{PROTOCOL_VERSION}",
        )
    unknown = sorted(set(document) - ENVELOPE_KEYS)
    if unknown:
        raise ProtocolError(
            ERR_BAD_ENVELOPE,
            f"unknown envelope field(s) {unknown}; expected a subset of "
            f"{sorted(ENVELOPE_KEYS)}",
        )
    if "payload" not in document:
        raise ProtocolError(ERR_BAD_ENVELOPE, "envelope is missing 'payload'")
    head = document.get("head", default_head)
    if not isinstance(head, str):
        raise ProtocolError(ERR_BAD_ENVELOPE, "'head' must be a string")
    model = document.get("model", default_model)
    if model is not None and not isinstance(model, str):
        raise ProtocolError(ERR_BAD_ENVELOPE, "'model' must be a string")

    payload = document["payload"]
    if isinstance(payload, dict):
        payloads, batched = (payload,), False
    elif isinstance(payload, list):
        payloads, batched = _payload_tuple(payload), True
    else:
        raise ProtocolError(
            ERR_BAD_ENVELOPE,
            "'payload' must be a request object or a list of request objects",
        )
    return Envelope(head=head, model=model, payloads=payloads, batched=batched,
                    request_id=document.get("id"), v=version, legacy=False)


def _payload_tuple(documents: Sequence[Any]) -> Tuple[dict, ...]:
    for position, item in enumerate(documents):
        if not isinstance(item, dict):
            raise ProtocolError(
                ERR_BAD_REQUEST,
                f"every request in a batch must be a JSON object; element "
                f"{position} is {type(item).__name__}",
            )
    return tuple(documents)


# --------------------------------------------------------------------------- #
# Payload field helpers (shared by every head's parse)
# --------------------------------------------------------------------------- #
def require_mapping(payload: Any, head: str) -> dict:
    if not isinstance(payload, dict):
        raise ProtocolError(
            ERR_BAD_REQUEST,
            f"a {head} request must be a JSON object, got "
            f"{type(payload).__name__}",
        )
    return payload


def parse_int(value: Any, key: str) -> int:
    if isinstance(value, bool) or isinstance(value, (list, tuple, dict)):
        raise ProtocolError(ERR_BAD_REQUEST, f"{key!r} must be an integer")
    try:
        return int(value)
    except (TypeError, ValueError):
        raise ProtocolError(ERR_BAD_REQUEST, f"{key!r} must be an integer, "
                                             f"got {value!r}") from None


def parse_int_list(value: Any, key: str) -> List[int]:
    if isinstance(value, (str, bytes)) or not isinstance(value, (list, tuple)):
        raise ProtocolError(ERR_BAD_REQUEST, f"{key!r} must be a list of integers")
    return [parse_int(item, key) for item in value]


def parse_history(payload: dict, defaults: ServeDefaults) -> Optional[List[int]]:
    """The request's history — ``None`` means "use the server-side sequence"."""
    missing = None if defaults.stored_history else ()
    history = payload.get("history", missing)
    if history is None:
        return None
    return parse_int_list(history, "history")


def parse_positive_int(payload: dict, key: str,
                       default: Optional[int] = None) -> Optional[int]:
    """An optional ≥ 1 integer field: the request's value, else ``default``.

    The shared validation of every bounded-size knob a head may carry
    (``k``, ``n_retrieve``, ...); rejects 0/negative values with a clear
    ``bad_request`` error instead of silently returning empty results.
    """
    value = payload.get(key, default)
    if value is None:
        return None
    value = parse_int(value, key)
    if value < 1:
        raise ProtocolError(ERR_BAD_REQUEST, f"{key!r} must be >= 1, got {value}")
    return value


def parse_topk_cut(payload: dict, defaults: ServeDefaults) -> Optional[int]:
    """The validated top-K cut (request value, else the serve default)."""
    return parse_positive_int(payload, "k", defaults.k)


# --------------------------------------------------------------------------- #
# Heads
# --------------------------------------------------------------------------- #
class Head:
    """One serving endpoint, declaratively.

    A head owns everything endpoint-specific: how a payload becomes a request
    object (``parse``), how a micro-batcher answers a parsed batch
    (``execute``), how one result renders on the wire (``serialize``), which
    engine callable its batcher scores through (``score_fn``), and its
    response/stats shapes.  Registering a subclass in a :class:`HeadRegistry`
    is the *entire* integration surface — the stream server, batch scorer,
    registry endpoint and CLI pick it up generically.
    """

    #: Wire name of the head (the envelope's ``"head"`` value).
    name: str = ""

    #: Heads answering about the *server* rather than a model (``status``)
    #: set this; routers then call :meth:`execute_with_router` instead of
    #: building a micro-batcher.
    wants_router: bool = False

    # -- model binding ------------------------------------------------- #
    def validate_entry(self, entry) -> None:
        """Reject models that cannot answer this head (override to check)."""

    def score_fn(self, entry):
        """The engine callable the head's micro-batcher drives."""
        return entry.engine.score

    # -- request lifecycle --------------------------------------------- #
    def parse(self, payload: dict, defaults: ServeDefaults):
        """Build the head's request object from one JSON payload."""
        raise NotImplementedError

    def execute(self, batcher: MicroBatcher, requests: Sequence) -> List:
        """Answer a parsed batch through ``batcher``, results in order."""
        raise NotImplementedError

    def execute_with_router(self, router: "ServingRouter",
                            requests: Sequence) -> List:
        """Answer a batch with router context (``wants_router`` heads only)."""
        raise NotImplementedError

    def serialize(self, result) -> dict:
        """Render one result as its v1 wire object."""
        raise NotImplementedError

    # -- response shaping ---------------------------------------------- #
    def rows(self, results: Sequence) -> int:
        """Result rows a batch emitted (the :class:`ServeSummary` currency)."""
        return len(results)

    def legacy_response(self, results: Sequence, batched: bool):
        """The pre-envelope response body (bare v0 documents only)."""
        serialized = [self.serialize(result) for result in results]
        return {"results": serialized} if batched else serialized[0]

    def batch_payload(self, results: Sequence) -> dict:
        """The result block of a one-shot batch response."""
        return {"results": [self.serialize(result) for result in results]}

    def batch_stats(self, batcher: MicroBatcher, entry, cache, results) -> dict:
        """The stats block of a one-shot batch response."""
        return {"requests": batcher.stats.requests,
                **cache_stats_payload(cache)}

    def describe(self, response: dict) -> str:
        """One operator-facing line summarising a batch response."""
        return f"{len(response.get('results', ()))} results"


def cache_stats_payload(cache) -> dict:
    """The cache block every batch response's ``stats`` carries."""
    return {
        "cache_hits": cache.hits,
        "cache_misses": cache.misses,
        "cache_hit_rate": cache.hit_rate,
        "cache_evictions": cache.evictions,
    }


def cache_summary(stats: dict) -> str:
    return (f"cache hit rate {stats['cache_hit_rate']:.2f}, "
            f"{stats['cache_evictions']} evictions")


class ScoringHead(Head):
    """A one-score-per-request head bound to one engine endpoint.

    Covers ``score`` / ``rank`` (raw scores), ``classify`` (σ(ŷ)) and
    ``regress`` (predicted ratings) — identical wiring, different engine
    callable.
    """

    def __init__(self, name: str, endpoint: str):
        self.name = name
        self._endpoint = endpoint

    def score_fn(self, entry):
        return getattr(entry.engine, self._endpoint)

    def parse(self, payload: dict, defaults: ServeDefaults) -> ScoreRequest:
        payload = require_mapping(payload, self.name)
        if "static_indices" not in payload:
            raise ProtocolError(ERR_BAD_REQUEST,
                                "request is missing 'static_indices'")
        return ScoreRequest(
            static_indices=parse_int_list(payload["static_indices"], "static_indices"),
            history=parse_history(payload, defaults),
            user_id=parse_int(payload.get("user_id", -1), "user_id"),
            object_id=parse_int(payload.get("object_id", -1), "object_id"),
        )

    def execute(self, batcher: MicroBatcher, requests: Sequence) -> List[float]:
        return [float(score) for score in batcher.score_all(requests)]

    def serialize(self, result: float) -> dict:
        return {"score": result}

    def legacy_response(self, results: Sequence, batched: bool) -> dict:
        return {"scores": list(results)}

    def batch_payload(self, results: Sequence) -> dict:
        return {"scores": list(results)}

    def batch_stats(self, batcher, entry, cache, results) -> dict:
        return {
            "requests": batcher.stats.requests,
            "batches": batcher.stats.batches,
            "mean_batch_size": batcher.stats.mean_batch_size,
            **cache_stats_payload(cache),
        }

    def describe(self, response: dict) -> str:
        return f"{len(response['scores'])} scores"


class RankedListHead(Head):
    """Shared shape of the candidate-list heads (``rank-topk``, ``recommend``):
    one :class:`~repro.serving.batcher.RankedCandidates` result per request."""

    def serialize(self, result: RankedCandidates) -> dict:
        return {"candidates": [int(candidate) for candidate in result.candidates],
                "scores": [float(score) for score in result.scores]}

    def rows(self, results: Sequence) -> int:
        return sum(len(result) for result in results)


class RankTopKHead(RankedListHead):
    """Candidate-list ranking through the deduplicated fast path."""

    name = "rank-topk"

    def parse(self, payload: dict, defaults: ServeDefaults) -> RankRequest:
        payload = require_mapping(payload, self.name)
        for key in ("static_indices", "candidates"):
            if key not in payload:
                raise ProtocolError(ERR_BAD_REQUEST,
                                    f"ranking request is missing {key!r}")
        candidates = parse_int_list(payload["candidates"], "candidates")
        if not candidates:
            raise ProtocolError(ERR_BAD_REQUEST,
                                "'candidates' must be a non-empty list")
        return RankRequest(
            static_indices=parse_int_list(payload["static_indices"], "static_indices"),
            candidates=candidates,
            history=parse_history(payload, defaults),
            user_id=parse_int(payload.get("user_id", -1), "user_id"),
            k=parse_topk_cut(payload, defaults),
        )

    def execute(self, batcher: MicroBatcher, requests: Sequence) -> List[RankedCandidates]:
        return batcher.rank_all(requests)

    def batch_stats(self, batcher, entry, cache, results) -> dict:
        return {
            "requests": batcher.stats.requests,
            "candidates_ranked": batcher.stats.rows_scored,
            **cache_stats_payload(cache),
        }

    def describe(self, response: dict) -> str:
        stats = response["stats"]
        return (f"ranked {stats['candidates_ranked']} candidates across "
                f"{stats['requests']} requests ({cache_summary(stats)})")


@dataclass(frozen=True)
class UpdateRequest:
    """One state update: interaction events to append to a user's sequence."""

    user_id: int
    events: Tuple[int, ...]


class UpdateHead(Head):
    """The stateful head: append events to the server-side user sequence.

    Closes the online loop the read-only heads cannot: recommend → the user
    clicks → ``update`` appends the click → the next request that *omits*
    its history (v1 semantic) is answered against the updated sequence.
    State lives in the model's :class:`~repro.serving.cache.UserSequenceStore`,
    so capacity eviction and TTL expiry bound its footprint.
    """

    name = "update"

    def parse(self, payload: dict, defaults: ServeDefaults) -> UpdateRequest:
        payload = require_mapping(payload, self.name)
        if "user_id" not in payload:
            raise ProtocolError(ERR_BAD_REQUEST,
                                "update request is missing 'user_id'")
        if "events" not in payload:
            raise ProtocolError(ERR_BAD_REQUEST,
                                "update request is missing 'events'")
        user_id = parse_int(payload["user_id"], "user_id")
        if user_id < 0:
            raise ProtocolError(ERR_BAD_REQUEST,
                                f"'user_id' must be >= 0, got {user_id}")
        events = parse_int_list(payload["events"], "events")
        if not events:
            raise ProtocolError(ERR_BAD_REQUEST,
                                "'events' must be a non-empty list")
        return UpdateRequest(user_id=user_id, events=tuple(events))

    def execute(self, batcher: MicroBatcher, requests: Sequence) -> List[dict]:
        store = batcher.sequence_store
        if store is None:
            raise ProtocolError(
                ERR_BAD_REQUEST,
                "the update head needs a user-sequence store; this batcher "
                "has none attached",
            )
        results = []
        for request in requests:
            entry = store.record(request.user_id, request.events)
            results.append({
                "user_id": request.user_id,
                "appended": len(request.events),
                "history_len": len(entry.fingerprint),
            })
        return results

    def serialize(self, result: dict) -> dict:
        return result

    def rows(self, results: Sequence) -> int:
        return sum(result["appended"] for result in results)

    def batch_stats(self, batcher, entry, cache, results) -> dict:
        return {
            "requests": len(results),
            "events_appended": self.rows(results),
            "users_resident": len(entry.sequence_store),
            **cache_stats_payload(cache),
        }

    def describe(self, response: dict) -> str:
        stats = response["stats"]
        return (f"appended {stats['events_appended']} events across "
                f"{stats['requests']} users ({stats['users_resident']} resident)")


class StatusHead(Head):
    """The operational-state head: answer about the server, not a model.

    One request, one payload (an empty mapping — reserved keys may arrive
    later), one result: the router's :meth:`ServingRouter.status_payload` —
    per-model store residency, cache and WAL/durability counters, shard
    health, and (on the concurrent router) inflight depth, degradation
    level, quarantine and retry state.  Per-code error counts come from the
    serve loop's summary when one is attached.
    """

    name = "status"
    wants_router = True

    def parse(self, payload: dict, defaults: ServeDefaults) -> dict:
        return require_mapping(payload, self.name)

    def execute(self, batcher: MicroBatcher, requests: Sequence) -> List:
        raise ProtocolError(
            ERR_BAD_REQUEST,
            "the status head reports server state and is only served by the "
            "streaming endpoints (serve); it has no one-shot batch form",
        )

    def execute_with_router(self, router: "ServingRouter",
                            requests: Sequence) -> List[dict]:
        payload = router.status_payload()
        return [payload for _ in requests]

    def serialize(self, result: dict) -> dict:
        return result

    def rows(self, results: Sequence) -> int:
        return 0  # status answers carry no scored rows

    def describe(self, response: dict) -> str:
        models = response.get("result", {}).get("models", {})
        return f"status over {len(models)} models"


# --------------------------------------------------------------------------- #
# Registry of heads
# --------------------------------------------------------------------------- #
class HeadRegistry:
    """Named heads, dispatched by every serving front-end.

    Registration order is preserved (it is the order operators see in error
    messages and docs).  Registering over an existing name requires
    ``overwrite=True`` — the same silent-replacement guard the model registry
    applies.
    """

    def __init__(self, heads: Sequence[Head] = ()):
        self._heads: Dict[str, Head] = {}
        for head in heads:
            self.register(head)

    def register(self, head: Head, overwrite: bool = False) -> Head:
        if not head.name:
            raise ValueError("a head must declare a non-empty name")
        if head.name in self._heads and not overwrite:
            raise ValueError(
                f"a head is already registered as {head.name!r}; pass "
                "overwrite=True to replace it"
            )
        self._heads[head.name] = head
        return head

    def get(self, name: str) -> Head:
        if name not in self._heads:
            raise ProtocolError(
                ERR_UNKNOWN_HEAD,
                f"unknown head {name!r}; expected one of {self.names()}",
            )
        return self._heads[name]

    def names(self) -> Tuple[str, ...]:
        return tuple(self._heads)

    def __contains__(self, name: str) -> bool:
        return name in self._heads

    def __iter__(self) -> Iterator[Head]:
        return iter(self._heads.values())

    def __len__(self) -> int:
        return len(self._heads)


_DEFAULT_HEADS: Optional[HeadRegistry] = None


def default_heads() -> HeadRegistry:
    """The process-wide registry holding every built-in head.

    Built lazily so that importing :mod:`repro.serving` does not drag the
    retrieval subsystem in; the ``recommend`` head lives with the pipeline it
    drives (:mod:`repro.retrieval.pipeline`) and registers here on first use.
    """
    global _DEFAULT_HEADS
    if _DEFAULT_HEADS is None:
        from repro.retrieval.pipeline import RecommendHead

        _DEFAULT_HEADS = HeadRegistry([
            ScoringHead("score", "score"),
            ScoringHead("rank", "score"),
            ScoringHead("classify", "classify"),
            ScoringHead("regress", "regress"),
            RankTopKHead(),
            RecommendHead(),
            UpdateHead(),
            StatusHead(),
        ])
    return _DEFAULT_HEADS


# --------------------------------------------------------------------------- #
# Router
# --------------------------------------------------------------------------- #
def render_response(envelope: Envelope, head: Head, results: Sequence):
    """The response body for one answered envelope.

    Legacy (auto-upgraded v0) documents get the pre-protocol shapes; v1
    envelopes get the versioned response mirror — ``result`` for a single
    payload, ``results`` for a batched one, ``id`` echoed when present.
    """
    if envelope.legacy:
        return head.legacy_response(results, envelope.batched)
    body: Dict[str, Any] = {"v": PROTOCOL_VERSION, "head": head.name}
    if envelope.model is not None:
        body["model"] = envelope.model
    if envelope.request_id is not None:
        body["id"] = envelope.request_id
    serialized = [head.serialize(result) for result in results]
    if envelope.batched:
        body["results"] = serialized
    else:
        body["result"] = serialized[0]
    return body


class ServingRouter:
    """Dispatch envelopes to (model, head) groups, one micro-batcher each.

    The router is the per-request-routing half of the protocol: a mixed
    stream may interleave envelopes targeting any registered model and head;
    each distinct (model, head) pair lazily gets its own
    :class:`~repro.serving.batcher.MicroBatcher` (sharing the model's
    engine and user-sequence store), so traffic for the same group keeps
    coalescing no matter how the stream interleaves.
    """

    def __init__(
        self,
        registry,
        default_model: Optional[str] = None,
        heads: Optional[HeadRegistry] = None,
        max_batch_size: int = 256,
        defaults: ServeDefaults = ServeDefaults(),
    ):
        self.registry = registry
        self.default_model = default_model
        self.heads = heads if heads is not None else default_heads()
        self.max_batch_size = max_batch_size
        self.defaults = defaults
        #: (model, head) → (entry, its retriever at build time, batcher);
        #: the first two validate cache freshness against the registry.
        self._batchers: Dict[Tuple[str, str], Tuple[Any, Any, MicroBatcher]] = {}

    def batcher_for(self, model: Optional[str], head_name: str):
        """The (entry, batcher) pair serving one (model, head) group.

        Created on first use, then reused so same-group requests keep
        micro-batching together — but never served stale: a cached pair is
        dropped and rebuilt when the registry's entry for the name was
        replaced (``register(overwrite=True)``) or its retrieval pipeline
        swapped (index rebuild / hot-swap), so a long-lived router always
        answers with the currently registered model.  Propagates the
        underlying lookup errors (`ProtocolError`/:class:`KeyError`) —
        callers serving a stream convert them to structured error lines,
        callers validating a configuration let them raise.
        """
        name = model if model is not None else self.default_model
        if name is None:
            raise ProtocolError(
                ERR_UNKNOWN_MODEL,
                "the envelope names no model and the router has no default",
            )
        head = self.heads.get(head_name)
        key = (name, head.name)
        entry = self.registry.get(name)
        cached = self._batchers.get(key)
        if cached is not None and cached[0] is entry \
                and cached[1] is entry.retriever:
            return cached[0], cached[2]
        batcher = entry.batcher(max_batch_size=self.max_batch_size,
                                head=head.name, heads=self.heads)
        self._batchers[key] = (entry, entry.retriever, batcher)
        return entry, batcher

    def defaults_for(self, envelope: Envelope) -> ServeDefaults:
        """The parse defaults one envelope's payloads see.

        v1 envelopes get the stored-history semantic (a request omitting
        ``history`` reads the server-side sequence); auto-upgraded legacy
        documents keep the historical missing-means-empty behaviour.
        """
        defaults = self.defaults
        if not envelope.legacy and not defaults.stored_history:
            defaults = ServeDefaults(k=defaults.k, n_retrieve=defaults.n_retrieve,
                                     stored_history=True)
        return defaults

    def parse_requests(self, head: Head, envelope: Envelope) -> List:
        """Parse every payload of ``envelope`` through ``head``."""
        defaults = self.defaults_for(envelope)
        return [head.parse(payload, defaults) for payload in envelope.payloads]

    def execute(self, envelope: Envelope):
        """Answer one envelope; returns ``(response_body, rows, head)``.

        Raises :class:`ProtocolError` for protocol-level failures (unknown
        head/model, bad payloads); execution errors out of the engine
        propagate as-is for the caller's error policy.
        """
        head = self.heads.get(envelope.head)
        if head.wants_router:
            requests = self.parse_requests(head, envelope)
            results = head.execute_with_router(self, requests)
            return render_response(envelope, head, results), head.rows(results), head
        try:
            _, batcher = self.batcher_for(envelope.model, envelope.head)
        except KeyError as error:
            raise ProtocolError(ERR_UNKNOWN_MODEL, str(error.args[0])) from None
        requests = self.parse_requests(head, envelope)
        results = head.execute(batcher, requests)
        return render_response(envelope, head, results), head.rows(results), head

    def status_payload(self) -> dict:
        """The operational-state document the ``status`` head serves.

        Covers every registered model: store residency and cache counters,
        shard health when the store is sharded, WAL/durability counters
        when the store is durable, the retrieval backend's ``n_probe``
        dial, and — once the online promotion pipeline has attached a
        :class:`~repro.online.promotion.ModelLineage` — a ``retrain`` block
        with the version lineage (active tag, promoted/rejected counts,
        consumed cursor).  The concurrent router extends this with its runtime state;
        serve loops attach their :class:`~repro.serving.service.ServeSummary`
        as ``router.summary`` so per-code error counts appear too.
        """
        models: Dict[str, dict] = {}
        for model_name in self.registry.names():
            entry = self.registry.get(model_name)
            store = entry.sequence_store
            stats = store.stats
            info: Dict[str, Any] = {
                "users_resident": len(store),
                "cache": {"hits": stats.hits, "misses": stats.misses,
                          "evictions": stats.evictions},
            }
            shard_report = getattr(store, "shard_report", None)
            if shard_report is not None:
                shards = shard_report()
                if shards is not None:
                    info["shards"] = shards
            wal_status = getattr(store, "wal_status", None)
            if wal_status is not None:
                info["wal"] = wal_status()
            if entry.retriever is not None:
                searcher = getattr(entry.retriever, "searcher", None)
                info["index"] = {
                    "backend": type(searcher).__name__,
                    "n_probe": getattr(searcher, "n_probe", None),
                }
            lineage = getattr(entry, "lineage", None)
            if lineage is not None:
                info["retrain"] = lineage.status_payload()
            models[model_name] = info
        payload: Dict[str, Any] = {
            "models": models,
            "heads": list(self.heads.names()),
        }
        summary = getattr(self, "summary", None)
        if summary is not None:
            payload["stream"] = summary.counts()
        return payload
