"""Caching for the serving runtime: a generic LRU map and the user-sequence store.

Encoding a scoring request is cheap but not free — every request pads and
masks the user's interaction history into fixed-shape arrays.  Users who score
many candidates in a row (the ranking endpoint scores J+1 candidates per
request) share one history, and active users come back request after request,
so the padded encoding is highly reusable.  :class:`UserSequenceStore` keeps
the most recently used encodings behind an exact fingerprint check: a cached
entry is reused only when the relevant suffix of the history is unchanged, so
the cache can never serve a stale sequence.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Generic, Hashable, Iterable, Optional, Sequence, Tuple, TypeVar

import numpy as np

from repro.data.batching import pad_sequences
from repro.data.features import PADDING_INDEX

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


@dataclass
class CacheStats:
    """Hit/miss/eviction counters of a cache instance."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0


class LRUCache(Generic[K, V]):
    """Least-recently-used mapping with a fixed capacity.

    ``get`` refreshes recency; ``put`` inserts or updates and evicts the least
    recently used entry once ``capacity`` is exceeded.
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("cache capacity must be positive")
        self.capacity = capacity
        self.stats = CacheStats()
        self._entries: "OrderedDict[K, V]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: K) -> bool:
        return key in self._entries

    def get(self, key: K) -> Optional[V]:
        """Return the cached value (refreshing recency) or ``None``."""
        if key not in self._entries:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return self._entries[key]

    def put(self, key: K, value: V) -> None:
        """Insert or update ``key``, evicting the LRU entry beyond capacity."""
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def pop(self, key: K) -> Optional[V]:
        """Remove and return ``key`` if cached (no stats impact)."""
        return self._entries.pop(key, None)

    def clear(self) -> None:
        self._entries.clear()

    def keys(self):
        """Keys in LRU → MRU order (oldest first)."""
        return list(self._entries.keys())


@dataclass
class _CachedSequence:
    #: the (≤ max_seq_len) visible history suffix — both the cache-validity
    #: fingerprint and the raw material for append_event/record updates
    fingerprint: Tuple[int, ...]
    indices: np.ndarray
    mask: np.ndarray
    #: clock reading at (re-)encoding time, for TTL expiry
    stamp: float = 0.0


class UserSequenceStore:
    """LRU-cached padded history encodings, keyed by user id.

    Parameters
    ----------
    max_seq_len:
        The n˙ the cached encodings are padded/truncated to; must match the
        model the sequences are fed into.
    capacity:
        Maximum number of users kept resident.
    ttl:
        Optional time-to-live in seconds.  Entries older than this are
        treated as absent (and counted as evictions) — the staleness bound
        for server-side sequences maintained by the ``update`` serving head,
        where the store is the source of truth rather than a pure cache.
        ``None`` (the default) never expires.
    clock:
        Monotonic time source for TTL bookkeeping; injectable for tests.

    Notes
    -----
    Correctness does not depend on callers invalidating anything: each lookup
    carries the full history and is checked against the cached fingerprint
    (the last ``max_seq_len`` items — exactly the suffix the model sees).  A
    changed history is transparently re-encoded.  :meth:`append_event` keeps a
    hot user's entry fresh without a round-trip through re-encoding callers;
    :meth:`record` is its creating sibling (the ``update`` head), and
    :meth:`history` reads the stored suffix back for requests that omit
    their history.

    The store is **last-writer-wins**: a request carrying an explicit history
    re-encodes and *replaces* the user's stored suffix (that is how read
    traffic seeds the server-side state the ``update`` head extends — the
    recommend → update → recommend loop).  The flip side: ``history`` on the
    wire is always the user's *full* visible history, never a fragment — a
    client sending a partial history overwrites whatever ``update`` events
    accumulated for that user.
    """

    def __init__(
        self,
        max_seq_len: int,
        capacity: int = 4096,
        ttl: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if max_seq_len < 1:
            raise ValueError("max_seq_len must be at least 1")
        if ttl is not None and ttl <= 0:
            raise ValueError("ttl must be positive (or None to never expire)")
        self.max_seq_len = max_seq_len
        self.ttl = ttl
        self._clock = clock
        self._hits = 0
        self._misses = 0
        self._expired = 0
        self._cache: LRUCache[int, _CachedSequence] = LRUCache(capacity)

    @property
    def stats(self) -> CacheStats:
        """Store-level counters: a *hit* requires the fingerprint to match."""
        return CacheStats(hits=self._hits, misses=self._misses,
                          evictions=self._cache.stats.evictions + self._expired)

    def __len__(self) -> int:
        return len(self._cache)

    def __contains__(self, user_id: int) -> bool:
        return self._peek(user_id) is not None

    def _peek(self, user_id: int) -> Optional[_CachedSequence]:
        """The live cached entry, dropping (and counting) TTL-expired ones."""
        cached = self._cache.get(user_id)
        if cached is None:
            return None
        if self.ttl is not None and self._clock() - cached.stamp > self.ttl:
            self._cache.pop(user_id)
            self._expired += 1
            return None
        return cached

    def encode(self, user_id: int, history: Sequence[int]) -> Tuple[np.ndarray, np.ndarray]:
        """Padded ``(indices, mask)`` row vectors for ``history``.

        Cached per user; a hit requires the visible history suffix to match
        exactly, so results are always identical to a fresh
        :func:`repro.data.batching.pad_sequences` call.
        """
        fingerprint = tuple(int(item) for item in list(history)[-self.max_seq_len:])
        cached = self._peek(user_id)
        if cached is not None and cached.fingerprint == fingerprint:
            self._hits += 1
            return cached.indices, cached.mask
        self._misses += 1
        entry = self._encode_entry(fingerprint)
        self._cache.put(user_id, entry)
        return entry.indices, entry.mask

    def encode_stored(self, user_id: int) -> Tuple[np.ndarray, np.ndarray]:
        """Padded ``(indices, mask)`` of the stored suffix (empty when cold).

        The hot path for requests that omit their history: one cache lookup
        and no re-fingerprinting — a resident entry is returned directly
        (counted as a hit); a cold user gets the empty encoding (counted as
        a miss) *without* seeding an entry, so a sweep of cold reads can
        never evict warm users' accumulated ``update``-head state.
        """
        cached = self._peek(user_id)
        if cached is not None:
            self._hits += 1
            return cached.indices, cached.mask
        self._misses += 1
        entry = self._encode_entry(())
        return entry.indices, entry.mask

    def history(self, user_id: int) -> Optional[Tuple[int, ...]]:
        """The stored visible history suffix, or ``None`` for cold users.

        This is what requests that omit their history are answered against
        (the v1-envelope "server-side sequence" semantic).
        """
        cached = self._peek(user_id)
        return cached.fingerprint if cached is not None else None

    def append_event(self, user_id: int, dynamic_index: int) -> None:
        """Extend a cached user's history by one event (no-op on cold users)."""
        cached = self._peek(user_id)
        if cached is None:
            return
        suffix = (cached.fingerprint + (int(dynamic_index),))[-self.max_seq_len:]
        self._cache.put(user_id, self._encode_entry(suffix))

    def record(self, user_id: int, events: Iterable[int]) -> _CachedSequence:
        """Append ``events`` to a user's stored sequence, creating it if cold.

        The write path of the ``update`` serving head: unlike
        :meth:`append_event` it establishes state for users the store has
        never seen, so the online loop works from the first interaction.
        Returns the updated entry (its ``fingerprint`` is the new suffix).
        """
        cached = self._peek(user_id)
        base = cached.fingerprint if cached is not None else ()
        suffix = (base + tuple(int(event) for event in events))[-self.max_seq_len:]
        entry = self._encode_entry(suffix)
        self._cache.put(user_id, entry)
        return entry

    def _encode_entry(self, fingerprint: Tuple[int, ...]) -> _CachedSequence:
        indices, mask = pad_sequences([fingerprint], self.max_seq_len, PADDING_INDEX)
        return _CachedSequence(fingerprint=fingerprint, indices=indices[0],
                               mask=mask[0], stamp=self._clock())

    def invalidate(self, user_id: int) -> None:
        """Drop a user's cached encoding."""
        self._cache.pop(user_id)

    def clear(self) -> None:
        self._cache.clear()
