"""Caching for the serving runtime: a generic LRU map and the user-sequence store.

Encoding a scoring request is cheap but not free — every request pads and
masks the user's interaction history into fixed-shape arrays.  Users who score
many candidates in a row (the ranking endpoint scores J+1 candidates per
request) share one history, and active users come back request after request,
so the padded encoding is highly reusable.  :class:`UserSequenceStore` keeps
the most recently used encodings behind an exact fingerprint check: a cached
entry is reused only when the relevant suffix of the history is unchanged, so
the cache can never serve a stale sequence.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Generic, Hashable, Optional, Sequence, Tuple, TypeVar

import numpy as np

from repro.data.batching import pad_sequences
from repro.data.features import PADDING_INDEX

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


@dataclass
class CacheStats:
    """Hit/miss/eviction counters of a cache instance."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0


class LRUCache(Generic[K, V]):
    """Least-recently-used mapping with a fixed capacity.

    ``get`` refreshes recency; ``put`` inserts or updates and evicts the least
    recently used entry once ``capacity`` is exceeded.
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("cache capacity must be positive")
        self.capacity = capacity
        self.stats = CacheStats()
        self._entries: "OrderedDict[K, V]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: K) -> bool:
        return key in self._entries

    def get(self, key: K) -> Optional[V]:
        """Return the cached value (refreshing recency) or ``None``."""
        if key not in self._entries:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return self._entries[key]

    def put(self, key: K, value: V) -> None:
        """Insert or update ``key``, evicting the LRU entry beyond capacity."""
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def pop(self, key: K) -> Optional[V]:
        """Remove and return ``key`` if cached (no stats impact)."""
        return self._entries.pop(key, None)

    def clear(self) -> None:
        self._entries.clear()

    def keys(self):
        """Keys in LRU → MRU order (oldest first)."""
        return list(self._entries.keys())


@dataclass
class _CachedSequence:
    #: the (≤ max_seq_len) visible history suffix — both the cache-validity
    #: fingerprint and the raw material for append_event updates
    fingerprint: Tuple[int, ...]
    indices: np.ndarray
    mask: np.ndarray


class UserSequenceStore:
    """LRU-cached padded history encodings, keyed by user id.

    Parameters
    ----------
    max_seq_len:
        The n˙ the cached encodings are padded/truncated to; must match the
        model the sequences are fed into.
    capacity:
        Maximum number of users kept resident.

    Notes
    -----
    Correctness does not depend on callers invalidating anything: each lookup
    carries the full history and is checked against the cached fingerprint
    (the last ``max_seq_len`` items — exactly the suffix the model sees).  A
    changed history is transparently re-encoded.  :meth:`append_event` keeps a
    hot user's entry fresh without a round-trip through re-encoding callers.
    """

    def __init__(self, max_seq_len: int, capacity: int = 4096):
        if max_seq_len < 1:
            raise ValueError("max_seq_len must be at least 1")
        self.max_seq_len = max_seq_len
        self._hits = 0
        self._misses = 0
        self._cache: LRUCache[int, _CachedSequence] = LRUCache(capacity)

    @property
    def stats(self) -> CacheStats:
        """Store-level counters: a *hit* requires the fingerprint to match."""
        return CacheStats(hits=self._hits, misses=self._misses,
                          evictions=self._cache.stats.evictions)

    def __len__(self) -> int:
        return len(self._cache)

    def __contains__(self, user_id: int) -> bool:
        return user_id in self._cache

    def encode(self, user_id: int, history: Sequence[int]) -> Tuple[np.ndarray, np.ndarray]:
        """Padded ``(indices, mask)`` row vectors for ``history``.

        Cached per user; a hit requires the visible history suffix to match
        exactly, so results are always identical to a fresh
        :func:`repro.data.batching.pad_sequences` call.
        """
        fingerprint = tuple(int(item) for item in list(history)[-self.max_seq_len:])
        cached = self._cache.get(user_id)
        if cached is not None and cached.fingerprint == fingerprint:
            self._hits += 1
            return cached.indices, cached.mask
        self._misses += 1
        entry = self._encode_entry(fingerprint)
        self._cache.put(user_id, entry)
        return entry.indices, entry.mask

    def append_event(self, user_id: int, dynamic_index: int) -> None:
        """Extend a cached user's history by one event (no-op on cold users)."""
        cached = self._cache.get(user_id)
        if cached is None:
            return
        suffix = (cached.fingerprint + (int(dynamic_index),))[-self.max_seq_len:]
        self._cache.put(user_id, self._encode_entry(suffix))

    def _encode_entry(self, fingerprint: Tuple[int, ...]) -> _CachedSequence:
        indices, mask = pad_sequences([fingerprint], self.max_seq_len, PADDING_INDEX)
        return _CachedSequence(fingerprint=fingerprint, indices=indices[0], mask=mask[0])

    def invalidate(self, user_id: int) -> None:
        """Drop a user's cached encoding."""
        self._cache.pop(user_id)

    def clear(self) -> None:
        self._cache.clear()
