"""Caching for the serving runtime: a generic LRU map and the user-sequence store.

Encoding a scoring request is cheap but not free — every request pads and
masks the user's interaction history into fixed-shape arrays.  Users who score
many candidates in a row (the ranking endpoint scores J+1 candidates per
request) share one history, and active users come back request after request,
so the padded encoding is highly reusable.  :class:`UserSequenceStore` keeps
the most recently used encodings behind an exact fingerprint check: a cached
entry is reused only when the relevant suffix of the history is unchanged, so
the cache can never serve a stale sequence.

For the concurrent runtime (:mod:`repro.serving.concurrent`) the store grows
two capabilities:

* every :class:`UserSequenceStore` is **thread-safe** — one lock guards the
  LRU map and its counters, so worker threads may encode, record and expire
  entries concurrently without corrupting state;
* :class:`ShardedUserSequenceStore` splits the user population over N
  independent shards by **consistent hashing** (:class:`HashRing`), so lock
  contention scales down with the shard count and a shard can be detached,
  snapshotted and replayed on another server (:meth:`snapshot` /
  :meth:`restore` / :meth:`remove_shard` / :meth:`add_shard`).
"""

from __future__ import annotations

import hashlib
import threading
import time
from bisect import bisect_right
from collections import OrderedDict
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Generic,
    Hashable,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
    Union,
)

import numpy as np

from repro.data.batching import pad_sequences
from repro.data.features import PADDING_INDEX

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


@dataclass
class CacheStats:
    """Hit/miss/eviction counters of a cache instance."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0


class LRUCache(Generic[K, V]):
    """Least-recently-used mapping with a fixed capacity.

    ``get`` refreshes recency; ``put`` inserts or updates and evicts the least
    recently used entry once ``capacity`` is exceeded.
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("cache capacity must be positive")
        self.capacity = capacity
        self.stats = CacheStats()
        self._entries: "OrderedDict[K, V]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: K) -> bool:
        return key in self._entries

    def get(self, key: K) -> Optional[V]:
        """Return the cached value (refreshing recency) or ``None``."""
        if key not in self._entries:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return self._entries[key]

    def put(self, key: K, value: V) -> Optional[K]:
        """Insert or update ``key``, evicting the LRU entry beyond capacity.

        Returns the evicted key (``None`` when nothing was evicted) so
        callers journaling mutations can account for the side effect.
        """
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        if len(self._entries) > self.capacity:
            evicted, _ = self._entries.popitem(last=False)
            self.stats.evictions += 1
            return evicted
        return None

    def pop(self, key: K) -> Optional[V]:
        """Remove and return ``key`` if cached (no stats impact)."""
        return self._entries.pop(key, None)

    def peek_lru(self) -> Optional[K]:
        """The least-recently-used key (the next eviction victim), if any."""
        return next(iter(self._entries), None)

    def clear(self) -> None:
        self._entries.clear()

    def keys(self):
        """Keys in LRU → MRU order (oldest first)."""
        return list(self._entries.keys())

    def items(self):
        """``(key, value)`` pairs in LRU → MRU order (oldest first)."""
        return list(self._entries.items())


@dataclass
class _CachedSequence:
    #: the (≤ max_seq_len) visible history suffix — both the cache-validity
    #: fingerprint and the raw material for append_event/record updates
    fingerprint: Tuple[int, ...]
    indices: np.ndarray
    mask: np.ndarray
    #: clock reading at (re-)encoding time, for TTL expiry
    stamp: float = 0.0


class ShardSealedError(RuntimeError):
    """The store was sealed (detached from its ring) mid-operation.

    Raised from every state operation of a sealed :class:`UserSequenceStore`.
    :class:`ShardedUserSequenceStore` seals a shard while detaching it under
    the topology lock, so a caller that resolved the shard *before* the
    detach re-routes against the new topology instead of writing into state
    that has already been snapshotted away.  Never escapes the sharded
    store's public surface.
    """


#: Journal callback: receives one JSON-safe mutation record (``{"op": ...}``)
#: *before* the mutation is applied, while the store lock is held.  Raising
#: from the journal aborts the mutation — write-ahead semantics.
JournalFn = Callable[[dict], None]


class UserSequenceStore:
    """LRU-cached padded history encodings, keyed by user id.

    Parameters
    ----------
    max_seq_len:
        The n˙ the cached encodings are padded/truncated to; must match the
        model the sequences are fed into.
    capacity:
        Maximum number of users kept resident.
    ttl:
        Optional time-to-live in seconds.  Entries older than this are
        treated as absent (and counted as evictions) — the staleness bound
        for server-side sequences maintained by the ``update`` serving head,
        where the store is the source of truth rather than a pure cache.
        ``None`` (the default) never expires.
    clock:
        Monotonic time source for TTL bookkeeping; injectable for tests.

    Notes
    -----
    Correctness does not depend on callers invalidating anything: each lookup
    carries the full history and is checked against the cached fingerprint
    (the last ``max_seq_len`` items — exactly the suffix the model sees).  A
    changed history is transparently re-encoded.  :meth:`append_event` keeps a
    hot user's entry fresh without a round-trip through re-encoding callers;
    :meth:`record` is its creating sibling (the ``update`` head), and
    :meth:`history` reads the stored suffix back for requests that omit
    their history.

    The store is **thread-safe**: one reentrant lock guards the LRU map and
    every counter, so the worker pool of the concurrent serving runtime may
    hit one store from many threads.  Returned arrays are never mutated in
    place (updates replace whole entries), so callers may keep using them
    after the lock is released.

    The store is **last-writer-wins**: a request carrying an explicit history
    re-encodes and *replaces* the user's stored suffix (that is how read
    traffic seeds the server-side state the ``update`` head extends — the
    recommend → update → recommend loop).  The flip side: ``history`` on the
    wire is always the user's *full* visible history, never a fragment — a
    client sending a partial history overwrites whatever ``update`` events
    accumulated for that user.
    """

    def __init__(
        self,
        max_seq_len: int,
        capacity: int = 4096,
        ttl: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if max_seq_len < 1:
            raise ValueError("max_seq_len must be at least 1")
        if ttl is not None and ttl <= 0:
            raise ValueError("ttl must be positive (or None to never expire)")
        self.max_seq_len = max_seq_len
        self.ttl = ttl
        self._clock = clock
        self._hits = 0
        self._misses = 0
        self._expired = 0
        self._lock = threading.RLock()
        self._cache: LRUCache[int, _CachedSequence] = LRUCache(capacity)
        self._journal: Optional[JournalFn] = None
        self._sealed = False

    @property
    def capacity(self) -> int:
        return self._cache.capacity

    # ------------------------------------------------------------------ #
    # Journal (write-ahead durability hook) and sealing
    # ------------------------------------------------------------------ #
    def set_journal(self, journal: Optional[JournalFn]) -> None:
        """Attach (or detach, with ``None``) the mutation journal.

        The journal receives one JSON-safe record for every state-affecting
        operation — writes, TTL expiries, evictions, and recency touches on
        read hits (the LRU order is part of :meth:`snapshot`'s bytes) —
        *before* the mutation lands, under the store lock.  A journal that
        raises aborts its operation, which is what lets a write-ahead log
        stay a superset of the applied state.
        """
        with self._lock:
            self._journal = journal

    def seal(self) -> None:
        """Permanently fail all state operations with :class:`ShardSealedError`.

        Called by the sharded store while detaching this shard; waits for
        (and then excludes) every in-flight operation because it takes the
        same lock they hold.  ``snapshot``/``stats``/``__len__`` still work —
        a sealed shard can be inspected and re-homed, never written.
        """
        with self._lock:
            self._sealed = True

    def _ensure_live(self) -> None:  # repro: locked[_lock]
        if self._sealed:
            raise ShardSealedError("the store is sealed (shard was detached)")

    def _journal_op(self, op: str, user_id: Optional[int] = None,
                    entry: Optional[_CachedSequence] = None,
                    events: Optional[Iterable[int]] = None) -> None:  # repro: locked[_lock]
        """Emit one journal record (no-op without an attached journal)."""
        if self._journal is None:
            return
        record: Dict[str, object] = {"op": op}
        if user_id is not None:
            record["user"] = int(user_id)
        if entry is not None:
            record["fp"] = list(entry.fingerprint)
            record["stamp"] = entry.stamp
        if events is not None:
            record["events"] = [int(event) for event in events]
        self._journal(record)

    def _journal_put(self, op: str, user_id: int, entry: _CachedSequence,
                     events: Optional[Iterable[int]] = None) -> None:  # repro: locked[_lock]
        """Journal a put *and* the eviction it will cause, before either lands."""
        self._journal_op(op, user_id, entry, events)
        if user_id not in self._cache and len(self._cache) >= self._cache.capacity:
            self._journal_op("evict", self._cache.peek_lru())

    def apply_journal(self, record: dict) -> None:
        """Re-apply one journal record (the crash-recovery replay path).

        Replay is *closed over the journal's own vocabulary*: puts carry the
        final fingerprint and stamp, so applying a record twice is idempotent
        — the property that makes WAL replay safe when a snapshot and the
        log overlap.  ``evict`` records are usually no-ops on replay (the
        same-capacity cache re-evicts the same victim automatically); they
        are kept in the log so the interaction history is self-describing.
        """
        op = record["op"]
        with self._lock:
            if op in ("record", "append", "put"):
                entry = self._encode_entry(
                    tuple(int(item) for item in record["fp"]))
                entry.stamp = float(record["stamp"])
                self._cache.put(int(record["user"]), entry)
            elif op == "touch":
                self._cache.get(int(record["user"]))
            elif op in ("del", "expire", "evict"):
                self._cache.pop(int(record["user"]))
            elif op == "clear":
                self._cache.clear()
            else:
                raise ValueError(f"unknown journal op {op!r}")

    @property
    def stats(self) -> CacheStats:
        """Store-level counters: a *hit* requires the fingerprint to match."""
        with self._lock:
            return CacheStats(hits=self._hits, misses=self._misses,
                              evictions=self._cache.stats.evictions + self._expired)

    def __len__(self) -> int:
        with self._lock:
            return len(self._cache)

    def __contains__(self, user_id: int) -> bool:
        with self._lock:
            self._ensure_live()
            cached = self._peek(user_id)
            if cached is not None:
                self._journal_op("touch", user_id)
            return cached is not None

    def _peek(self, user_id: int) -> Optional[_CachedSequence]:  # repro: locked[_lock]
        """The live cached entry, dropping (and counting) TTL-expired ones.

        The recency refresh a hit performs is journaled by the *callers*
        (as a ``touch``, unless the operation replaces the entry anyway);
        the expiry pop is journaled here, where it happens.
        """
        cached = self._cache.get(user_id)
        if cached is None:
            return None
        if self.ttl is not None and self._clock() - cached.stamp > self.ttl:
            self._journal_op("expire", user_id)
            self._cache.pop(user_id)
            self._expired += 1
            return None
        return cached

    def encode(self, user_id: int, history: Sequence[int]) -> Tuple[np.ndarray, np.ndarray]:
        """Padded ``(indices, mask)`` row vectors for ``history``.

        Cached per user; a hit requires the visible history suffix to match
        exactly, so results are always identical to a fresh
        :func:`repro.data.batching.pad_sequences` call.
        """
        fingerprint = tuple(int(item) for item in list(history)[-self.max_seq_len:])
        with self._lock:
            self._ensure_live()
            cached = self._peek(user_id)
            if cached is not None and cached.fingerprint == fingerprint:
                self._hits += 1
                self._journal_op("touch", user_id)
                return cached.indices, cached.mask
            self._misses += 1
            entry = self._encode_entry(fingerprint)
            self._journal_put("put", user_id, entry)
            self._cache.put(user_id, entry)
            return entry.indices, entry.mask

    def encode_stored(self, user_id: int) -> Tuple[np.ndarray, np.ndarray]:
        """Padded ``(indices, mask)`` of the stored suffix (empty when cold).

        The hot path for requests that omit their history: one cache lookup
        and no re-fingerprinting — a resident entry is returned directly
        (counted as a hit); a cold user gets the empty encoding (counted as
        a miss) *without* seeding an entry, so a sweep of cold reads can
        never evict warm users' accumulated ``update``-head state.
        """
        with self._lock:
            self._ensure_live()
            cached = self._peek(user_id)
            if cached is not None:
                self._hits += 1
                self._journal_op("touch", user_id)
                return cached.indices, cached.mask
            self._misses += 1
            entry = self._encode_entry(())
            return entry.indices, entry.mask

    def history(self, user_id: int) -> Optional[Tuple[int, ...]]:
        """The stored visible history suffix, or ``None`` for cold users.

        This is what requests that omit their history are answered against
        (the v1-envelope "server-side sequence" semantic).
        """
        with self._lock:
            self._ensure_live()
            cached = self._peek(user_id)
            if cached is not None:
                self._journal_op("touch", user_id)
                return cached.fingerprint
            return None

    def append_event(self, user_id: int, dynamic_index: int) -> None:
        """Extend a cached user's history by one event (no-op on cold users)."""
        with self._lock:
            self._ensure_live()
            cached = self._peek(user_id)
            if cached is None:
                return
            suffix = (cached.fingerprint + (int(dynamic_index),))[-self.max_seq_len:]
            entry = self._encode_entry(suffix)
            self._journal_put("append", user_id, entry,
                              events=(int(dynamic_index),))
            self._cache.put(user_id, entry)

    def record(self, user_id: int, events: Iterable[int]) -> _CachedSequence:
        """Append ``events`` to a user's stored sequence, creating it if cold.

        The write path of the ``update`` serving head: unlike
        :meth:`append_event` it establishes state for users the store has
        never seen, so the online loop works from the first interaction.
        Returns the updated entry (its ``fingerprint`` is the new suffix).
        """
        events = tuple(int(event) for event in events)
        with self._lock:
            self._ensure_live()
            cached = self._peek(user_id)
            base = cached.fingerprint if cached is not None else ()
            suffix = (base + events)[-self.max_seq_len:]
            entry = self._encode_entry(suffix)
            self._journal_put("record", user_id, entry, events=events)
            self._cache.put(user_id, entry)
            return entry

    def _encode_entry(self, fingerprint: Tuple[int, ...]) -> _CachedSequence:
        indices, mask = pad_sequences([fingerprint], self.max_seq_len, PADDING_INDEX)
        return _CachedSequence(fingerprint=fingerprint, indices=indices[0],
                               mask=mask[0], stamp=self._clock())

    def invalidate(self, user_id: int) -> None:
        """Drop a user's cached encoding."""
        with self._lock:
            self._ensure_live()
            if user_id in self._cache:
                self._journal_op("del", user_id)
            self._cache.pop(user_id)

    def clear(self) -> None:
        with self._lock:
            self._ensure_live()
            self._journal_op("clear")
            self._cache.clear()

    # ------------------------------------------------------------------ #
    # Snapshot / restore (shard migration and replay)
    # ------------------------------------------------------------------ #
    def snapshot(self) -> dict:
        """A JSON-safe copy of the resident state, oldest entry first.

        Captures each user's visible suffix and its TTL stamp in LRU → MRU
        order, so :meth:`restore` reproduces both the sequences *and* the
        eviction/expiry order exactly — the contract that lets a shard be
        moved to another process or replayed after a crash.  Counters
        (hits/misses/evictions) are runtime telemetry, not state, and are
        not captured.
        """
        with self._lock:
            return {
                "max_seq_len": self.max_seq_len,
                "capacity": self._cache.capacity,
                "ttl": self.ttl,
                "entries": [
                    [user_id, list(entry.fingerprint), entry.stamp]
                    for user_id, entry in self._cache.items()
                ],
            }

    def restore(self, snapshot: dict) -> None:
        """Replace the resident state with a :meth:`snapshot`'s contents.

        The snapshot must have been taken at the same ``max_seq_len`` —
        restoring sequences padded for a different model geometry would
        silently corrupt every encoding, so it raises instead.
        """
        if snapshot.get("max_seq_len") != self.max_seq_len:
            raise ValueError(
                f"snapshot was taken at max_seq_len={snapshot.get('max_seq_len')}, "
                f"this store encodes at {self.max_seq_len}"
            )
        with self._lock:
            self._cache.clear()
            for user_id, fingerprint, stamp in snapshot.get("entries", []):
                entry = self._encode_entry(tuple(int(item) for item in fingerprint))
                entry.stamp = float(stamp)
                self._cache.put(int(user_id), entry)


# --------------------------------------------------------------------------- #
# Consistent hashing and the sharded store
# --------------------------------------------------------------------------- #
class HashRing:
    """Consistent hashing: keys → shard ids, stable under membership change.

    Each shard contributes ``replicas`` deterministic points (BLAKE2b of
    ``"shard:<id>:<replica>"``) on a 64-bit ring; a key belongs to the first
    shard point clockwise of its own hash.  The property the sharded store
    leans on: adding or removing one shard only remaps the keys on the arcs
    that shard gains or loses — every other key keeps its assignment, so a
    resize never invalidates the whole population.  Hashes are content-based
    (never Python's seeded ``hash()``), so assignments agree across
    processes and runs.
    """

    def __init__(self, shard_ids: Iterable[Hashable] = (), replicas: int = 64):
        if replicas < 1:
            raise ValueError("replicas must be positive")
        self.replicas = replicas
        self._points: List[Tuple[int, Hashable]] = []
        self._hashes: List[int] = []
        for shard_id in shard_ids:
            self.add(shard_id)

    @staticmethod
    def _hash(token: str) -> int:
        digest = hashlib.blake2b(token.encode("utf-8"), digest_size=8).digest()
        return int.from_bytes(digest, "big")

    def _shard_points(self, shard_id: Hashable) -> List[Tuple[int, Hashable]]:
        return [(self._hash(f"shard:{shard_id}:{replica}"), shard_id)
                for replica in range(self.replicas)]

    def add(self, shard_id: Hashable) -> None:
        if shard_id in self:
            raise ValueError(f"shard {shard_id!r} is already on the ring")
        self._points.extend(self._shard_points(shard_id))
        self._points.sort(key=lambda point: point[0])
        self._hashes = [point for point, _ in self._points]

    def remove(self, shard_id: Hashable) -> None:
        if shard_id not in self:
            raise KeyError(f"shard {shard_id!r} is not on the ring")
        self._points = [point for point in self._points if point[1] != shard_id]
        self._hashes = [point for point, _ in self._points]

    def shard_for(self, key: Hashable) -> Hashable:
        """The shard owning ``key`` (first point clockwise of the key hash)."""
        if not self._points:
            raise ValueError("the ring has no shards")
        point = self._hash(f"key:{key}")
        index = bisect_right(self._hashes, point)
        return self._points[index % len(self._points)][1]

    def shard_ids(self) -> Tuple[Hashable, ...]:
        return tuple(sorted({shard_id for _, shard_id in self._points},
                            key=lambda shard_id: str(shard_id)))

    def __contains__(self, shard_id: Hashable) -> bool:
        return any(existing == shard_id for _, existing in self._points)

    def __len__(self) -> int:
        return len(self.shard_ids())


class ShardedUserSequenceStore:
    """A :class:`UserSequenceStore` split over N shards by consistent hashing.

    Drop-in for the single store (same ``encode`` / ``encode_stored`` /
    ``history`` / ``append_event`` / ``record`` / ``stats`` surface — the
    micro-batcher and the ``update`` head cannot tell them apart), with three
    scaling properties the single store lacks:

    * **independent locks** — each shard is its own thread-safe store, so
      concurrent workers touching different shards never contend;
    * **stable placement** — :class:`HashRing` assignment means a shard
      add/remove only remaps the keys whose arcs actually moved
      (property-tested), not the whole population;
    * **mobility** — :meth:`snapshot`/:meth:`restore` round-trip a shard's
      (or the whole store's) state exactly, and :meth:`remove_shard` returns
      the detached shard's snapshot so it can be re-homed or replayed.

    ``capacity`` is the total resident-user budget, divided evenly across
    shards (each shard runs its own LRU); ``ttl`` applies per shard with
    exactly the single-store expiry semantics.
    """

    def __init__(
        self,
        max_seq_len: int,
        capacity: int = 4096,
        ttl: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
        shards: Union[int, Sequence[Hashable]] = 4,
        replicas: int = 64,
    ):
        if isinstance(shards, int):
            if shards < 1:
                raise ValueError("shards must be positive")
            shard_ids: Sequence[Hashable] = list(range(shards))
        else:
            shard_ids = list(shards)
            if not shard_ids:
                raise ValueError("at least one shard id is required")
            if len(set(shard_ids)) != len(shard_ids):
                raise ValueError("shard ids must be unique")
        self.max_seq_len = max_seq_len
        self.ttl = ttl
        self.capacity = capacity
        self._clock = clock
        self._replicas = replicas
        self._lock = threading.RLock()  # guards topology, not per-shard state
        self._journal: Optional[JournalFn] = None
        self._shards: Dict[Hashable, UserSequenceStore] = {}
        self._ring = HashRing(replicas=replicas)
        for shard_id in shard_ids:
            self._ring.add(shard_id)
            self._shards[shard_id] = self._make_shard(len(shard_ids), shard_id)

    def _make_shard(self, num_shards: int, shard_id: Hashable) -> UserSequenceStore:
        per_shard = max(1, -(-self.capacity // max(1, num_shards)))  # ceil div
        shard = UserSequenceStore(self.max_seq_len, capacity=per_shard,
                                  ttl=self.ttl, clock=self._clock)
        shard.set_journal(self._shard_journal(shard_id))
        return shard

    # ------------------------------------------------------------------ #
    # Journal (durability hook, shard-tagged)
    # ------------------------------------------------------------------ #
    def set_journal(self, journal: Optional[JournalFn]) -> None:
        """Attach (or detach) the store-wide mutation journal.

        Per-shard records are tagged with their shard id; topology changes
        (:meth:`add_shard` / :meth:`remove_shard`) are journaled too, so a
        replay reconstructs both the entries *and* the ring that places
        them.  Shard ids must be JSON-safe for a journaled store.
        """
        with self._lock:
            self._journal = journal

    def _shard_journal(self, shard_id: Hashable) -> JournalFn:
        """The per-shard emitter: tag with the shard id, forward upstream."""
        def emit(record: dict) -> None:
            journal = self._journal
            if journal is not None:
                journal({**record, "shard": shard_id})
        return emit

    def _journal_topology(self, op: str, shard_id: Hashable,
                          snapshot: Optional[dict] = None) -> None:  # repro: locked[_lock]
        if self._journal is None:
            return
        record: Dict[str, object] = {"op": op, "shard_id": shard_id}
        if snapshot is not None:
            record["snapshot"] = snapshot
        self._journal(record)

    def apply_journal(self, record: dict) -> None:
        """Re-apply one journal record (crash-recovery replay; idempotent)."""
        op = record["op"]
        if op == "add_shard":
            self.add_shard(record["shard_id"], record.get("snapshot"))
            return
        if op == "remove_shard":
            self.remove_shard(record["shard_id"])
            return
        with self._lock:
            shard = self._shards[record["shard"]]
        shard.apply_journal(record)

    # ------------------------------------------------------------------ #
    # Placement
    # ------------------------------------------------------------------ #
    def shard_for(self, user_id: int) -> Hashable:
        """The shard id owning ``user_id`` under the current topology."""
        with self._lock:
            return self._ring.shard_for(int(user_id))

    def shard_ids(self) -> Tuple[Hashable, ...]:
        with self._lock:
            return self._ring.shard_ids()

    def _store(self, user_id: int) -> UserSequenceStore:
        with self._lock:
            return self._shards[self._ring.shard_for(int(user_id))]

    def _on_shard(self, user_id: int, operation: Callable[[UserSequenceStore], V]) -> V:
        """Resolve the owning shard and apply ``operation``, re-routing if
        the shard was detached between resolution and the call.

        The resolve-then-call window is the :meth:`remove_shard` race: a
        shard looked up here can be sealed and snapshotted away before
        ``operation`` runs.  The sealed shard rejects the straggler
        (:class:`ShardSealedError`) instead of absorbing a write the
        departed snapshot will never see, and the loop re-resolves against
        the new topology — a detached shard can never be returned again, so
        this terminates.
        """
        while True:
            store = self._store(user_id)
            try:
                return operation(store)
            except ShardSealedError:
                continue

    # ------------------------------------------------------------------ #
    # UserSequenceStore surface (delegated to the owning shard)
    # ------------------------------------------------------------------ #
    def encode(self, user_id: int, history: Sequence[int]) -> Tuple[np.ndarray, np.ndarray]:
        return self._on_shard(user_id, lambda store: store.encode(user_id, history))

    def encode_stored(self, user_id: int) -> Tuple[np.ndarray, np.ndarray]:
        return self._on_shard(user_id, lambda store: store.encode_stored(user_id))

    def history(self, user_id: int) -> Optional[Tuple[int, ...]]:
        return self._on_shard(user_id, lambda store: store.history(user_id))

    def append_event(self, user_id: int, dynamic_index: int) -> None:
        self._on_shard(user_id,
                       lambda store: store.append_event(user_id, dynamic_index))

    def record(self, user_id: int, events: Iterable[int]) -> _CachedSequence:
        events = tuple(events)
        return self._on_shard(user_id, lambda store: store.record(user_id, events))

    def invalidate(self, user_id: int) -> None:
        self._on_shard(user_id, lambda store: store.invalidate(user_id))

    def clear(self) -> None:
        with self._lock:
            shards = list(self._shards.values())
        for shard in shards:
            try:
                shard.clear()
            except ShardSealedError:  # detached concurrently: not ours anymore
                continue

    @property
    def stats(self) -> CacheStats:
        """Counters summed across shards (one logical store to operators)."""
        with self._lock:
            shards = list(self._shards.values())
        merged = CacheStats()
        for shard in shards:
            stats = shard.stats
            merged.hits += stats.hits
            merged.misses += stats.misses
            merged.evictions += stats.evictions
        return merged

    def __len__(self) -> int:
        with self._lock:
            shards = list(self._shards.values())
        return sum(len(shard) for shard in shards)

    def __contains__(self, user_id: int) -> bool:
        return self._on_shard(user_id, lambda store: user_id in store)

    def shard_report(self) -> Dict[str, dict]:
        """Per-shard health: residency, capacity and counters (for ``status``)."""
        with self._lock:
            shards = list(self._shards.items())
        report: Dict[str, dict] = {}
        for shard_id, shard in shards:
            stats = shard.stats
            report[str(shard_id)] = {
                "users": len(shard),
                "capacity": shard.capacity,
                "hits": stats.hits,
                "misses": stats.misses,
                "evictions": stats.evictions,
            }
        return report

    # ------------------------------------------------------------------ #
    # Topology changes and shard mobility
    # ------------------------------------------------------------------ #
    def add_shard(self, shard_id: Hashable,
                  snapshot: Optional[dict] = None) -> None:
        """Bring a new shard online (optionally pre-seeded from a snapshot).

        Keys whose ring arcs the new shard takes over will miss until their
        next explicit-history request (or a restore): consistent hashing
        bounds the churn to exactly those keys.
        """
        with self._lock:
            self._ring.add(shard_id)
            shard = self._make_shard(len(self._ring), shard_id)
            if snapshot is not None:
                shard.restore(snapshot)
            self._shards[shard_id] = shard
            self._journal_topology("add_shard", shard_id, snapshot)

    def remove_shard(self, shard_id: Hashable) -> dict:
        """Detach a shard; returns its snapshot so it can be moved/replayed.

        At least one shard must remain.  Keys the departed shard owned remap
        to the survivors (and miss until re-seeded); every other key keeps
        its shard — that stability is the point of the hash ring.

        The detach is atomic with respect to inflight traffic: the ring
        move, the seal and the snapshot all happen under the topology lock,
        so a ``record`` that resolved this shard just before the detach
        either lands *before* the seal (and is captured by the snapshot) or
        is rejected by the sealed shard and transparently re-routed to the
        new owner (:meth:`_on_shard`) — a write can never vanish into a
        detached shard after its snapshot was taken.
        """
        with self._lock:
            if len(self._ring) <= 1:
                raise ValueError("cannot remove the last shard")
            self._ring.remove(shard_id)
            shard = self._shards.pop(shard_id)
            shard.seal()  # waits out (then excludes) in-flight shard ops
            snapshot = shard.snapshot()
            self._journal_topology("remove_shard", shard_id)
        return snapshot

    def snapshot(self, shard_id: Optional[Hashable] = None) -> dict:
        """Snapshot one shard (``shard_id``) or the whole store (``None``)."""
        with self._lock:
            if shard_id is not None:
                return self._shards[shard_id].snapshot()
            return {
                "max_seq_len": self.max_seq_len,
                "ttl": self.ttl,
                "shards": {shard_id: shard.snapshot()
                           for shard_id, shard in self._shards.items()},
            }

    def restore(self, snapshot: dict,
                shard_id: Optional[Hashable] = None) -> None:
        """Restore one shard (``shard_id``) or the whole store (``None``).

        A whole-store snapshot must cover exactly the current shard ids —
        restoring a 4-shard snapshot into a 3-shard store would silently
        drop a shard's users, so it raises instead.
        """
        with self._lock:
            if shard_id is not None:
                self._shards[shard_id].restore(snapshot)
                return
            missing = set(snapshot.get("shards", {})) ^ set(self._shards)
            if missing:
                raise ValueError(
                    f"snapshot shard ids do not match the store's "
                    f"(difference: {sorted(missing, key=str)})"
                )
            for key, shard_snapshot in snapshot["shards"].items():
                self._shards[key].restore(shard_snapshot)
