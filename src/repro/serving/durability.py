"""Durable serving state: write-ahead log, snapshots, crash recovery.

The serving runtime's only mutable state is the user-sequence store (the
``update`` head's server-side sequences).  This module makes that state
survive a crash:

* :class:`WriteAheadLog` — an append-only, fsync-batched log of JSON
  records, one line per store mutation, each carrying a monotonic sequence
  number and a CRC32 checksum.  Appends are buffered and fsynced every
  ``fsync_every`` records (``lag`` = records acknowledged but not yet on
  disk); recovery tolerates a torn tail (a partially written last record is
  detected by checksum/framing and truncated) but refuses mid-file
  corruption, which means the disk — not this code — lost data.

* :class:`DurableSequenceStore` — a drop-in
  :class:`~repro.serving.cache.UserSequenceStore` /
  :class:`~repro.serving.cache.ShardedUserSequenceStore` facade that
  journals every mutation to the WAL **before** applying it (write-ahead
  semantics: a journal append that fails aborts the mutation, so the log is
  always a superset of the applied state), checkpoints the store's
  ``snapshot()`` atomically, compacts the log to the records newer than the
  checkpoint, and on startup replays snapshot + tail to recover the store
  **byte-identically** to its pre-crash ``snapshot()`` — the property the
  crash-recovery test battery proves at every append boundary.

  Replay is idempotent by construction: every put record carries the final
  fingerprint and stamp (not a delta), so records that overlap a snapshot
  re-apply harmlessly — and that same idempotence is what makes retrying a
  failed WAL append safe.

The WAL doubles as the **durable interaction log**: ``record`` entries keep
their raw ``events``, so an offline retrain loop can tail the log and see
every user interaction the ``update`` head ingested, in order.
"""

from __future__ import annotations

import json
import os
import threading
import time
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Hashable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.serialization import atomic_write, atomic_write_text
from repro.serving.cache import (
    CacheStats,
    ShardedUserSequenceStore,
    UserSequenceStore,
    _CachedSequence,
)
from repro.serving.faults import NULL_INJECTOR, FaultInjector

PathLike = Union[str, Path]

#: Every op the store journal may emit.  The analyzer's protocol-completeness
#: rule checks each ``_journal_op``/``_journal_topology`` call site against
#: this tuple, so a new mutation cannot silently bypass the replay vocabulary.
WAL_OPS = (
    "record",   # update-head write: events appended (the interaction log rows)
    "append",   # append_event: one event extended onto a resident entry
    "put",      # explicit-history re-encode replacing an entry
    "touch",    # read hit: LRU recency refresh (part of snapshot()'s bytes)
    "del",      # invalidate()
    "expire",   # TTL expiry pop
    "evict",    # capacity eviction (redundant on replay, kept for the log)
    "clear",    # clear()
    "add_shard",     # topology: shard joined (optionally with seed snapshot)
    "remove_shard",  # topology: shard detached
)

_SNAPSHOT_NAME = "snapshot.json"
_WAL_NAME = "wal.jsonl"
#: Public name of the WAL file inside a durability directory — what the
#: online interaction-log reader (:mod:`repro.online.log_reader`) tails.
WAL_NAME = _WAL_NAME
#: Public name of the checkpoint snapshot next to it — its ``seq`` tells the
#: reader how far compaction reached when no journal records survive.
SNAPSHOT_NAME = _SNAPSHOT_NAME
_SNAPSHOT_FORMAT = 1


class WALError(RuntimeError):
    """The write-ahead log is unusable (broken writer or unreadable file)."""


class WALCorruptionError(WALError):
    """The log is damaged somewhere other than its tail.

    A torn *tail* is the expected crash signature and is healed by
    truncation; a bad record with valid records after it means the storage
    corrupted history — recovery refuses to guess and fails loudly.
    """


# --------------------------------------------------------------------------- #
# Record framing: one line = <canonical json> <space> <crc32 hex> <newline>
# --------------------------------------------------------------------------- #
def _encode_line(body: dict) -> bytes:
    payload = json.dumps(body, separators=(",", ":"), sort_keys=True)
    crc = zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF
    return f"{payload} {crc:08x}\n".encode("utf-8")


def _decode_line(line: bytes) -> dict:
    """Parse one framed record; raises ``ValueError`` on any damage."""
    body, _, crc_hex = line.rstrip(b"\n").rpartition(b" ")
    if not body:
        raise ValueError("record has no checksum field")
    if int(crc_hex, 16) != zlib.crc32(body) & 0xFFFFFFFF:
        raise ValueError("record checksum mismatch")
    return json.loads(body.decode("utf-8"))


@dataclass
class WALScan:
    """The result of reading a log file front to back."""

    records: List[dict]
    last_seq: int
    #: ``True`` when a partially written final record was dropped.
    torn: bool
    #: Byte length of the valid prefix (the truncation point for healing).
    valid_bytes: int
    #: Records validated but excluded because their ``seq`` was at or below
    #: the ``since_seq`` cursor (0 on a cursor-less scan).
    skipped: int = 0
    #: Whether the ``start_offset`` fast path was taken (the cursor anchored
    #: cleanly and only the tail past it was read).
    seeked: bool = False


def _cursor_anchored(data: bytes, since_seq: int, offset: int) -> bool:
    """Whether byte ``offset`` is exactly the end of the record ``since_seq``.

    The soundness condition of the tailing fast path: seqs are unique and
    ascending within a log file, so if the framed record ending at ``offset``
    decodes to sequence ``since_seq``, then everything before it is already
    consumed and everything after it is exactly the unconsumed tail — even if
    the log was compacted since the cursor was written, as long as that
    record survived in place.  Any other situation (offset past EOF, offset
    mid-record after a compaction shifted bytes, a different record ending
    there) fails the check and the caller falls back to a full scan.
    """
    if offset < 1 or offset > len(data) or data[offset - 1:offset] != b"\n":
        return False
    line_start = data.rfind(b"\n", 0, offset - 1) + 1
    try:
        record = _decode_line(data[line_start:offset])
        return int(record["seq"]) == since_seq
    except (ValueError, KeyError, TypeError):
        return False


def read_wal(path: PathLike, since_seq: int = 0,
             start_offset: int = 0) -> WALScan:
    """Scan a WAL file, validating framing, checksums and seq monotonicity.

    A damaged *final* record (torn write at crash time) is reported via
    ``torn`` and excluded; damage anywhere else raises
    :class:`WALCorruptionError`.

    ``since_seq``/``start_offset`` are the tailing cursor of the online
    retrain loop (:mod:`repro.online`): records with ``seq <= since_seq``
    are validated but excluded from ``records`` (counted in ``skipped``),
    and when ``start_offset`` is the verified end of record ``since_seq``
    (see :func:`_cursor_anchored`) the scan seeks straight there instead of
    re-reading the whole log.  A stale offset — the log was compacted and
    the anchor record moved or vanished — silently falls back to a full
    scan, so a cursor taken at a compaction point is always safe, merely
    slower.  ``valid_bytes`` stays an absolute file offset either way.
    """
    path = Path(path)
    data = path.read_bytes() if path.exists() else b""
    offset = 0
    last_seq = 0
    seeked = False
    if start_offset > 0 and _cursor_anchored(data, since_seq, start_offset):
        offset = start_offset
        last_seq = since_seq
        seeked = True
    records: List[dict] = []
    skipped = 0
    torn = False
    while offset < len(data):
        newline = data.find(b"\n", offset)
        if newline < 0:  # no terminator: the classic torn tail
            torn = True
            break
        line = data[offset:newline + 1]
        try:
            record = _decode_line(line)
            seq = int(record["seq"])
            if seq <= last_seq:
                raise ValueError(f"sequence went backwards ({last_seq} -> {seq})")
        except (ValueError, KeyError, TypeError) as error:
            if _any_valid_record(data, newline + 1):
                raise WALCorruptionError(
                    f"{path}: damaged record at byte {offset} with valid "
                    f"records after it ({error})"
                ) from None
            torn = True
            break
        if seq <= since_seq:
            skipped += 1
        else:
            records.append(record)
        last_seq = seq
        offset = newline + 1
    return WALScan(records=records, last_seq=last_seq, torn=torn,
                   valid_bytes=offset, skipped=skipped, seeked=seeked)


def _any_valid_record(data: bytes, offset: int) -> bool:
    """Whether any complete, checksummed record exists at/after ``offset``."""
    while offset < len(data):
        newline = data.find(b"\n", offset)
        if newline < 0:
            return False
        try:
            _decode_line(data[offset:newline + 1])
            return True
        except (ValueError, KeyError):
            offset = newline + 1
    return False


# --------------------------------------------------------------------------- #
# The write-ahead log
# --------------------------------------------------------------------------- #
class WriteAheadLog:
    """Append-only, checksummed, fsync-batched log of JSON records.

    ``append`` assigns the next sequence number, frames and buffers the
    record, and fsyncs once ``fsync_every`` records are pending — the
    classic durability/throughput dial (``fsync_every=1`` is synchronous
    commit).  ``lag`` (appended − synced) is the data-loss window a hard
    crash could cost; :meth:`sync` closes it on demand and callers close it
    at every checkpoint and clean shutdown.

    Thread-safe; a torn-write fault (injected or real ENOSPC mid-write)
    marks the log **broken** — further appends refuse, and the owner must
    recover by reopening, exactly as a crashed process would.
    """

    def __init__(self, path: PathLike, fsync_every: int = 256,
                 start_seq: int = 0,
                 injector: Optional[FaultInjector] = None):
        if fsync_every < 1:
            raise ValueError("fsync_every must be at least 1")
        self.path = Path(path)
        self.fsync_every = fsync_every
        self._injector = injector if injector is not None else NULL_INJECTOR
        self._lock = threading.Lock()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._file = open(self.path, "ab")
        self._last_seq = int(start_seq)
        self._synced_seq = int(start_seq)
        self._appends = 0
        self._fsyncs = 0
        self._pending = 0
        self._broken = False

    # -- write path ----------------------------------------------------- #
    def append(self, record: dict) -> int:
        """Frame and append one record; returns its sequence number.

        The injected fault sites: ``wal.append`` fires *before* anything is
        written (clean abort, safe to retry), ``wal.torn`` truncates the
        written bytes and breaks the log (the crash-mid-write signature),
        ``wal.fsync`` fires inside the batched fsync.
        """
        with self._lock:
            if self._broken:
                raise WALError(
                    f"{self.path}: log is broken after a torn write; reopen "
                    "to recover"
                )
            self._injector.hit("wal.append", context=str(record.get("op", "")))
            seq = self._last_seq + 1
            # The log owns sequencing: an (erroneous) caller-supplied "seq"
            # must never override the assigned one.
            data = _encode_line({**record, "seq": seq})
            torn = self._injector.torn("wal.torn", data)
            if torn is not None:
                self._file.write(torn)
                self._file.flush()
                os.fsync(self._file.fileno())
                self._broken = True
                raise WALError(
                    f"{self.path}: torn write after {len(torn)} of "
                    f"{len(data)} bytes"
                )
            self._file.write(data)
            self._last_seq = seq
            self._appends += 1
            self._pending += 1
            if self._pending >= self.fsync_every:
                self._sync_locked()
            return seq

    def sync(self) -> None:
        """Flush and fsync everything appended so far (``lag`` → 0)."""
        with self._lock:
            self._sync_locked()

    def _sync_locked(self) -> None:  # repro: locked[_lock]
        self._file.flush()
        self._injector.hit("wal.fsync")
        os.fsync(self._file.fileno())
        self._fsyncs += 1
        self._pending = 0
        self._synced_seq = self._last_seq

    # -- maintenance ----------------------------------------------------- #
    def compact(self, snapshot_seq: int) -> int:
        """Atomically rewrite the log to records newer than ``snapshot_seq``.

        Called after a checkpoint: everything at or below the checkpointed
        sequence is reconstructible from the snapshot, so only the tail is
        kept.  Returns the number of records retained.
        """
        with self._lock:
            self._file.flush()
            scan = read_wal(self.path)
            keep = [record for record in scan.records
                    if int(record["seq"]) > snapshot_seq]
            self._file.close()
            with atomic_write(self.path, "wb") as handle:
                for record in keep:
                    handle.write(_encode_line(record))
            self._file = open(self.path, "ab")
            self._pending = 0
            self._synced_seq = self._last_seq
            self._broken = False
            return len(keep)

    def close(self) -> None:
        with self._lock:
            if self._file.closed:
                return
            if not self._broken:
                self._sync_locked()
            self._file.close()

    # -- observability --------------------------------------------------- #
    @property
    def last_seq(self) -> int:
        with self._lock:
            return self._last_seq

    @property
    def synced_seq(self) -> int:
        with self._lock:
            return self._synced_seq

    def status(self) -> dict:
        """Counters for the ``status`` head: lag is the crash-loss window."""
        with self._lock:
            return {
                "path": str(self.path),
                "last_seq": self._last_seq,
                "synced_seq": self._synced_seq,
                "lag": self._last_seq - self._synced_seq,
                "appends": self._appends,
                "fsyncs": self._fsyncs,
                "fsync_every": self.fsync_every,
                "broken": self._broken,
            }


# --------------------------------------------------------------------------- #
# Snapshot document <-> store snapshot (JSON round-trip safety)
# --------------------------------------------------------------------------- #
def _state_to_doc(state: dict) -> dict:
    """JSON dicts stringify non-string keys, so shard maps travel as pairs."""
    if "shards" in state:
        doc = {key: value for key, value in state.items() if key != "shards"}
        doc["shards"] = [[shard_id, snap]
                         for shard_id, snap in state["shards"].items()]
        return doc
    return state


def _doc_to_state(doc: dict) -> dict:
    if "shards" in doc:
        state = {key: value for key, value in doc.items() if key != "shards"}
        state["shards"] = {_shard_key(shard_id): snap
                           for shard_id, snap in doc["shards"]}
        return state
    return doc


def _shard_key(shard_id) -> Hashable:
    """JSON arrays come back as lists, which cannot key a dict."""
    return tuple(shard_id) if isinstance(shard_id, list) else shard_id


@dataclass
class RecoveryReport:
    """What startup recovery found and did (surfaced by ``status``/CLI)."""

    snapshot_seq: int      # sequence the loaded snapshot was taken at (0: none)
    replayed: int          # WAL records applied on top of the snapshot
    skipped: int           # WAL records already covered by the snapshot
    torn_tail: bool        # a partial final record was truncated away
    last_seq: int          # the sequence the store resumed at


# --------------------------------------------------------------------------- #
# The durable store facade
# --------------------------------------------------------------------------- #
class DurableSequenceStore:
    """A user-sequence store whose every mutation survives a crash.

    Drop-in for :class:`UserSequenceStore` / its sharded sibling (the
    micro-batcher, the ``update`` head and the routers cannot tell them
    apart): same ``encode`` / ``encode_stored`` / ``history`` /
    ``append_event`` / ``record`` / ``stats`` / ``snapshot`` surface, plus

    * **write-ahead journaling** — the inner store emits one record per
      mutation *before* applying it; the records land in a
      :class:`WriteAheadLog` under ``directory``;
    * **startup recovery** — the constructor loads the last checkpoint (if
      any), heals a torn WAL tail, replays the tail records in order and
      reports the result (:attr:`recovery`); the recovered state is
      byte-identical to the pre-crash ``snapshot()``;
    * **checkpoint + compaction** — :meth:`checkpoint` atomically persists
      ``snapshot()`` and shrinks the log to the records the snapshot does
      not cover; call it at drains, shutdowns, or on a timer.

    ``clock`` defaults to wall time (``time.time``) rather than the inner
    store's monotonic default: TTL stamps live in the WAL and must stay
    meaningful across process restarts.  ``log_reads=False`` drops the
    ``touch`` records read hits emit — cheaper and fine for the interaction
    log, but recovery then restores *contents* exactly while LRU recency may
    differ, so keep it on when eviction-order fidelity matters.
    """

    def __init__(
        self,
        directory: PathLike,
        max_seq_len: int,
        capacity: int = 4096,
        ttl: Optional[float] = None,
        clock: Callable[[], float] = time.time,
        shards: Union[int, Sequence[Hashable]] = 1,
        replicas: int = 64,
        fsync_every: int = 256,
        log_reads: bool = True,
        injector: Optional[FaultInjector] = None,
    ):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.log_reads = bool(log_reads)
        self._injector = injector if injector is not None else NULL_INJECTOR
        self._snapshot_path = self.directory / _SNAPSHOT_NAME
        self._wal_path = self.directory / _WAL_NAME
        self._checkpoint_lock = threading.Lock()

        doc = self._load_snapshot_doc()
        self._store = self._build_store(doc, max_seq_len, capacity, ttl,
                                        clock, shards, replicas)
        self._kind = ("sharded"
                      if isinstance(self._store, ShardedUserSequenceStore)
                      else "single")
        snapshot_seq = int(doc["seq"]) if doc is not None else 0
        if doc is not None:
            self._store.restore(_doc_to_state(doc["state"]))

        scan = read_wal(self._wal_path)
        if scan.torn:
            self._truncate_wal(scan.valid_bytes)
        replayed = skipped = 0
        for record in scan.records:
            if int(record["seq"]) <= snapshot_seq:
                skipped += 1
                continue
            self._store.apply_journal(record)
            replayed += 1

        start_seq = max(snapshot_seq, scan.last_seq)
        self._snapshot_seq = snapshot_seq
        self._wal = WriteAheadLog(self._wal_path, fsync_every=fsync_every,
                                  start_seq=start_seq, injector=self._injector)
        self.recovery = RecoveryReport(
            snapshot_seq=snapshot_seq, replayed=replayed, skipped=skipped,
            torn_tail=scan.torn, last_seq=start_seq)
        self._store.set_journal(self._journal_sink)

    # -- construction helpers -------------------------------------------- #
    def _load_snapshot_doc(self) -> Optional[dict]:
        if not self._snapshot_path.exists():
            return None
        doc = json.loads(self._snapshot_path.read_text())
        if doc.get("format") != _SNAPSHOT_FORMAT:
            raise WALError(
                f"{self._snapshot_path} has snapshot format "
                f"{doc.get('format')!r}; this build reads {_SNAPSHOT_FORMAT}"
            )
        return doc

    def _build_store(self, doc, max_seq_len, capacity, ttl, clock,
                     shards, replicas
                     ) -> Union[UserSequenceStore, ShardedUserSequenceStore]:
        """The inner store, with geometry from the snapshot when one exists.

        Topology ops are journaled, so the shard set at checkpoint time —
        not the configured one — is authoritative for recovery.
        """
        if doc is not None and doc["kind"] == "sharded":
            shard_ids = [_shard_key(shard_id)
                         for shard_id, _ in doc["state"]["shards"]]
            return ShardedUserSequenceStore(
                max_seq_len, capacity=capacity, ttl=ttl, clock=clock,
                shards=shard_ids, replicas=replicas)
        if doc is not None:
            return UserSequenceStore(max_seq_len, capacity=capacity, ttl=ttl,
                                     clock=clock)
        if isinstance(shards, int) and shards <= 1:
            return UserSequenceStore(max_seq_len, capacity=capacity, ttl=ttl,
                                     clock=clock)
        return ShardedUserSequenceStore(max_seq_len, capacity=capacity,
                                        ttl=ttl, clock=clock, shards=shards,
                                        replicas=replicas)

    def _truncate_wal(self, valid_bytes: int) -> None:
        with open(self._wal_path, "r+b") as handle:
            handle.truncate(valid_bytes)
            handle.flush()
            os.fsync(handle.fileno())

    # The store invokes this sink while holding its own lock (journal-
    # before-mutation), so the WAL lock nests *inside* the store lock — an
    # acquisition order the call graph cannot see through the callback.
    # Declared here so the static graph (and the runtime sanitizer's
    # observed ⊆ static check) knows the intended order:
    # repro: lock-edge[UserSequenceStore._lock -> WriteAheadLog._lock]
    # repro: lock-edge[ShardedUserSequenceStore._lock -> WriteAheadLog._lock]
    def _journal_sink(self, record: dict) -> None:
        """The inner store's journal: every mutation record → WAL append."""
        if not self.log_reads and record.get("op") == "touch":
            return
        self._wal.append(record)

    # ------------------------------------------------------------------ #
    # Durability operations
    # ------------------------------------------------------------------ #
    def checkpoint(self) -> int:
        """Persist ``snapshot()`` atomically and compact the log; returns
        the checkpointed sequence.

        Safe under concurrent traffic: any mutation journaled after the
        sequence was read lands *above* the checkpoint sequence and is kept
        by compaction; if it also made it into the snapshot, replay
        re-applies it idempotently.
        """
        with self._checkpoint_lock:
            seq = self._wal.last_seq
            state = self._store.snapshot()
            self._wal.sync()
            doc = {"format": _SNAPSHOT_FORMAT, "kind": self._kind,
                   "seq": seq, "state": _state_to_doc(state)}
            # Persisting the snapshot and compacting under the checkpoint
            # lock is the point — one checkpoint at a time, serialized
            # against close().  Serving traffic takes the store/WAL locks,
            # never this one, so it does not stall behind the I/O.
            # repro: allow[blocking-under-lock]
            atomic_write_text(self._snapshot_path,
                              json.dumps(doc, separators=(",", ":"),
                                         sort_keys=True))
            # repro: allow[blocking-under-lock]
            self._wal.compact(seq)
            self._snapshot_seq = seq
            return seq

    def sync(self) -> None:
        """Force the WAL to disk (``lag`` → 0) without checkpointing."""
        self._wal.sync()

    def close(self) -> None:
        """Checkpoint and release the log (the clean-shutdown path)."""
        self.checkpoint()
        self._wal.close()

    def wal_status(self) -> dict:
        """WAL counters + recovery summary for the ``status`` head."""
        report = self.recovery
        return {
            **self._wal.status(),
            "snapshot_seq": self._snapshot_seq,
            "recovered_replayed": report.replayed,
            "recovered_skipped": report.skipped,
            "recovered_torn_tail": report.torn_tail,
        }

    # ------------------------------------------------------------------ #
    # UserSequenceStore surface (delegated)
    # ------------------------------------------------------------------ #
    @property
    def max_seq_len(self) -> int:
        return self._store.max_seq_len

    @property
    def ttl(self) -> Optional[float]:
        return self._store.ttl

    @property
    def capacity(self) -> int:
        return self._store.capacity

    @property
    def stats(self) -> CacheStats:
        return self._store.stats

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, user_id: int) -> bool:
        return user_id in self._store

    def encode(self, user_id: int, history: Sequence[int]) -> Tuple[np.ndarray, np.ndarray]:
        return self._store.encode(user_id, history)

    def encode_stored(self, user_id: int) -> Tuple[np.ndarray, np.ndarray]:
        return self._store.encode_stored(user_id)

    def history(self, user_id: int) -> Optional[Tuple[int, ...]]:
        return self._store.history(user_id)

    def append_event(self, user_id: int, dynamic_index: int) -> None:
        self._store.append_event(user_id, dynamic_index)

    def record(self, user_id: int, events: Iterable[int]) -> _CachedSequence:
        # The store-level fault site fires before any mutation, so a failed
        # (then retried) record can never double-append events.
        self._injector.hit("store.record", context=str(user_id))
        return self._store.record(user_id, events)

    def invalidate(self, user_id: int) -> None:
        self._store.invalidate(user_id)

    def clear(self) -> None:
        self._store.clear()

    def snapshot(self, *args, **kwargs) -> dict:
        return self._store.snapshot(*args, **kwargs)

    def restore(self, snapshot: dict, *args, **kwargs) -> None:
        """Restore then re-checkpoint: bulk state swaps bypass the journal,
        so the snapshot file — not the WAL — must carry the new state."""
        self._store.set_journal(None)
        try:
            self._store.restore(snapshot, *args, **kwargs)
        finally:
            self._store.set_journal(self._journal_sink)
        self.checkpoint()

    def shard_report(self) -> Optional[Dict[str, dict]]:
        """Per-shard health when sharded, else ``None``."""
        report = getattr(self._store, "shard_report", None)
        return report() if report is not None else None

    def shard_ids(self):
        return self._store.shard_ids()  # type: ignore[union-attr]

    def add_shard(self, shard_id: Hashable,
                  snapshot: Optional[dict] = None) -> None:
        self._store.add_shard(shard_id, snapshot)  # type: ignore[union-attr]

    def remove_shard(self, shard_id: Hashable) -> dict:
        return self._store.remove_shard(shard_id)  # type: ignore[union-attr]


# --------------------------------------------------------------------------- #
# Offline inspection (the CLI `status --wal DIR` path)
# --------------------------------------------------------------------------- #
def inspect_durability(directory: PathLike) -> dict:
    """Summarise a durability directory without constructing a store.

    Reads the snapshot header and scans the WAL: sequence positions, per-op
    record counts, torn-tail state and on-disk sizes — the offline half of
    the ``status`` head.
    """
    directory = Path(directory)
    snapshot_path = directory / _SNAPSHOT_NAME
    wal_path = directory / _WAL_NAME
    summary: dict = {
        "directory": str(directory),
        "snapshot": None,
        "wal": None,
    }
    if snapshot_path.exists():
        doc = json.loads(snapshot_path.read_text())
        state = doc.get("state", {})
        if doc.get("kind") == "sharded":
            users = sum(len(snap.get("entries", ()))
                        for _, snap in state.get("shards", ()))
            shards = len(state.get("shards", ()))
        else:
            users = len(state.get("entries", ()))
            shards = 1
        summary["snapshot"] = {
            "seq": int(doc.get("seq", 0)),
            "kind": doc.get("kind"),
            "shards": shards,
            "users": users,
            "bytes": snapshot_path.stat().st_size,
        }
    if wal_path.exists():
        scan = read_wal(wal_path)
        ops: Dict[str, int] = {}
        for record in scan.records:
            op = str(record.get("op", "?"))
            ops[op] = ops.get(op, 0) + 1
        snapshot_seq = summary["snapshot"]["seq"] if summary["snapshot"] else 0
        summary["wal"] = {
            "records": len(scan.records),
            "last_seq": scan.last_seq,
            "since_snapshot": sum(1 for record in scan.records
                                  if int(record["seq"]) > snapshot_seq),
            "torn_tail": scan.torn,
            "ops": ops,
            "bytes": wal_path.stat().st_size,
        }
    return summary
