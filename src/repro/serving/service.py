"""Request-file and stream front-ends over the serving protocol.

Two entry points, both driven by the serving subcommands of
:mod:`repro.experiments.cli` and both dispatching generically through the
:class:`~repro.serving.protocol.HeadRegistry` — neither knows anything
head-specific:

* :func:`execute_batch` — answer a collection of JSON requests through one
  (model, head) pair in one micro-batched pass (also exposed as
  :meth:`repro.serving.registry.ModelRegistry.serve`).
* :func:`serve_jsonl` — a line-oriented request/response loop: each input
  line is one wire document, each output line the matching response.  This is
  the transport-neutral core a network frontend can wrap; keeping it on file
  objects makes it fully testable without sockets.

The wire format is the versioned envelope of
:mod:`repro.serving.protocol`::

    {"v": 1, "head": "rank-topk", "model": "seqfm", "id": 7,
     "payload": {"static_indices": [4, 0], "candidates": [17, 21, 35],
                 "k": 2, "history": [3, 7, 12], "user_id": 42}}

``payload`` is one request object or a list answered as one batch; ``head``
and ``model`` default to the server's configuration, so the envelope can
route each line to any registered model and head.  Bare pre-envelope payloads
(and bare lists) are auto-upgraded to v1 and answered in the pre-envelope
response shapes, so old clients keep working unchanged.  Failures are
structured — ``{"error": {"code": ..., "message": ..., "line": ...}}`` with
the stable codes of :data:`repro.serving.protocol.ERROR_CODES`.

``static_indices``, ``candidates`` and ``history`` are model-vocabulary
indices — the mapping from raw ids is the job of
:class:`repro.data.features.FeatureEncoder` (see the README quickstart).  A
v1 request that *omits* ``history`` is answered against the user's
server-side sequence, maintained by the stateful ``update`` head::

    {"v": 1, "head": "update", "payload": {"user_id": 42, "events": [9]}}

The pre-protocol per-head helpers — :func:`predict_batch`,
:func:`rank_topk_batch`, :func:`recommend_batch` and the ``parse_*``
functions — remain as thin deprecation shims over the generic dispatcher.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from typing import IO, Dict, Iterable, List, Optional

from repro.serving.batcher import RankRequest, RecommendRequest, ScoreRequest
from repro.serving.cache import CacheStats
from repro.serving.protocol import (
    ERR_BAD_JSON,
    ERR_BAD_REQUEST,
    ERR_EXECUTION,
    Envelope,
    HeadRegistry,
    ProtocolError,
    ServeDefaults,
    ServingRouter,
    default_heads,
    error_response,
    parse_envelope,
)
from repro.serving.registry import ModelRegistry

#: The head whose requests are ranking (candidate-list) requests.
RANK_TOPK_HEAD = "rank-topk"

#: The head whose requests are candidate-free recommendation requests.
RECOMMEND_HEAD = "recommend"


def __getattr__(name: str):
    # ``HEADS`` mirrors the default HeadRegistry instead of duplicating it;
    # resolved lazily so importing this module does not drag retrieval in.
    if name == "HEADS":
        return default_heads().names()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def _cache_delta(before: CacheStats, after: CacheStats) -> CacheStats:
    """Cache counters attributable to one call, as a stats object."""
    return CacheStats(
        hits=after.hits - before.hits,
        misses=after.misses - before.misses,
        evictions=after.evictions - before.evictions,
    )


# --------------------------------------------------------------------------- #
# One-shot batch execution (the generic dispatcher)
# --------------------------------------------------------------------------- #
def execute_batch(
    registry: ModelRegistry,
    name: str,
    payloads: Iterable[dict],
    head: str = "score",
    k: Optional[int] = None,
    n_retrieve: Optional[int] = None,
    max_batch_size: int = 256,
    heads: Optional[HeadRegistry] = None,
) -> dict:
    """Answer a collection of JSON requests through one registered head.

    Every head flows through this one path: the
    :class:`~repro.serving.protocol.Head` object parses the payloads,
    executes them through the model's micro-batcher and shapes the response —
    results plus batching/cache statistics.  ``k``/``n_retrieve`` are
    defaults for requests without their own.
    """
    head_registry = heads if heads is not None else default_heads()
    head_obj = head_registry.get(head)
    payloads = list(payloads)
    if not payloads:
        raise ProtocolError(
            ERR_BAD_REQUEST, f"no requests for head {head_obj.name!r}"
        )
    defaults = ServeDefaults(k=k, n_retrieve=n_retrieve)
    requests = [head_obj.parse(payload, defaults) for payload in payloads]
    entry = registry.get(name)
    batcher = entry.batcher(max_batch_size=max_batch_size, head=head_obj.name,
                            heads=head_registry)
    cache_before = entry.sequence_store.stats
    results = head_obj.execute(batcher, requests)
    cache = _cache_delta(cache_before, entry.sequence_store.stats)
    return {
        "model": name,
        "head": head_obj.name,
        **head_obj.batch_payload(results),
        "stats": head_obj.batch_stats(batcher, entry, cache, results),
    }


# --------------------------------------------------------------------------- #
# Deprecation shims (pre-protocol public entry points)
# --------------------------------------------------------------------------- #
def predict_batch(
    registry: ModelRegistry,
    name: str,
    payloads: Iterable[dict],
    head: str = "score",
    max_batch_size: int = 256,
) -> dict:
    """Deprecated: use :meth:`ModelRegistry.serve` / :func:`execute_batch`.

    Kept as a thin shim over the generic dispatcher; response payloads are
    unchanged (parity-tested).
    """
    return execute_batch(registry, name, payloads, head=head,
                         max_batch_size=max_batch_size)


def rank_topk_batch(
    registry: ModelRegistry,
    name: str,
    payloads: Iterable[dict],
    k: Optional[int] = None,
    max_batch_size: int = 256,
) -> dict:
    """Deprecated: use :meth:`ModelRegistry.serve` with ``head="rank-topk"``."""
    return execute_batch(registry, name, payloads, head=RANK_TOPK_HEAD, k=k,
                         max_batch_size=max_batch_size)


def recommend_batch(
    registry: ModelRegistry,
    name: str,
    payloads: Iterable[dict],
    k: Optional[int] = None,
    n_retrieve: Optional[int] = None,
    max_batch_size: int = 256,
) -> dict:
    """Deprecated: use :meth:`ModelRegistry.serve` with ``head="recommend"``."""
    return execute_batch(registry, name, payloads, head=RECOMMEND_HEAD, k=k,
                         n_retrieve=n_retrieve, max_batch_size=max_batch_size)


def parse_request(payload: dict) -> ScoreRequest:
    """Deprecated: parse one scoring payload (now ``Head.parse``)."""
    return default_heads().get("score").parse(payload, ServeDefaults())


def parse_requests(payloads: Iterable[dict]) -> List[ScoreRequest]:
    """Deprecated: parse scoring payloads (now ``Head.parse``)."""
    return [parse_request(payload) for payload in payloads]


def parse_rank_request(payload: dict, default_k: Optional[int] = None) -> RankRequest:
    """Deprecated: parse one ranking payload (now ``Head.parse``)."""
    return default_heads().get(RANK_TOPK_HEAD).parse(
        payload, ServeDefaults(k=default_k))


def parse_rank_requests(
    payloads: Iterable[dict], default_k: Optional[int] = None
) -> List[RankRequest]:
    """Deprecated: parse ranking payloads (now ``Head.parse``)."""
    return [parse_rank_request(payload, default_k) for payload in payloads]


def parse_recommend_request(
    payload: dict,
    default_k: Optional[int] = None,
    default_n_retrieve: Optional[int] = None,
) -> RecommendRequest:
    """Deprecated: parse one recommendation payload (now ``Head.parse``)."""
    return default_heads().get(RECOMMEND_HEAD).parse(
        payload, ServeDefaults(k=default_k, n_retrieve=default_n_retrieve))


def parse_recommend_requests(
    payloads: Iterable[dict],
    default_k: Optional[int] = None,
    default_n_retrieve: Optional[int] = None,
) -> List[RecommendRequest]:
    """Deprecated: parse recommendation payloads (now ``Head.parse``)."""
    return [
        parse_recommend_request(payload, default_k, default_n_retrieve)
        for payload in payloads
    ]


# --------------------------------------------------------------------------- #
# Streaming front-end
# --------------------------------------------------------------------------- #
@dataclass
class ServeSummary:
    """What one :func:`serve_jsonl` run did, for operator-facing summaries.

    Attributes
    ----------
    rows:
        Result rows emitted: one per score for the scoring heads, one per
        returned (post-top-K-cut) ranked/recommended item for the list
        heads, one per appended event for the ``update`` head — the same
        meaning for every head.
    lines:
        Non-blank input lines consumed (served + errored).
    errors:
        Lines answered with a structured ``{"error": ...}`` response instead
        of a result.
    error_codes:
        How many errored lines carried each stable error code — the
        operator-facing breakdown (``{"bad_request": 2, "bad_json": 1}``).

    The summary is **thread-safe**: the concurrent serving runtime resolves
    responses from a pool of workers, so every mutation goes through one
    internal lock (:meth:`record_line`, :meth:`record_rows`,
    :meth:`record_error`, :meth:`merge`).  Counts recorded under contention
    sum exactly — regression-tested, because a torn ``+=`` under load is the
    kind of bug a happy-path demo never shows.
    """

    rows: int = 0
    lines: int = 0
    errors: int = 0
    error_codes: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._lock = threading.Lock()

    @property
    def served(self) -> int:
        """Lines that produced a real response."""
        return self.lines - self.errors

    def record_line(self, count: int = 1) -> None:
        """Count ``count`` consumed input lines."""
        with self._lock:
            self.lines += count

    def record_rows(self, rows: int) -> None:
        """Count one successfully answered line worth ``rows`` result rows."""
        with self._lock:
            self.rows += rows

    def record_error(self, code: str) -> None:
        with self._lock:
            self.errors += 1
            self.error_codes[code] = self.error_codes.get(code, 0) + 1

    def counts(self) -> Dict[str, object]:
        """A consistent copy of every counter (the ``status`` head's view)."""
        with self._lock:
            return {
                "lines": self.lines,
                "rows": self.rows,
                "errors": self.errors,
                "error_codes": dict(self.error_codes),
            }

    def merge(self, other: "ServeSummary") -> None:
        """Fold a worker-local summary into this one (all counters summed)."""
        if other is self:
            raise ValueError("cannot merge a summary into itself")
        with other._lock:
            rows, lines, errors = other.rows, other.lines, other.errors
            codes = dict(other.error_codes)
        with self._lock:
            self.rows += rows
            self.lines += lines
            self.errors += errors
            for code, count in codes.items():
                self.error_codes[code] = self.error_codes.get(code, 0) + count


def serve_jsonl(
    registry: ModelRegistry,
    name: str,
    input_stream: IO[str],
    output_stream: IO[str],
    head: str = "score",
    max_batch_size: int = 256,
    k: Optional[int] = None,
    n_retrieve: Optional[int] = None,
    heads: Optional[HeadRegistry] = None,
) -> ServeSummary:
    """Serve JSONL requests until EOF; returns a :class:`ServeSummary`.

    Protocol: one JSON document per line — a v1 envelope, or a bare
    pre-envelope payload auto-upgraded to one (see
    :mod:`repro.serving.protocol`).  ``head`` and ``name`` are the defaults
    for documents that do not route themselves; an envelope's ``head`` /
    ``model`` fields may target any registered head and model per line, with
    a :class:`~repro.serving.protocol.ServingRouter` micro-batching each
    (model, head) group.  ``k`` / ``n_retrieve`` are the default top-K cut
    and retrieval fan-out for requests without their own.

    A malformed line — broken JSON, bad envelope, failed validation,
    out-of-range indices — is *skipped and reported*: it gets a structured
    ``{"error": {"code": ..., "message": ..., "line": ...}}`` response with
    the 1-based input line number, is counted (per code) in the summary, and
    the loop moves on.  Blank lines are ignored entirely (but numbered).
    """
    router = ServingRouter(
        registry, default_model=name,
        heads=heads if heads is not None else default_heads(),
        max_batch_size=max_batch_size,
        defaults=ServeDefaults(k=k, n_retrieve=n_retrieve),
    )
    # Fail fast on an unservable default route (unknown head or model,
    # recommend without an index) instead of erroring every line.  Router
    # heads (status) have no batcher to probe — heads.get still validates
    # the name.
    if not router.heads.get(head).wants_router:
        router.batcher_for(name, head)
    summary = ServeSummary()
    router.summary = summary  # the status head reports live stream counters
    for line_number, raw_line in enumerate(input_stream, start=1):
        line = raw_line.strip()
        if not line:
            continue
        summary.record_line()
        envelope: Optional[Envelope] = None
        try:
            try:
                document = json.loads(line)
            except ValueError as error:
                raise ProtocolError(ERR_BAD_JSON, f"invalid JSON: {error}") from None
            envelope = parse_envelope(document, default_head=head,
                                      default_model=name)
            response, rows, _ = router.execute(envelope)
        except ProtocolError as error:
            summary.record_error(error.code)
            response = _error_line(error.code, str(error), line_number, envelope)
        except (ValueError, KeyError, TypeError, IndexError, RuntimeError) as error:
            summary.record_error(ERR_EXECUTION)
            response = _error_line(ERR_EXECUTION, str(error), line_number, envelope)
        else:
            summary.record_rows(rows)
        output_stream.write(json.dumps(response) + "\n")
        output_stream.flush()
    return summary


def _error_line(code: str, message: str, line_number: int,
                envelope: Optional[Envelope]) -> dict:
    request_id = envelope.request_id if envelope is not None else None
    return error_response(code, message, line=line_number, request_id=request_id)
