"""Request-file and stream front-ends over the serving runtime.

Two entry points, both driven by the ``predict-batch`` / ``serve`` CLI
subcommands (:mod:`repro.experiments.cli`):

* :func:`predict_batch` — score a JSON file of requests in one micro-batched
  pass and return a JSON-serialisable payload.
* :func:`serve_jsonl` — a line-oriented request/response loop: each input
  line is a JSON request (or a JSON list of requests scored as one batch),
  each output line the matching JSON response.  This is the transport-neutral
  core a network frontend can wrap; keeping it on file objects makes it fully
  testable without sockets.

Request objects use the wire format::

    {"static_indices": [4, 17], "history": [3, 7, 12],
     "user_id": 42, "object_id": 7}

The ``rank-topk`` head consumes *ranking* requests instead — one candidate
list per request, ranked through the candidate-deduplicated fast path::

    {"static_indices": [4, 0], "candidates": [17, 21, 35], "k": 2,
     "history": [3, 7, 12], "user_id": 42}

``static_indices``, ``candidates`` and ``history`` are model-vocabulary
indices — the mapping from raw ids is the job of
:class:`repro.data.features.FeatureEncoder` (see the README quickstart).
"""

from __future__ import annotations

import json
from typing import IO, Iterable, List, Optional

from repro.serving.batcher import MicroBatcher, RankRequest, ScoreRequest
from repro.serving.cache import CacheStats
from repro.serving.registry import ModelRegistry

#: Endpoints a request file / stream may select.  The scoring heads take one
#: candidate per request; ``rank-topk`` takes one candidate *list* per request.
HEADS = ("score", "rank", "classify", "regress", "rank-topk")

#: The head whose requests are ranking (candidate-list) requests.
RANK_TOPK_HEAD = "rank-topk"


def parse_request(payload: dict) -> ScoreRequest:
    """Build a :class:`ScoreRequest` from its JSON wire representation."""
    if "static_indices" not in payload:
        raise ValueError("request is missing 'static_indices'")
    return ScoreRequest(
        static_indices=[int(index) for index in payload["static_indices"]],
        history=[int(index) for index in payload.get("history", [])],
        user_id=int(payload.get("user_id", -1)),
        object_id=int(payload.get("object_id", -1)),
    )


def parse_requests(payloads: Iterable[dict]) -> List[ScoreRequest]:
    return [parse_request(payload) for payload in payloads]


def parse_rank_request(payload: dict, default_k: Optional[int] = None) -> RankRequest:
    """Build a :class:`RankRequest` from its JSON wire representation."""
    for key in ("static_indices", "candidates"):
        if key not in payload:
            raise ValueError(f"ranking request is missing {key!r}")
    k = payload.get("k", default_k)
    return RankRequest(
        static_indices=[int(index) for index in payload["static_indices"]],
        candidates=[int(index) for index in payload["candidates"]],
        history=[int(index) for index in payload.get("history", [])],
        user_id=int(payload.get("user_id", -1)),
        k=int(k) if k is not None else None,
    )


def parse_rank_requests(
    payloads: Iterable[dict], default_k: Optional[int] = None
) -> List[RankRequest]:
    return [parse_rank_request(payload, default_k) for payload in payloads]


def _cache_delta(before: CacheStats, after: CacheStats) -> CacheStats:
    """Cache counters attributable to one call, as a stats object."""
    return CacheStats(hits=after.hits - before.hits, misses=after.misses - before.misses)


def predict_batch(
    registry: ModelRegistry,
    name: str,
    payloads: Iterable[dict],
    head: str = "score",
    max_batch_size: int = 256,
) -> dict:
    """Micro-batch-score a collection of JSON requests.

    Returns a payload with the scores in request order plus the batching and
    cache statistics of the run.
    """
    if head not in HEADS:
        raise ValueError(f"unknown head {head!r}; expected one of {HEADS}")
    if head == RANK_TOPK_HEAD:
        return rank_topk_batch(registry, name, payloads, max_batch_size=max_batch_size)
    requests = parse_requests(payloads)
    if not requests:
        raise ValueError("no requests to score")
    entry = registry.get(name)
    batcher = entry.batcher(max_batch_size=max_batch_size, head=head)
    cache_before = entry.sequence_store.stats
    scores = batcher.score_all(requests)
    cache = _cache_delta(cache_before, entry.sequence_store.stats)
    return {
        "model": name,
        "head": head,
        "scores": [float(score) for score in scores],
        "stats": {
            "requests": batcher.stats.requests,
            "batches": batcher.stats.batches,
            "mean_batch_size": batcher.stats.mean_batch_size,
            "cache_hits": cache.hits,
            "cache_misses": cache.misses,
            "cache_hit_rate": cache.hit_rate,
        },
    }


def rank_topk_batch(
    registry: ModelRegistry,
    name: str,
    payloads: Iterable[dict],
    k: Optional[int] = None,
    max_batch_size: int = 256,
) -> dict:
    """Rank a collection of JSON candidate-list requests, one result each.

    ``k`` is the default top-K cut for requests that do not carry their own
    ``"k"``; ``None`` means return every candidate ranked.
    """
    requests = parse_rank_requests(payloads, default_k=k)
    if not requests:
        raise ValueError("no ranking requests")
    entry = registry.get(name)
    batcher = entry.batcher(max_batch_size=max_batch_size, head=RANK_TOPK_HEAD)
    cache_before = entry.sequence_store.stats
    results = batcher.rank_all(requests)
    cache = _cache_delta(cache_before, entry.sequence_store.stats)
    return {
        "model": name,
        "head": RANK_TOPK_HEAD,
        "results": [
            {
                "candidates": [int(candidate) for candidate in result.candidates],
                "scores": [float(score) for score in result.scores],
            }
            for result in results
        ],
        "stats": {
            "requests": batcher.stats.requests,
            "candidates_ranked": batcher.stats.rows_scored,
            "cache_hits": cache.hits,
            "cache_misses": cache.misses,
            "cache_hit_rate": cache.hit_rate,
        },
    }


def serve_jsonl(
    registry: ModelRegistry,
    name: str,
    input_stream: IO[str],
    output_stream: IO[str],
    head: str = "score",
    max_batch_size: int = 256,
    k: Optional[int] = None,
) -> int:
    """Serve JSONL requests until EOF; returns the number of scored rows.

    Protocol: one JSON document per line.  A dict is a single request → the
    response line is ``{"scores": [s]}``; a list is scored as one batch → the
    response carries one score per element, in order.  Under the ``rank-topk``
    head each request is a candidate-list ranking request and the response
    carries ``{"candidates": [...], "scores": [...]}`` (wrapped in
    ``{"results": [...]}`` for list lines); ``k`` is the default top-K cut.
    Malformed lines get an ``{"error": ...}`` response instead of killing the
    loop.  Blank lines are ignored.
    """
    if head not in HEADS:
        raise ValueError(f"unknown head {head!r}; expected one of {HEADS}")
    entry = registry.get(name)
    batcher = entry.batcher(max_batch_size=max_batch_size, head=head)
    total = 0
    for line in input_stream:
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
            documents = payload if isinstance(payload, list) else [payload]
            if head == RANK_TOPK_HEAD:
                requests = parse_rank_requests(documents, default_k=k)
                results = batcher.rank_all(requests)
                rendered = [
                    {"candidates": [int(c) for c in result.candidates],
                     "scores": [float(s) for s in result.scores]}
                    for result in results
                ]
                total += sum(len(request.candidates) for request in requests)
                response = rendered[0] if not isinstance(payload, list) else {"results": rendered}
            else:
                scores = batcher.score_all(parse_requests(documents))
                total += len(scores)
                response = {"scores": [float(s) for s in scores]}
        except (ValueError, KeyError, TypeError, IndexError) as error:
            output_stream.write(json.dumps({"error": str(error)}) + "\n")
            output_stream.flush()
            continue
        output_stream.write(json.dumps(response) + "\n")
        output_stream.flush()
    return total
