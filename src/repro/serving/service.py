"""Request-file and stream front-ends over the serving runtime.

Two entry points, both driven by the ``predict-batch`` / ``serve`` CLI
subcommands (:mod:`repro.experiments.cli`):

* :func:`predict_batch` — score a JSON file of requests in one micro-batched
  pass and return a JSON-serialisable payload.
* :func:`serve_jsonl` — a line-oriented request/response loop: each input
  line is a JSON request (or a JSON list of requests scored as one batch),
  each output line the matching JSON response.  This is the transport-neutral
  core a network frontend can wrap; keeping it on file objects makes it fully
  testable without sockets.

Request objects use the wire format::

    {"static_indices": [4, 17], "history": [3, 7, 12],
     "user_id": 42, "object_id": 7}

``static_indices`` and ``history`` are model-vocabulary indices — the mapping
from raw ids is the job of :class:`repro.data.features.FeatureEncoder` (see
the README quickstart).
"""

from __future__ import annotations

import json
from typing import IO, Iterable, List

from repro.serving.batcher import MicroBatcher, ScoreRequest
from repro.serving.registry import ModelRegistry

#: Endpoints a request file / stream may select.
HEADS = ("score", "rank", "classify", "regress")


def parse_request(payload: dict) -> ScoreRequest:
    """Build a :class:`ScoreRequest` from its JSON wire representation."""
    if "static_indices" not in payload:
        raise ValueError("request is missing 'static_indices'")
    return ScoreRequest(
        static_indices=[int(index) for index in payload["static_indices"]],
        history=[int(index) for index in payload.get("history", [])],
        user_id=int(payload.get("user_id", -1)),
        object_id=int(payload.get("object_id", -1)),
    )


def parse_requests(payloads: Iterable[dict]) -> List[ScoreRequest]:
    return [parse_request(payload) for payload in payloads]


def predict_batch(
    registry: ModelRegistry,
    name: str,
    payloads: Iterable[dict],
    head: str = "score",
    max_batch_size: int = 256,
) -> dict:
    """Micro-batch-score a collection of JSON requests.

    Returns a payload with the scores in request order plus the batching and
    cache statistics of the run.
    """
    if head not in HEADS:
        raise ValueError(f"unknown head {head!r}; expected one of {HEADS}")
    requests = parse_requests(payloads)
    if not requests:
        raise ValueError("no requests to score")
    entry = registry.get(name)
    batcher = entry.batcher(max_batch_size=max_batch_size, head=head)
    cache_before = entry.sequence_store.stats
    scores = batcher.score_all(requests)
    cache_after = entry.sequence_store.stats
    return {
        "model": name,
        "head": head,
        "scores": [float(score) for score in scores],
        "stats": {
            "requests": batcher.stats.requests,
            "batches": batcher.stats.batches,
            "mean_batch_size": batcher.stats.mean_batch_size,
            "cache_hits": cache_after.hits - cache_before.hits,
            "cache_misses": cache_after.misses - cache_before.misses,
        },
    }


def serve_jsonl(
    registry: ModelRegistry,
    name: str,
    input_stream: IO[str],
    output_stream: IO[str],
    head: str = "score",
    max_batch_size: int = 256,
) -> int:
    """Serve JSONL requests until EOF; returns the number of scored rows.

    Protocol: one JSON document per line.  A dict is a single request → the
    response line is ``{"scores": [s]}``; a list is scored as one batch → the
    response carries one score per element, in order.  Malformed lines get an
    ``{"error": ...}`` response instead of killing the loop.  Blank lines are
    ignored.
    """
    if head not in HEADS:
        raise ValueError(f"unknown head {head!r}; expected one of {HEADS}")
    entry = registry.get(name)
    batcher = entry.batcher(max_batch_size=max_batch_size, head=head)
    total = 0
    for line in input_stream:
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
            documents = payload if isinstance(payload, list) else [payload]
            scores = batcher.score_all(parse_requests(documents))
        except (ValueError, KeyError, TypeError, IndexError) as error:
            output_stream.write(json.dumps({"error": str(error)}) + "\n")
            output_stream.flush()
            continue
        total += len(scores)
        output_stream.write(json.dumps({"scores": [float(s) for s in scores]}) + "\n")
        output_stream.flush()
    return total
