"""Request-file and stream front-ends over the serving runtime.

Two entry points, both driven by the ``predict-batch`` / ``serve`` CLI
subcommands (:mod:`repro.experiments.cli`):

* :func:`predict_batch` — score a JSON file of requests in one micro-batched
  pass and return a JSON-serialisable payload.
* :func:`serve_jsonl` — a line-oriented request/response loop: each input
  line is a JSON request (or a JSON list of requests scored as one batch),
  each output line the matching JSON response.  This is the transport-neutral
  core a network frontend can wrap; keeping it on file objects makes it fully
  testable without sockets.

Request objects use the wire format::

    {"static_indices": [4, 17], "history": [3, 7, 12],
     "user_id": 42, "object_id": 7}

The ``rank-topk`` head consumes *ranking* requests instead — one candidate
list per request, ranked through the candidate-deduplicated fast path::

    {"static_indices": [4, 0], "candidates": [17, 21, 35], "k": 2,
     "history": [3, 7, 12], "user_id": 42}

The ``recommend`` head consumes candidate-free *recommendation* requests —
the model's item index supplies the candidates, the fast path re-ranks them
(two-stage retrieval; requires an index attached to the model)::

    {"static_indices": [4, 0], "k": 5, "n_retrieve": 200,
     "history": [3, 7, 12], "user_id": 42}

``static_indices``, ``candidates`` and ``history`` are model-vocabulary
indices — the mapping from raw ids is the job of
:class:`repro.data.features.FeatureEncoder` (see the README quickstart).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import IO, Iterable, List, Optional

from repro.serving.batcher import MicroBatcher, RankRequest, RecommendRequest, ScoreRequest
from repro.serving.cache import CacheStats
from repro.serving.registry import ModelRegistry

#: Endpoints a request file / stream may select.  The scoring heads take one
#: candidate per request; ``rank-topk`` takes one candidate *list* per
#: request; ``recommend`` takes candidate-free requests (the item index
#: generates the candidates).
HEADS = ("score", "rank", "classify", "regress", "rank-topk", "recommend")

#: The head whose requests are ranking (candidate-list) requests.
RANK_TOPK_HEAD = "rank-topk"

#: The head whose requests are candidate-free recommendation requests.
RECOMMEND_HEAD = "recommend"


def parse_request(payload: dict) -> ScoreRequest:
    """Build a :class:`ScoreRequest` from its JSON wire representation."""
    if "static_indices" not in payload:
        raise ValueError("request is missing 'static_indices'")
    return ScoreRequest(
        static_indices=[int(index) for index in payload["static_indices"]],
        history=[int(index) for index in payload.get("history", [])],
        user_id=int(payload.get("user_id", -1)),
        object_id=int(payload.get("object_id", -1)),
    )


def parse_requests(payloads: Iterable[dict]) -> List[ScoreRequest]:
    return [parse_request(payload) for payload in payloads]


def parse_rank_request(payload: dict, default_k: Optional[int] = None) -> RankRequest:
    """Build a :class:`RankRequest` from its JSON wire representation."""
    for key in ("static_indices", "candidates"):
        if key not in payload:
            raise ValueError(f"ranking request is missing {key!r}")
    k = payload.get("k", default_k)
    return RankRequest(
        static_indices=[int(index) for index in payload["static_indices"]],
        candidates=[int(index) for index in payload["candidates"]],
        history=[int(index) for index in payload.get("history", [])],
        user_id=int(payload.get("user_id", -1)),
        k=int(k) if k is not None else None,
    )


def parse_rank_requests(
    payloads: Iterable[dict], default_k: Optional[int] = None
) -> List[RankRequest]:
    return [parse_rank_request(payload, default_k) for payload in payloads]


def parse_recommend_request(
    payload: dict,
    default_k: Optional[int] = None,
    default_n_retrieve: Optional[int] = None,
) -> RecommendRequest:
    """Build a :class:`RecommendRequest` from its JSON wire representation."""
    if "static_indices" not in payload:
        raise ValueError("recommendation request is missing 'static_indices'")
    k = payload.get("k", default_k)
    n_retrieve = payload.get("n_retrieve", default_n_retrieve)
    return RecommendRequest(
        static_indices=[int(index) for index in payload["static_indices"]],
        history=[int(index) for index in payload.get("history", [])],
        user_id=int(payload.get("user_id", -1)),
        k=int(k) if k is not None else None,
        n_retrieve=int(n_retrieve) if n_retrieve is not None else None,
    )


def parse_recommend_requests(
    payloads: Iterable[dict],
    default_k: Optional[int] = None,
    default_n_retrieve: Optional[int] = None,
) -> List[RecommendRequest]:
    return [
        parse_recommend_request(payload, default_k, default_n_retrieve)
        for payload in payloads
    ]


def _cache_delta(before: CacheStats, after: CacheStats) -> CacheStats:
    """Cache counters attributable to one call, as a stats object."""
    return CacheStats(
        hits=after.hits - before.hits,
        misses=after.misses - before.misses,
        evictions=after.evictions - before.evictions,
    )


def _cache_stats_payload(cache: CacheStats) -> dict:
    """The cache block every response's ``stats`` carries."""
    return {
        "cache_hits": cache.hits,
        "cache_misses": cache.misses,
        "cache_hit_rate": cache.hit_rate,
        "cache_evictions": cache.evictions,
    }


def predict_batch(
    registry: ModelRegistry,
    name: str,
    payloads: Iterable[dict],
    head: str = "score",
    max_batch_size: int = 256,
) -> dict:
    """Micro-batch-score a collection of JSON requests.

    Returns a payload with the scores in request order plus the batching and
    cache statistics of the run.
    """
    if head not in HEADS:
        raise ValueError(f"unknown head {head!r}; expected one of {HEADS}")
    if head == RANK_TOPK_HEAD:
        return rank_topk_batch(registry, name, payloads, max_batch_size=max_batch_size)
    if head == RECOMMEND_HEAD:
        return recommend_batch(registry, name, payloads, max_batch_size=max_batch_size)
    requests = parse_requests(payloads)
    if not requests:
        raise ValueError("no requests to score")
    entry = registry.get(name)
    batcher = entry.batcher(max_batch_size=max_batch_size, head=head)
    cache_before = entry.sequence_store.stats
    scores = batcher.score_all(requests)
    cache = _cache_delta(cache_before, entry.sequence_store.stats)
    return {
        "model": name,
        "head": head,
        "scores": [float(score) for score in scores],
        "stats": {
            "requests": batcher.stats.requests,
            "batches": batcher.stats.batches,
            "mean_batch_size": batcher.stats.mean_batch_size,
            **_cache_stats_payload(cache),
        },
    }


def rank_topk_batch(
    registry: ModelRegistry,
    name: str,
    payloads: Iterable[dict],
    k: Optional[int] = None,
    max_batch_size: int = 256,
) -> dict:
    """Rank a collection of JSON candidate-list requests, one result each.

    ``k`` is the default top-K cut for requests that do not carry their own
    ``"k"``; ``None`` means return every candidate ranked.
    """
    requests = parse_rank_requests(payloads, default_k=k)
    if not requests:
        raise ValueError("no ranking requests")
    entry = registry.get(name)
    batcher = entry.batcher(max_batch_size=max_batch_size, head=RANK_TOPK_HEAD)
    cache_before = entry.sequence_store.stats
    results = batcher.rank_all(requests)
    cache = _cache_delta(cache_before, entry.sequence_store.stats)
    return {
        "model": name,
        "head": RANK_TOPK_HEAD,
        "results": [
            {
                "candidates": [int(candidate) for candidate in result.candidates],
                "scores": [float(score) for score in result.scores],
            }
            for result in results
        ],
        "stats": {
            "requests": batcher.stats.requests,
            "candidates_ranked": batcher.stats.rows_scored,
            **_cache_stats_payload(cache),
        },
    }


def recommend_batch(
    registry: ModelRegistry,
    name: str,
    payloads: Iterable[dict],
    k: Optional[int] = None,
    n_retrieve: Optional[int] = None,
    max_batch_size: int = 256,
) -> dict:
    """Answer a collection of candidate-free JSON requests, one result each.

    Each request flows through the model's two-stage retrieve → rank pipeline
    (the model must have an item index attached).  ``k``/``n_retrieve`` are
    defaults for requests that do not carry their own.
    """
    requests = parse_recommend_requests(payloads, default_k=k,
                                        default_n_retrieve=n_retrieve)
    if not requests:
        raise ValueError("no recommendation requests")
    entry = registry.get(name)
    batcher = entry.batcher(max_batch_size=max_batch_size, head=RECOMMEND_HEAD)
    cache_before = entry.sequence_store.stats
    results = batcher.recommend_all(requests)
    cache = _cache_delta(cache_before, entry.sequence_store.stats)
    return {
        "model": name,
        "head": RECOMMEND_HEAD,
        "results": [
            {
                "candidates": [int(candidate) for candidate in result.candidates],
                "scores": [float(score) for score in result.scores],
            }
            for result in results
        ],
        "stats": {
            "requests": batcher.stats.requests,
            "items_recommended": batcher.stats.rows_scored,
            "catalog_size": entry.index.num_items if entry.index is not None else 0,
            **_cache_stats_payload(cache),
        },
    }


@dataclass
class ServeSummary:
    """What one :func:`serve_jsonl` run did, for operator-facing summaries.

    Attributes
    ----------
    rows:
        Result rows emitted: one per score for the scoring heads, one per
        returned (post-top-K-cut) ranked/recommended item for the list
        heads — the same meaning for every head.
    lines:
        Non-blank input lines consumed (served + errored).
    errors:
        Lines answered with an ``{"error": ...}`` response instead of a
        result — malformed JSON, unknown fields, out-of-range indices.
    """

    rows: int = 0
    lines: int = 0
    errors: int = 0

    @property
    def served(self) -> int:
        """Lines that produced a real response."""
        return self.lines - self.errors


def serve_jsonl(
    registry: ModelRegistry,
    name: str,
    input_stream: IO[str],
    output_stream: IO[str],
    head: str = "score",
    max_batch_size: int = 256,
    k: Optional[int] = None,
    n_retrieve: Optional[int] = None,
) -> ServeSummary:
    """Serve JSONL requests until EOF; returns a :class:`ServeSummary`.

    Protocol: one JSON document per line.  A dict is a single request → the
    response line is ``{"scores": [s]}``; a list is scored as one batch → the
    response carries one score per element, in order.  Under the ``rank-topk``
    head each request is a candidate-list ranking request, under the
    ``recommend`` head a candidate-free recommendation request; both respond
    with ``{"candidates": [...], "scores": [...]}`` (wrapped in
    ``{"results": [...]}`` for list lines).  ``k`` is the default top-K cut
    and ``n_retrieve`` the default retrieval fan-out for requests without
    their own.

    A malformed line — broken JSON, missing fields, out-of-range indices —
    is *skipped and reported*: it gets an ``{"error": ...}`` response, is
    counted in :attr:`ServeSummary.errors`, and the loop moves on.  Blank
    lines are ignored entirely.
    """
    if head not in HEADS:
        raise ValueError(f"unknown head {head!r}; expected one of {HEADS}")
    entry = registry.get(name)
    batcher = entry.batcher(max_batch_size=max_batch_size, head=head)
    summary = ServeSummary()
    for line in input_stream:
        line = line.strip()
        if not line:
            continue
        summary.lines += 1
        try:
            payload = json.loads(line)
            documents = payload if isinstance(payload, list) else [payload]
            if head == RANK_TOPK_HEAD or head == RECOMMEND_HEAD:
                if head == RANK_TOPK_HEAD:
                    requests = parse_rank_requests(documents, default_k=k)
                    results = batcher.rank_all(requests)
                else:
                    requests = parse_recommend_requests(
                        documents, default_k=k, default_n_retrieve=n_retrieve
                    )
                    results = batcher.recommend_all(requests)
                summary.rows += sum(len(result) for result in results)
                rendered = [
                    {"candidates": [int(c) for c in result.candidates],
                     "scores": [float(s) for s in result.scores]}
                    for result in results
                ]
                response = rendered[0] if not isinstance(payload, list) else {"results": rendered}
            else:
                scores = batcher.score_all(parse_requests(documents))
                summary.rows += len(scores)
                response = {"scores": [float(s) for s in scores]}
        except (ValueError, KeyError, TypeError, IndexError, RuntimeError) as error:
            summary.errors += 1
            output_stream.write(json.dumps({"error": str(error)}) + "\n")
            output_stream.flush()
            continue
        output_stream.write(json.dumps(response) + "\n")
        output_stream.flush()
    return summary
